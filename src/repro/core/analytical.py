"""The analytical performance/memory model of ParaDL (Table 3 + Appendix A).

Every public function here computes, for one parallel strategy, the
*per-epoch* computation time, communication time (broken into the paper's
phases), and maximum per-PE memory, from:

* a :class:`~repro.core.graph.ModelGraph` (tensor sizes),
* a :class:`~repro.core.profiles.ComputeProfile` (empirical ``FW_l``,
  ``BW_l``, ``WU_l`` — the hybrid analytical/empirical split of Section 4),
* a :class:`~repro.network.topology.ClusterSpec` (Hockney alpha/beta per
  communicator scope),
* a :class:`~repro.collectives.selector.CommModel` (which collective
  algorithm each communication phase is costed with — the default
  ``paper`` policy reproduces the seed's ring-everywhere formulas;
  ``auto``/``nccl-like`` re-select per call), and
* the training configuration (global mini-batch ``B``, dataset size ``D``,
  bytes/item ``delta``, memory-reuse factor ``gamma``).

The formulas are the paper's equations (1)-(22); each analyzer cites the
ones it implements.  Costs the oracle deliberately *excludes* (framework
split/concat overhead, redundant tail computation, external congestion) live
in :mod:`repro.simulator` instead — the gap between the two is what the
paper's accuracy metric measures.

Two evaluation paths produce every projection:

* the **reference path** (``path="reference"``) — the original
  per-layer walks, kept verbatim as the executable specification;
* the **fast path** (the default) — closed-form arithmetic over a
  compiled :class:`~repro.core.kernel.ModelKernel` of per-model
  invariants, built lazily once per analyzer.

Both agree to ``rel <= 1e-9`` (floating-point reassociation of
per-layer sums is the only difference); the equivalence is pinned
across the model zoo x strategy families x comm policies by
``tests/test_fast_path_equivalence.py`` and against the golden seed
projections by ``tests/test_comm_golden.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import npcompat
from ..collectives.selector import (
    BatchChoice,
    CommChoice,
    CommModel,
    as_comm_model,
)
from ..network.hockney import HockneyParams
from ..network.topology import ClusterSpec
from .caching import cached_property
from .contention import data_filter_phi
from .graph import ModelGraph
from .kernel import ModelKernel
from .layers import Layer
from .profiles import ComputeProfile
from .strategies import (
    ChannelParallel,
    DataFilterParallel,
    DataParallel,
    DataSpatialParallel,
    FilterParallel,
    PipelineParallel,
    Serial,
    ShardedDataParallel,
    SpatialParallel,
    Strategy,
    StrategyError,
)
from .tensors import halo_elements

#: Guards lazy :attr:`AnalyticalModel.kernel` compilation.  Shared by
#: every model instance (first-build contention is a one-off), and kept
#: out of instance state so models pickle cleanly into process pools.
_KERNEL_BUILD_LOCK = threading.Lock()

__all__ = [
    "PhaseBreakdown",
    "Projection",
    "AnalyticalModel",
    "spatial_extent_of",
]

#: Default bytes per tensor item (fp32).
DEFAULT_DELTA = 4

#: Default memory-reuse factor gamma (Section 4.2).  Framework memory
#: optimizations (buffer sharing between layer l's output and layer l+1's
#: input, in-place ops) roughly halve the naive aggregate; layer-level
#: profiling studies the paper cites report 0.4-0.6.
DEFAULT_GAMMA = 0.5


@dataclass(frozen=True)
class PhaseBreakdown:
    """Time (seconds) split by training phase and communication pattern.

    Phases follow the paper's taxonomy: FB computation (forward/backward),
    WU weight update, GE gradient exchange; communication is further split
    by pattern (GE-Allreduce, FB layer-wise collectives, FB-Halo, FB-layer
    P2P for pipelines) to support the bottleneck analysis of Section 5.3.
    """

    comp_fw: float = 0.0
    comp_bw: float = 0.0
    comp_wu: float = 0.0
    comm_ge: float = 0.0
    comm_fb: float = 0.0
    comm_halo: float = 0.0
    comm_p2p: float = 0.0

    @cached_property
    def computation(self) -> float:
        return self.comp_fw + self.comp_bw + self.comp_wu

    @cached_property
    def communication(self) -> float:
        return self.comm_ge + self.comm_fb + self.comm_halo + self.comm_p2p

    @cached_property
    def total(self) -> float:
        return self.computation + self.communication

    @staticmethod
    def _build(
        fw: float = 0.0,
        bw: float = 0.0,
        wu: float = 0.0,
        ge: float = 0.0,
        fb: float = 0.0,
        halo: float = 0.0,
        p2p: float = 0.0,
        totals: Optional[Tuple[float, float, float]] = None,
    ) -> "PhaseBreakdown":
        """Field-for-field equivalent of ``PhaseBreakdown(comp_fw=fw,
        ...)`` that writes the instance dict directly — the frozen
        ``__init__`` pays one guarded ``object.__setattr__`` per field,
        which adds up when the batch path assembles thousands of rows.

        ``totals`` optionally pre-seeds the ``(computation,
        communication, total)`` memos; callers must produce the values
        with the same operand order the lazy properties use so seeded
        and recomputed totals are bit-identical.
        """
        obj = object.__new__(PhaseBreakdown)
        d = obj.__dict__
        d.update(
            comp_fw=fw, comp_bw=bw, comp_wu=wu, comm_ge=ge,
            comm_fb=fb, comm_halo=halo, comm_p2p=p2p)
        if totals is not None:
            d["computation"], d["communication"], d["total"] = totals
        return obj

    def scaled(self, factor: float) -> "PhaseBreakdown":
        return PhaseBreakdown._build(
            self.comp_fw * factor,
            self.comp_bw * factor,
            self.comp_wu * factor,
            self.comm_ge * factor,
            self.comm_fb * factor,
            self.comm_halo * factor,
            self.comm_p2p * factor,
        )

    def __add__(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        return PhaseBreakdown._build(
            self.comp_fw + other.comp_fw,
            self.comp_bw + other.comp_bw,
            self.comp_wu + other.comp_wu,
            self.comm_ge + other.comm_ge,
            self.comm_fb + other.comm_fb,
            self.comm_halo + other.comm_halo,
            self.comm_p2p + other.comm_p2p,
        )

    def asdict(self) -> Dict[str, float]:
        return {
            "comp_fw": self.comp_fw,
            "comp_bw": self.comp_bw,
            "comp_wu": self.comp_wu,
            "comm_ge": self.comm_ge,
            "comm_fb": self.comm_fb,
            "comm_halo": self.comm_halo,
            "comm_p2p": self.comm_p2p,
        }


class _AlgoLog:
    """Collects which collective algorithm each phase used (ordered,
    deduplicated) while one projection is being assembled."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Dict[str, List[str]] = {}

    def add(self, phase: str, choice: CommChoice) -> None:
        if choice.seconds <= 0.0:
            return  # singleton communicators / empty messages are free
        labels = self.entries.setdefault(phase, [])
        if choice.label not in labels:
            labels.append(choice.label)

    def items(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(
            (phase, "+".join(labels))
            for phase, labels in self.entries.items()
        )


class _ScalarFallback(Exception):
    """Internal: a batch handler met a configuration it does not
    vectorize (e.g. checkpointed pipelines); the caller re-projects the
    whole group through the scalar path."""


@dataclass(frozen=True)
class Projection:
    """One oracle projection: per-epoch times + per-PE memory."""

    model_name: str
    strategy: Strategy
    batch: int
    dataset_size: int
    per_epoch: PhaseBreakdown
    memory_bytes: float
    memory_capacity: float
    gamma: float = DEFAULT_GAMMA
    delta: int = DEFAULT_DELTA
    notes: Tuple[str, ...] = ()
    #: Which comm policy costed this projection ("paper" reproduces the
    #: seed model) and which algorithm each communication phase used,
    #: e.g. ``(("ge", "allreduce:ring"),)``.
    comm_policy: str = "paper"
    comm_algorithms: Tuple[Tuple[str, str], ...] = ()

    @property
    def p(self) -> int:
        return self.strategy.p

    @cached_property
    def iterations(self) -> int:
        """``I = D / B`` iterations per epoch."""
        return max(1, self.dataset_size // self.batch)

    @cached_property
    def per_iteration(self) -> PhaseBreakdown:
        return self.per_epoch.scaled(1.0 / self.iterations)

    @property
    def feasible_memory(self) -> bool:
        return self.memory_bytes <= self.memory_capacity

    def accuracy(self, measured_total: float) -> float:
        """The paper's accuracy metric: ``1 - |proj - meas| / meas``."""
        if measured_total <= 0:
            raise ValueError("measured time must be > 0")
        return 1.0 - abs(self.per_epoch.total - measured_total) / measured_total

    def accuracy_per_iteration(self, measured_iter: float) -> float:
        if measured_iter <= 0:
            raise ValueError("measured time must be > 0")
        return 1.0 - abs(self.per_iteration.total - measured_iter) / measured_iter


def spatial_extent_of(model: ModelGraph, grid: Tuple[int, ...]) -> List[Layer]:
    """Layers a ``grid`` spatial decomposition actually parallelizes.

    Following the paper's implementation (Section 4.5.1), spatial
    parallelism applies to the leading layers while the per-dimension
    extent still accommodates the grid; the activation is aggregated before
    the first layer that cannot be split (e.g. the FC head).
    """
    selected: List[Layer] = []
    for layer in model:
        if not layer.spatially_parallelizable:
            break
        if len(grid) != layer.input.ndim:
            break
        if any(g > s for g, s in zip(grid, layer.input.spatial)):
            break
        selected.append(layer)
    if not selected:
        raise ValueError(
            f"grid {grid} cannot parallelize any layer of {model.name}"
        )
    return selected


class AnalyticalModel:
    """Table-3 analyzer bound to a model, cluster, and compute profile."""

    def __init__(
        self,
        model: ModelGraph,
        cluster: ClusterSpec,
        profile: ComputeProfile,
        *,
        delta: int = DEFAULT_DELTA,
        gamma: float = DEFAULT_GAMMA,
        halo_transport: str = "mpi",
        contention: bool = True,
        comm: Optional[object] = None,
    ) -> None:
        profile.validate_against(model)
        if delta <= 0:
            raise ValueError("delta must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.delta = delta
        self.gamma = gamma
        self.halo_transport = halo_transport
        self.contention = contention
        #: Communication model: a policy name ("paper" / "auto" /
        #: "nccl-like") or a ready CommModel.  Every collective the
        #: analyzers cost goes through it.
        self.comm: CommModel = as_comm_model(comm, cluster)
        self._kernel: Optional[ModelKernel] = None
        self._comm_overrides: Dict[Tuple, CommModel] = {}
        # (strategy, batch) -> True | (exc_type, message).  Feasibility
        # checks are pure in (model, strategy, batch) and the search
        # re-asks them per comm policy, so both projection paths share
        # this memo.  Bounded below; unhashable strategies skip it.
        self._check_memo: Dict[Tuple, object] = {}

    @property
    def kernel(self) -> ModelKernel:
        """The compiled projection kernel (built lazily, exactly once).

        Everything the fast path precomputes about ``(model, profile)``
        — see :class:`~repro.core.kernel.ModelKernel`.  Process-pool
        search workers force this in their initializer so the build cost
        is paid once per worker, not per candidate chunk.

        Double-checked against a module lock so concurrent first calls
        (an HTTP server fanning request threads over one shared oracle)
        compile the kernel exactly once; the lock is module-level, not
        an instance attribute, so the model stays picklable for the
        process-pool executor.
        """
        if self._kernel is None:
            with _KERNEL_BUILD_LOCK:
                if self._kernel is None:
                    self._kernel = ModelKernel(self.model, self.profile)
        return self._kernel

    def _resolve_comm(self, comm: Optional[object]) -> CommModel:
        """Per-call comm override: ``None`` keeps the bound model; a
        policy string resolves to a per-policy selector, memoized so the
        selector's own choice memo stays warm across candidates.

        The memo key includes the bound model's forcing/threshold
        inputs (the override inherits them), so mutating ``self.comm``
        in place builds a fresh override instead of serving a stale one
        — matching the pre-memo behaviour of constructing a throwaway
        selector per call.
        """
        if comm is None:
            return self.comm
        if isinstance(comm, CommModel):
            return comm
        key = (
            str(comm),
            self.comm.tree_threshold,
            tuple(sorted(self.comm.algo.items())),
        )
        cached = self._comm_overrides.get(key)
        if cached is None:
            cached = CommModel(
                self.cluster, policy=key[0], algo=self.comm.algo,
                tree_threshold=self.comm.tree_threshold,
            )
            self._comm_overrides[key] = cached
        return cached

    def _checked(self, strategy: Strategy, batch: int) -> Optional[Exception]:
        """Memoized ``strategy.check``: ``None`` when feasible, else the
        (reconstructed) :class:`StrategyError`/`ValueError` it raised."""
        key = (strategy, batch)
        try:
            hit = self._check_memo.get(key)
        except TypeError:  # unhashable strategy: check directly
            hit = None
            key = None
        if hit is not None:
            return None if hit is True else hit[0](hit[1])
        try:
            strategy.check(self.model, batch)
        except (StrategyError, ValueError) as exc:
            if key is not None:
                self._check_memo[key] = (type(exc), str(exc))
            return exc
        if key is not None:
            if len(self._check_memo) >= 65536:
                self._check_memo.clear()
            self._check_memo[key] = True
        return None

    # ------------------------------------------------------------------ api
    #: Evaluation paths: ``fast`` (the default) projects from the
    #: compiled kernel; ``reference`` runs the original per-layer walks.
    PATHS = ("fast", "reference")

    def project(
        self,
        strategy: Strategy,
        batch: int,
        dataset_size: int,
        *,
        comm: Optional[object] = None,
        path: Optional[str] = None,
    ) -> Projection:
        """Project one strategy.  ``batch`` is the *global* mini-batch B.

        ``comm`` optionally overrides the bound communication model for
        this projection only (a policy string or a ``CommModel``).
        ``path`` picks the evaluation path: ``None``/``"fast"`` uses the
        compiled :attr:`kernel` closed forms, ``"reference"`` forces the
        original per-layer walk (the golden specification both paths are
        tested against).
        """
        if batch < 1 or dataset_size < batch:
            raise ValueError("need dataset_size >= batch >= 1")
        if path is None:
            path = "fast"
        if path not in self.PATHS:
            raise ValueError(
                f"unknown projection path {path!r}; expected one of "
                f"{self.PATHS}"
            )
        err = self._checked(strategy, batch)
        if err is not None:
            raise err
        if path == "fast":
            handler = {
                "serial": self._fast_serial,
                "d": self._fast_data,
                "z": self._fast_sharded_data,
                "s": self._fast_spatial,
                "p": self._fast_pipeline,
                "f": self._fast_filter,
                "c": self._fast_channel,
                "df": self._fast_data_filter,
                "ds": self._fast_data_spatial,
            }[strategy.id]
        else:
            handler = {
                "serial": self._serial,
                "d": self._data,
                "z": self._sharded_data,
                "s": self._spatial,
                "p": self._pipeline,
                "f": self._filter,
                "c": self._channel,
                "df": self._data_filter,
                "ds": self._data_spatial,
            }[strategy.id]
        comm_model = self._resolve_comm(comm)
        log = _AlgoLog()
        per_epoch, memory, notes = handler(
            strategy, batch, dataset_size, comm_model, log
        )
        return Projection(
            model_name=self.model.name,
            strategy=strategy,
            batch=batch,
            dataset_size=dataset_size,
            per_epoch=per_epoch,
            memory_bytes=memory,
            memory_capacity=self.cluster.gpu_memory_bytes,
            gamma=self.gamma,
            delta=self.delta,
            notes=tuple(notes),
            comm_policy=comm_model.policy,
            comm_algorithms=log.items(),
        )

    def project_inference(
        self,
        strategy: Strategy,
        batch: int,
        dataset_size: int,
        *,
        comm: Optional[object] = None,
        path: Optional[str] = None,
    ) -> Projection:
        """Forward-only projection for distributed inference (Section 5.4.2).

        The paper notes that several training limitations carry over to
        distributed inference (Table 6's "I" column): the layer-wise
        collectives of filter/channel, halo exchanges, pipeline P2P, and
        the memory redundancies — while gradient exchange and weight
        update vanish.  This derives the inference projection from the
        training one: forward compute and the forward share of each
        communication pattern, with gradient/optimizer memory dropped.
        """
        train = self.project(strategy, batch, dataset_size, comm=comm,
                             path=path)
        e = train.per_epoch
        sid = strategy.id
        # Forward share of the layer-wise collectives: the forward leg
        # only (Eq. 15's Allgather for filter-style splits — 1 of the
        # 3(p-1) ring-step groups — and Eq. 19's Allreduce for channel),
        # re-costed under the active policy so non-ring selections keep a
        # correct split; halos halve (no dL/dy exchange); pipeline P2P
        # halves (no backward sweep).
        inf_log = _AlgoLog()
        if sid in ("f", "c", "df") and e.comm_fb > 0:
            comm_model = self._resolve_comm(comm)
            leg = (
                self._layerwise_forward_leg if path == "reference"
                else self._fast_layerwise_forward_leg
            )
            comm_fb = (dataset_size // batch) * leg(
                strategy, batch, comm_model, inf_log)
        else:
            comm_fb = e.comm_fb
        per_epoch = PhaseBreakdown(
            comp_fw=e.comp_fw,
            comm_fb=comm_fb,
            comm_halo=e.comm_halo / 2,
            comm_p2p=e.comm_p2p / 2,
        )
        # Memory: activations once (no cached gradients), weights once (no
        # gradient buffer, no optimizer state).  The training formula
        # counts both at 2x, so inference memory is half.
        memory = train.memory_bytes / 2
        return Projection(
            model_name=train.model_name,
            strategy=strategy,
            batch=batch,
            dataset_size=dataset_size,
            per_epoch=per_epoch,
            memory_bytes=memory,
            memory_capacity=train.memory_capacity,
            gamma=self.gamma,
            delta=self.delta,
            notes=train.notes + ("inference (forward-only)",),
            comm_policy=train.comm_policy,
            # Only the collectives the forward-only projection actually
            # contains (gradient exchange vanishes; fb shrinks to the
            # re-costed Allgather leg).
            comm_algorithms=inf_log.items(),
        )

    # ---------------------------------------------------------------- pieces
    def _weights_bytes(self) -> float:
        """``delta * sum_l |w_l|`` — the gradient-exchange message."""
        return self.delta * self.model.weight_elements

    def _memory_terms(
        self,
        batch_act: float,
        weight_div: float = 1.0,
        act_div: float = 1.0,
        layers: Optional[List[Layer]] = None,
    ) -> float:
        """``gamma * delta * sum_l (2 B'(|x|+|y|)/act_div + 2|w|/w_div + |bi|)``.

        ``batch_act`` is the per-PE batch multiplying activations; the
        factor 2 on activations covers their gradients and the factor 2 on
        weights covers weight gradients (Appendix Eq. 7 etc.).
        """
        layers = self.model.layers if layers is None else layers
        total = 0.0
        for l in layers:
            act = 2.0 * batch_act * (l.input.elements + l.output.elements) / act_div
            w = 2.0 * l.weight_elements / weight_div
            total += act + w + l.bias_elements
        return self.gamma * self.delta * total

    def _comp(self, D: int, I: int, p_div: float, wu_div: float = 1.0
              ) -> PhaseBreakdown:
        """Computation terms: ``D/p sum(FW+BW) + I/wu_div sum(WU)``."""
        return PhaseBreakdown(
            comp_fw=D / p_div * self.profile.total_fw(),
            comp_bw=D / p_div * self.profile.total_bw(),
            comp_wu=I / wu_div * self.profile.total_wu(),
        )

    def _coll(
        self,
        comm: CommModel,
        log: _AlgoLog,
        phase: str,
        collective: str,
        p: int,
        nbytes: float,
        *,
        params: Optional[HockneyParams] = None,
        scope: str = "auto",
        transport: str = "nccl",
    ) -> float:
        """One policy-selected collective: cost it and log the choice."""
        choice = comm.choose(
            collective, p, nbytes, params=params, scope=scope,
            transport=transport,
        )
        log.add(phase, choice)
        return choice.seconds

    def _layerwise_forward_leg(
        self, strategy: Strategy, B: int, comm: CommModel, log: _AlgoLog
    ) -> float:
        """Per-iteration cost of just the *forward* leg of the layer-wise
        collectives (the share an inference projection keeps), under the
        active policy: the partial-activation Allgather for filter-style
        splits (f, df), the partial-sum Allreduce for channel — whose
        patterns are reversed (Eq. 17-19)."""
        sid = strategy.id
        if sid == "df":
            group_p, msg_div = strategy.p2, strategy.p
            params = self.cluster.hockney_intra(strategy.p2)
            scope = "intra-node"
        else:  # f / c
            group_p, msg_div = strategy.p, strategy.p
            params, scope = None, "auto"
        if group_p <= 1:
            return 0.0
        total = 0.0
        for l in self.model.weighted_layers[:-1]:
            seg = B * l.output.elements * self.delta / msg_div
            if sid == "c":
                choice = comm.choose(
                    "allreduce", group_p, seg * group_p,
                    params=params, scope=scope,
                )
            else:
                choice = comm.choose(
                    "allgather", group_p, seg, params=params, scope=scope
                )
            log.add("fb", choice)
            total += choice.seconds
        return total

    # -------------------------------------------------------------- serial
    def _serial(self, strategy: Serial, B: int, D: int, comm, log):
        I = D // B
        comp = self._comp(D, I, p_div=1.0)
        memory = self._memory_terms(batch_act=B)
        return comp, memory, []

    # ---------------------------------------------------------------- data
    def _data(self, strategy: DataParallel, B: int, D: int, comm, log):
        """Eqs. (5)-(7): compute / p, one Allreduce of all gradients
        (ring under the paper policy)."""
        p = strategy.p
        I = D // B
        comp = self._comp(D, I, p_div=p)
        ge = I * self._coll(
            comm, log, "ge", "allreduce", p, self._weights_bytes()
        )
        per_epoch = replace(comp, comm_ge=ge)
        memory = self._memory_terms(batch_act=B / p)
        return per_epoch, memory, []

    # -------------------------------------------------------- sharded data
    def _sharded_data(self, strategy: ShardedDataParallel, B: int, D: int,
                      comm, log):
        """ZeRO-style data parallelism (Section 5.3.2's alternative).

        Weights, gradients and optimizer state are sharded 1/p; the price
        is two weight Allgathers (forward + backward) on top of a gradient
        ReduceScatter — "extra communication of 50%" over the plain
        Allreduce.  The weight update itself shrinks by 1/p (each PE
        updates only its shard — the cross-replica sharding of [52]).
        """
        p = strategy.p
        I = D // B
        comp = self._comp(D, I, p_div=p, wu_div=p)
        wbytes = self._weights_bytes()
        ge = I * (
            self._coll(comm, log, "ge", "reduce_scatter", p, wbytes)
            + 2 * self._coll(comm, log, "ge", "allgather", p, wbytes / p)
        )
        per_epoch = replace(comp, comm_ge=ge)
        memory = self.gamma * self.delta * sum(
            2.0 * (B / p) * (l.input.elements + l.output.elements)
            + (2.0 * l.weight_elements + l.bias_elements) / p
            for l in self.model
        )
        return per_epoch, memory, ["weights/optimizer state sharded 1/p"]

    # -------------------------------------------------------------- spatial
    def _spatial(self, strategy: SpatialParallel, B: int, D: int, comm, log):
        """Eqs. (8)-(10): data-parallel-style GE plus per-layer halos."""
        p = strategy.p
        I = D // B
        comp = self._comp(D, I, p_div=p)
        ge = I * self._coll(
            comm, log, "ge", "allreduce", p, self._weights_bytes()
        )
        halo_params = self.cluster.hockney(p, transport=self.halo_transport)
        halo = I * self._halo_epoch_time(strategy.grid, B, halo_params)
        per_epoch = replace(comp, comm_ge=ge, comm_halo=halo)
        memory = self._spatial_memory(strategy.grid, B, group_batch=B)
        notes = [f"halo over {self.halo_transport} transport"]
        return per_epoch, memory, notes

    def _halo_epoch_time(
        self, grid: Tuple[int, ...], B: int, params: HockneyParams
    ) -> float:
        """Per-iteration halo total, Eq. (10): for every spatially-split
        layer, two exchanges (x in forward, dL/dy in backward), each a pair
        of sends (hence ``2 alpha``)."""
        total = 0.0
        for layer in spatial_extent_of(self.model, grid):
            if not layer.kernel or max(layer.kernel, default=1) <= 1:
                continue
            hx = halo_elements(layer.input, grid, layer.kernel)
            hy = halo_elements(layer.output, grid, layer.kernel)
            if hx == 0 and hy == 0:
                continue
            total += 2 * (2 * params.alpha + B * (hx + hy) * self.delta * params.beta)
        return total

    def _spatial_memory(
        self, grid: Tuple[int, ...], B: int, group_batch: float
    ) -> float:
        """Eq. (8) with the implementation refinement that only the leading
        spatially-split layers divide their activations by p."""
        split = {l.name for l in spatial_extent_of(self.model, grid)}
        p2 = 1
        for g in grid:
            p2 *= g
        total = 0.0
        for l in self.model:
            act_div = p2 if l.name in split else 1.0
            act = 2.0 * group_batch * (l.input.elements + l.output.elements) / act_div
            total += act + 2.0 * l.weight_elements + l.bias_elements
        return self.gamma * self.delta * total

    # ------------------------------------------------------------- pipeline
    def _pipeline(self, strategy: PipelineParallel, B: int, D: int, comm, log):
        """Eqs. (12)-(14): GPipe schedule of p stages and S micro-batches."""
        p, S = strategy.stages, strategy.segments
        I = D // B
        groups = self.model.partition_depth(p)
        fw_g = [self.profile.group_fw(g) for g in groups]
        bw_g = [self.profile.group_bw(g) for g in groups]
        wu_g = [self.profile.group_wu(g) for g in groups]
        bubble = (p + S - 1) / S
        checkpoint = getattr(strategy, "checkpoint", False)
        # Gradient checkpointing recomputes each stage's activations during
        # the backward sweep: one extra forward per sample (Section 5.3.2).
        fw_factor = 2.0 if checkpoint else 1.0
        comp = PhaseBreakdown(
            comp_fw=D * bubble * max(fw_g) * fw_factor,
            comp_bw=D * bubble * max(bw_g),
            comp_wu=I * max(wu_g),
        )
        params = self.cluster.hockney(p)
        # Boundary activation of each stage i < p: output of its last layer.
        boundary = [g[-1].output.elements for g in groups[:-1]]
        if boundary and p > 1:
            per_stage = max(
                comm.p2p(B / S * y * self.delta, params=params)
                for y in boundary
            )
            comm_p2p = 2 * D * (p + S - 2) / B * per_stage
        else:
            comm_p2p = 0.0
        per_epoch = replace(comp, comm_p2p=comm_p2p)
        if checkpoint:
            # Live activations: one micro-batch inside the stage being
            # recomputed, plus the stored stage-boundary activations of all
            # S micro-batches, plus full weights/gradients.
            memory = 0.0
            for g in groups:
                act_micro = self._memory_terms(batch_act=B / S, layers=g)
                boundary = (
                    self.gamma * self.delta * 2.0 * B
                    * g[-1].output.elements
                )
                memory = max(memory, act_micro + boundary)
            notes = [
                f"stages balanced by FLOPs: {[len(g) for g in groups]}",
                "gradient checkpointing at stage boundaries (+1 forward)",
            ]
        else:
            memory = max(
                self._memory_terms(batch_act=B, layers=g) for g in groups
            )
            notes = [f"stages balanced by FLOPs: {[len(g) for g in groups]}"]
        return per_epoch, memory, notes

    # --------------------------------------------------------------- filter
    def _filter(self, strategy: FilterParallel, B: int, D: int, comm, log):
        """Eqs. (15)-(16): Allgather(fwd) + Allreduce(bwd) per layer."""
        p = strategy.p
        I = D // B
        comp = self._comp(D, I, p_div=p, wu_div=p)
        fb = I * self._layerwise_collectives(p, p, B, comm, log)
        per_epoch = replace(comp, comm_fb=fb)
        memory = self._memory_terms(batch_act=B, weight_div=p)
        return per_epoch, memory, []

    def _layerwise_collectives(
        self,
        group_p: int,
        msg_div: int,
        B: float,
        comm: CommModel,
        log: _AlgoLog,
        params: Optional[HockneyParams] = None,
        scope: str = "auto",
    ) -> float:
        """Per-iteration layer-wise collectives of filter/channel
        parallelism over a ``group_p``-wide communicator: an Allgather of
        the partial activations (segments of ``B |y_l| delta / msg_div``)
        plus an Allreduce of the input gradients.  Under the paper policy
        both are rings, recovering Eq. (15)/(19)'s
        ``3 (p-1) sum_{l<G} (alpha + B |y_l| delta beta / p)``
        (the Allgather's ``p-1`` steps + the Allreduce's ``2(p-1)``).

        ``msg_div`` is the activation-sharding denominator — the *total*
        parallelism p, which differs from ``group_p`` for Data+Filter
        where each filter group only spans p2 PEs.
        """
        if group_p <= 1:
            return 0.0
        layers = self.model.weighted_layers
        total = 0.0
        for l in layers[:-1]:
            seg = B * l.output.elements * self.delta / msg_div
            total += self._coll(
                comm, log, "fb", "allgather", group_p, seg,
                params=params, scope=scope,
            )
            total += self._coll(
                comm, log, "fb", "allreduce", group_p, seg * group_p,
                params=params, scope=scope,
            )
        return total

    # -------------------------------------------------------------- channel
    def _channel(self, strategy: ChannelParallel, B: int, D: int, comm, log):
        """Eqs. (17)-(19): same totals as filter with reversed patterns
        (Allreduce forward, Allgather backward)."""
        p = strategy.p
        I = D // B
        comp = self._comp(D, I, p_div=p, wu_div=p)
        fb = I * self._layerwise_collectives(p, p, B, comm, log)
        per_epoch = replace(comp, comm_fb=fb)
        memory = self._memory_terms(batch_act=B, weight_div=p)
        return per_epoch, memory, []

    # ---------------------------------------------------------- data+filter
    def _data_filter(self, strategy: DataFilterParallel, B: int, D: int,
                     comm, log):
        """Eqs. (20)-(22): filter intra-group, data inter-group, with the
        segmented-Allreduce contention penalty phi (Section 5.2 uses 2x)."""
        p1, p2, p = strategy.p1, strategy.p2, strategy.p
        I = D // B
        comp = self._comp(D, I, p_div=p, wu_div=p2)
        # Filter collectives run inside a group; the paper maps groups
        # intra-node, so they see intra-node (NVLink) parameters.
        intra = self.cluster.hockney_intra(p2)
        fb = self._layerwise_collectives(
            p2, p, B, comm, log, params=intra, scope="intra-node"
        )
        # Gradient exchange: p2 disjoint segmented Allreduces over the p1
        # groups, sharing the node's NIC rails -> contention penalty.
        ge = 0.0
        if p1 > 1:
            inter = self.cluster.hockney(p)
            if self.contention:
                inter = inter.with_contention(data_filter_phi(self.cluster, p2))
            # Each group allreduces its 1/p2 weight shard over p1 PEs.
            ge = self._coll(
                comm, log, "ge", "allreduce", p1,
                self._weights_bytes() / p2,
                params=inter, scope="inter-node",
            )
        per_epoch = replace(comp, comm_fb=I * fb, comm_ge=I * ge)
        memory = self._memory_terms(
            batch_act=B / p1, weight_div=p2
        )
        notes = []
        if self.contention and p1 > 1:
            notes.append(
                f"GE beta scaled by phi={data_filter_phi(self.cluster, p2):.2f}"
            )
        return per_epoch, memory, notes

    # --------------------------------------------------------- data+spatial
    def _data_spatial(self, strategy: DataSpatialParallel, B: int, D: int,
                      comm, log):
        """Spatial intra-group + data inter-group with the hierarchical
        (leader-based) gradient exchange of Section 4.5.1."""
        p1, p2, p = strategy.p1, strategy.p2, strategy.p
        I = D // B
        group_batch = B / p1
        comp = self._comp(D, I, p_div=p, wu_div=1.0)
        intra = self.cluster.hockney_intra(
            p2, transport=self.halo_transport, floor=2
        )
        halo = 0.0
        if p2 > 1:
            halo = I * self._halo_epoch_time(strategy.grid, int(group_batch) or 1,
                                             intra)
        # Hierarchical GE: reduce to the node leader(s), Allreduce between
        # groups, broadcast back ("time for Allreduce is more than 2x as
        # those of data" -- Section 5.3.1).  With L > 1 leaders each
        # carries 1/L of the weights concurrently (the multi-leader fix of
        # Nguyen et al. that the paper cites), at the price of contention
        # once L exceeds the NIC rail count.
        L = getattr(strategy, "leaders", 1)
        wbytes = self._weights_bytes()
        nvl = self.cluster.hockney_intra(p2, floor=2)
        ge = (
            self._coll(comm, log, "ge", "reduce", p2, wbytes / L,
                       params=nvl, scope="intra-node")
            + self._coll(comm, log, "ge", "broadcast", p2, wbytes / L,
                         params=nvl, scope="intra-node")
        )
        if p1 > 1:
            inter = self.cluster.hockney(p)
            if self.contention and L > self.cluster.node.nics:
                inter = inter.with_contention(L / self.cluster.node.nics)
            ge += self._coll(comm, log, "ge", "allreduce", p1, wbytes / L,
                             params=inter, scope="inter-node")
        per_epoch = replace(comp, comm_halo=halo, comm_ge=I * ge)
        memory = self._ds_memory(strategy.grid, group_batch)
        notes = [] if L == 1 else [f"multi-leader allreduce: L={L}"]
        return per_epoch, memory, notes

    def _ds_memory(self, grid: Tuple[int, ...], group_batch: float) -> float:
        return self._spatial_memory(grid, int(group_batch) or 1,
                                    group_batch=group_batch)

    # ------------------------------------------------------------ fast path
    # Closed-form re-statements of the reference analyzers above, over the
    # compiled :attr:`kernel` invariants.  Each mirrors its reference
    # handler term for term: identical collective calls (same sizes, same
    # order of first appearance, so the algorithm log matches exactly),
    # identical error messages, and sums that differ only by floating-
    # point reassociation (<= 1e-9 relative, pinned by
    # tests/test_fast_path_equivalence.py).

    def _fast_comp(self, D: int, I: int, p_div: float, wu_div: float = 1.0
                   ) -> PhaseBreakdown:
        """`_comp` over the kernel's profile totals (bit-identical)."""
        k = self.kernel
        return PhaseBreakdown(
            comp_fw=D / p_div * k.fw_total,
            comp_bw=D / p_div * k.bw_total,
            comp_wu=I / wu_div * k.wu_total,
        )

    def _fast_memory(
        self,
        batch_act: float,
        weight_div: float = 1.0,
        act_div: float = 1.0,
    ) -> float:
        """`_memory_terms` as one closed form over exact element sums."""
        k = self.kernel
        return self.gamma * self.delta * (
            2.0 * batch_act * k.io_elements / act_div
            + 2.0 * k.weight_elements / weight_div
            + k.bias_elements
        )

    def _fast_halo(
        self, grid: Tuple[int, ...], B: int, params: HockneyParams
    ) -> float:
        """`_halo_epoch_time` from the kernel's per-grid halo table."""
        st = self.kernel.spatial(grid)
        if st.halo_pairs == 0:
            return 0.0
        return (
            4.0 * params.alpha * st.halo_pairs
            + 2.0 * B * st.halo_elements * self.delta * params.beta
        )

    def _fast_spatial_memory(
        self, grid: Tuple[int, ...], group_batch: float
    ) -> float:
        """`_spatial_memory` from the kernel's split/unsplit sums."""
        st = self.kernel.spatial(grid)
        p2 = 1
        for g in grid:
            p2 *= g
        k = self.kernel
        return self.gamma * self.delta * (
            2.0 * group_batch * (st.split_io / p2 + st.rest_io)
            + 2.0 * k.weight_elements + k.bias_elements
        )

    def _fast_layerwise(
        self,
        group_p: int,
        msg_div: int,
        B: float,
        comm: CommModel,
        log: _AlgoLog,
        params: Optional[HockneyParams] = None,
        scope: str = "auto",
    ) -> float:
        """`_layerwise_collectives` over the distinct-activation table:
        one Allgather + Allreduce choice per distinct ``|y_l|`` (in
        first-appearance order, so the log dedups identically), scaled
        by multiplicity."""
        if group_p <= 1:
            return 0.0
        delta = self.delta
        total = 0.0
        for y, count in self.kernel.layerwise_sizes:
            seg = B * y * delta / msg_div
            ag = comm.choose(
                "allgather", group_p, seg, params=params, scope=scope)
            log.add("fb", ag)
            ar = comm.choose(
                "allreduce", group_p, seg * group_p, params=params,
                scope=scope)
            log.add("fb", ar)
            total += count * (ag.seconds + ar.seconds)
        return total

    def _fast_layerwise_forward_leg(
        self, strategy: Strategy, B: int, comm: CommModel, log: _AlgoLog
    ) -> float:
        """`_layerwise_forward_leg` over the distinct-activation table."""
        sid = strategy.id
        if sid == "df":
            group_p, msg_div = strategy.p2, strategy.p
            params = self.cluster.hockney_intra(strategy.p2)
            scope = "intra-node"
        else:  # f / c
            group_p, msg_div = strategy.p, strategy.p
            params, scope = None, "auto"
        if group_p <= 1:
            return 0.0
        total = 0.0
        for y, count in self.kernel.layerwise_sizes:
            seg = B * y * self.delta / msg_div
            if sid == "c":
                choice = comm.choose(
                    "allreduce", group_p, seg * group_p,
                    params=params, scope=scope,
                )
            else:
                choice = comm.choose(
                    "allgather", group_p, seg, params=params, scope=scope
                )
            log.add("fb", choice)
            total += count * choice.seconds
        return total

    def _fast_serial(self, strategy: Serial, B: int, D: int, comm, log):
        I = D // B
        comp = self._fast_comp(D, I, p_div=1.0)
        memory = self._fast_memory(batch_act=B)
        return comp, memory, []

    def _fast_data(self, strategy: DataParallel, B: int, D: int, comm, log):
        p = strategy.p
        I = D // B
        comp = self._fast_comp(D, I, p_div=p)
        ge = I * self._coll(
            comm, log, "ge", "allreduce", p, self._weights_bytes()
        )
        per_epoch = replace(comp, comm_ge=ge)
        memory = self._fast_memory(batch_act=B / p)
        return per_epoch, memory, []

    def _fast_sharded_data(self, strategy: ShardedDataParallel, B: int,
                           D: int, comm, log):
        p = strategy.p
        I = D // B
        comp = self._fast_comp(D, I, p_div=p, wu_div=p)
        wbytes = self._weights_bytes()
        ge = I * (
            self._coll(comm, log, "ge", "reduce_scatter", p, wbytes)
            + 2 * self._coll(comm, log, "ge", "allgather", p, wbytes / p)
        )
        per_epoch = replace(comp, comm_ge=ge)
        k = self.kernel
        memory = self.gamma * self.delta * (
            2.0 * (B / p) * k.io_elements + k.weight2_plus_bias / p
        )
        return per_epoch, memory, ["weights/optimizer state sharded 1/p"]

    def _fast_spatial(self, strategy: SpatialParallel, B: int, D: int,
                      comm, log):
        p = strategy.p
        I = D // B
        comp = self._fast_comp(D, I, p_div=p)
        ge = I * self._coll(
            comm, log, "ge", "allreduce", p, self._weights_bytes()
        )
        halo_params = self.cluster.hockney(p, transport=self.halo_transport)
        halo = I * self._fast_halo(strategy.grid, B, halo_params)
        per_epoch = replace(comp, comm_ge=ge, comm_halo=halo)
        memory = self._fast_spatial_memory(strategy.grid, B)
        notes = [f"halo over {self.halo_transport} transport"]
        return per_epoch, memory, notes

    def _fast_pipeline(self, strategy: PipelineParallel, B: int, D: int,
                       comm, log):
        p, S = strategy.stages, strategy.segments
        I = D // B
        table = self.kernel.pipeline(p)
        bubble = (p + S - 1) / S
        checkpoint = getattr(strategy, "checkpoint", False)
        fw_factor = 2.0 if checkpoint else 1.0
        comp = PhaseBreakdown(
            comp_fw=D * bubble * table.max_fw * fw_factor,
            comp_bw=D * bubble * table.max_bw,
            comp_wu=I * table.max_wu,
        )
        params = self.cluster.hockney(p)
        if p > 1 and len(table.sizes) > 1:
            # p2p is monotone in the message size, so the heaviest
            # boundary activation decides the per-stage cost.
            per_stage = comm.p2p(
                B / S * table.max_boundary * self.delta, params=params)
            comm_p2p = 2 * D * (p + S - 2) / B * per_stage
        else:
            comm_p2p = 0.0
        per_epoch = replace(comp, comm_p2p=comm_p2p)
        gd = self.gamma * self.delta
        if checkpoint:
            memory = max(
                gd * (B / S * io2 + wb) + gd * 2.0 * B * last
                for io2, wb, last in table.mem_groups
            )
            notes = [
                f"stages balanced by FLOPs: {list(table.sizes)}",
                "gradient checkpointing at stage boundaries (+1 forward)",
            ]
        else:
            memory = max(
                gd * (B * io2 + wb) for io2, wb, _ in table.mem_groups
            )
            notes = [f"stages balanced by FLOPs: {list(table.sizes)}"]
        return per_epoch, memory, notes

    def _fast_filter(self, strategy: FilterParallel, B: int, D: int,
                     comm, log):
        p = strategy.p
        I = D // B
        comp = self._fast_comp(D, I, p_div=p, wu_div=p)
        fb = I * self._fast_layerwise(p, p, B, comm, log)
        per_epoch = replace(comp, comm_fb=fb)
        memory = self._fast_memory(batch_act=B, weight_div=p)
        return per_epoch, memory, []

    def _fast_channel(self, strategy: ChannelParallel, B: int, D: int,
                      comm, log):
        p = strategy.p
        I = D // B
        comp = self._fast_comp(D, I, p_div=p, wu_div=p)
        fb = I * self._fast_layerwise(p, p, B, comm, log)
        per_epoch = replace(comp, comm_fb=fb)
        memory = self._fast_memory(batch_act=B, weight_div=p)
        return per_epoch, memory, []

    def _fast_data_filter(self, strategy: DataFilterParallel, B: int,
                          D: int, comm, log):
        p1, p2, p = strategy.p1, strategy.p2, strategy.p
        I = D // B
        comp = self._fast_comp(D, I, p_div=p, wu_div=p2)
        intra = self.cluster.hockney_intra(p2)
        fb = self._fast_layerwise(
            p2, p, B, comm, log, params=intra, scope="intra-node"
        )
        ge = 0.0
        if p1 > 1:
            inter = self.cluster.hockney(p)
            if self.contention:
                inter = inter.with_contention(data_filter_phi(self.cluster, p2))
            ge = self._coll(
                comm, log, "ge", "allreduce", p1,
                self._weights_bytes() / p2,
                params=inter, scope="inter-node",
            )
        per_epoch = replace(comp, comm_fb=I * fb, comm_ge=I * ge)
        memory = self._fast_memory(batch_act=B / p1, weight_div=p2)
        notes = []
        if self.contention and p1 > 1:
            notes.append(
                f"GE beta scaled by phi={data_filter_phi(self.cluster, p2):.2f}"
            )
        return per_epoch, memory, notes

    def _fast_data_spatial(self, strategy: DataSpatialParallel, B: int,
                           D: int, comm, log):
        p1, p2, p = strategy.p1, strategy.p2, strategy.p
        I = D // B
        group_batch = B / p1
        comp = self._fast_comp(D, I, p_div=p, wu_div=1.0)
        intra = self.cluster.hockney_intra(
            p2, transport=self.halo_transport, floor=2
        )
        halo = 0.0
        if p2 > 1:
            halo = I * self._fast_halo(
                strategy.grid, int(group_batch) or 1, intra)
        L = getattr(strategy, "leaders", 1)
        wbytes = self._weights_bytes()
        nvl = self.cluster.hockney_intra(p2, floor=2)
        ge = (
            self._coll(comm, log, "ge", "reduce", p2, wbytes / L,
                       params=nvl, scope="intra-node")
            + self._coll(comm, log, "ge", "broadcast", p2, wbytes / L,
                         params=nvl, scope="intra-node")
        )
        if p1 > 1:
            inter = self.cluster.hockney(p)
            if self.contention and L > self.cluster.node.nics:
                inter = inter.with_contention(L / self.cluster.node.nics)
            ge += self._coll(comm, log, "ge", "allreduce", p1, wbytes / L,
                             params=inter, scope="inter-node")
        per_epoch = replace(comp, comm_halo=halo, comm_ge=I * ge)
        memory = self._fast_spatial_memory(strategy.grid, group_batch)
        notes = [] if L == 1 else [f"multi-leader allreduce: L={L}"]
        return per_epoch, memory, notes

    # ------------------------------------------------------------ batch path
    # Structure-of-arrays re-statements of the fast handlers above: one
    # strategy family per sub-batch, candidate columns (p, p1, p2, B) as
    # float64 vectors, collective costs via CommModel.time_batch.  Array
    # expressions are written operator-for-operator like the fast
    # handlers, so elementwise terms are bit-identical; only the
    # layer-wise reductions (numpy pairwise sums vs. sequential Python
    # sums) reassociate, keeping batch == fast == reference within
    # rel <= 1e-9 (pinned by tests/test_vectorized_equivalence.py).

    def project_batch(
        self,
        strategies: Sequence[Strategy],
        batches: Sequence[int],
        dataset_size: int,
        *,
        comms: Optional[Sequence[object]] = None,
    ) -> List[Union[Projection, Exception]]:
        """Project many ``(strategy, batch)`` candidates at once.

        Returns one entry per input, aligned: a :class:`Projection`, or
        the :class:`StrategyError`/:class:`ValueError` that candidate
        would have raised under :meth:`project` (other exception types
        propagate).  ``comms`` optionally carries a per-candidate comm
        override (``None`` / policy string / ``CommModel``), like
        :meth:`project`'s ``comm``.

        Candidates are grouped by (strategy family, resolved comm model)
        and each group is evaluated as array expressions over the
        compiled kernel.  Without numpy — or for the rare configuration
        a batch handler does not vectorize — candidates fall back to the
        scalar fast path with identical results.
        """
        n = len(strategies)
        if len(batches) != n:
            raise ValueError("strategies and batches must align")
        if comms is None:
            comms = [None] * n
        elif len(comms) != n:
            raise ValueError("comms must align with strategies")
        results: List[Union[Projection, Exception]] = [None] * n  # type: ignore[list-item]
        np = npcompat.np
        if np is None:
            for i in range(n):
                try:
                    results[i] = self.project(
                        strategies[i], batches[i], dataset_size,
                        comm=comms[i])
                except (StrategyError, ValueError) as exc:
                    results[i] = exc
            return results
        groups: Dict[Tuple[str, int], List[int]] = {}
        models: Dict[Tuple[str, int], CommModel] = {}
        alive: List[CommModel] = []  # pin ids used as group keys
        for i in range(n):
            b = batches[i]
            if b < 1 or dataset_size < b:
                results[i] = ValueError("need dataset_size >= batch >= 1")
                continue
            err = self._checked(strategies[i], b)
            if err is not None:
                results[i] = err
                continue
            cm = self._resolve_comm(comms[i])
            alive.append(cm)
            key = (strategies[i].id, id(cm))
            models[key] = cm
            groups.setdefault(key, []).append(i)
        # Loop-invariant Projection fields, applied via object.__new__ +
        # __dict__.update below: field-for-field identical to calling
        # Projection(...), minus the frozen __init__'s per-field guarded
        # setattr — measurable over thousands of assembled rows.
        proto = {
            "model_name": self.model.name,
            "dataset_size": dataset_size,
            "memory_capacity": self.cluster.gpu_memory_bytes,
            "gamma": self.gamma,
            "delta": self.delta,
        }
        for key, idxs in groups.items():
            handler = self._BATCH_HANDLERS.get(key[0])
            cm = models[key]
            sub = [strategies[i] for i in idxs]
            bat = [batches[i] for i in idxs]
            rows = None
            if handler is not None:
                try:
                    rows = handler(self, np, sub, bat, dataset_size, cm)
                except (_ScalarFallback, StrategyError, ValueError):
                    # Unvectorizable configuration, or a resolution error
                    # the scalar path raises per candidate: re-project
                    # the group one by one (identical answers).
                    rows = None
            if rows is None:
                for i in idxs:
                    try:
                        results[i] = self.project(
                            strategies[i], batches[i], dataset_size,
                            comm=comms[i])
                    except (StrategyError, ValueError) as exc:
                        results[i] = exc
                continue
            policy = cm.policy
            for i, row in zip(idxs, rows):
                if isinstance(row, Exception):
                    results[i] = row
                    continue
                per_epoch, memory, notes, algos = row
                proj = object.__new__(Projection)
                proj.__dict__.update(
                    proto,
                    strategy=strategies[i],
                    batch=batches[i],
                    per_epoch=per_epoch,
                    memory_bytes=memory,
                    notes=notes,
                    comm_policy=policy,
                    comm_algorithms=algos,
                )
                results[i] = proj
        return results

    # ------------------------------------------------------- batch helpers
    def _batch_base(self, np, strats, batches):
        n = len(strats)
        p_int = np.fromiter((s.p for s in strats), dtype=np.int64, count=n)
        B = np.asarray(batches, dtype=np.int64)
        return n, p_int, B

    def _per_unique(self, np, keys_int, fn):
        """``fn(int)`` once per unique value of ``keys_int``, mapped back
        per element as two float64 (alpha, beta) columns."""
        uvals, inv = np.unique(keys_int, return_inverse=True)
        inv = inv.reshape(keys_int.shape)
        res = [fn(int(v)) for v in uvals]
        a = np.asarray([x.alpha for x in res], dtype=np.float64)[inv]
        b = np.asarray([x.beta for x in res], dtype=np.float64)[inv]
        return a, b

    def _choice_labels(self, np, bc: BatchChoice, n):
        """Per-item ``collective:algorithm`` labels + seconds for a
        ``(n,)``-shaped :class:`BatchChoice`."""
        lbls = bc.labels()
        secs = np.broadcast_to(bc.seconds, (n,)).tolist()
        if bc.index is None:
            lab = [lbls[0]] * n
        else:
            lab = [
                lbls[j]
                for j in np.broadcast_to(bc.index, (n,)).tolist()
            ]
        return lab, secs

    @staticmethod
    def _ge_algos(parts):
        """Assemble one ``("ge", "a+b")`` log entry from ``(label,
        seconds)`` pairs in add order, mirroring _AlgoLog (zero-cost
        choices skipped, labels deduplicated, ordered)."""
        seen: List[str] = []
        for lbl, sec in parts:
            if sec > 0.0 and lbl not in seen:
                seen.append(lbl)
        return (("ge", "+".join(seen)),) if seen else ()

    def _batch_layerwise(
        self, np, group_p_int, msg_div, B, comm, params=None, scope="auto"
    ):
        """`_fast_layerwise` as a ``(candidates, distinct sizes)`` matrix:
        per-iteration totals plus the Allgather/Allreduce BatchChoices
        (for log assembly).  ``msg_div`` is a float64 column; ``params``
        is ``None`` or ``(alpha, beta)`` columns shaped ``(n, 1)``."""
        ka = self.kernel.arrays()
        y = ka.layerwise_y
        counts = ka.layerwise_count
        gp_col = group_p_int[:, None]
        seg = B[:, None] * y[None, :] * self.delta / msg_div[:, None]
        ag = comm.time_batch(
            "allgather", gp_col, seg, params=params, scope=scope)
        ar = comm.time_batch(
            "allreduce", gp_col, seg * group_p_int.astype(np.float64)[:, None],
            params=params, scope=scope)
        per_size = ag.seconds + ar.seconds
        total = (counts[None, :] * per_size).sum(axis=1)
        return total, ag, ar

    def _layerwise_log(self, np, ag: BatchChoice, ar: BatchChoice, n):
        """Per-item "fb" label strings (or ``None``) for the layer-wise
        leg, in `_fast_layerwise`'s interleaved add order."""
        ag_l, ar_l = ag.labels(), ar.labels()
        pos_ag = ag.seconds > 0.0
        pos_ar = ar.seconds > 0.0
        if ag.index is None and ar.index is None:
            row_ag = pos_ag.any(axis=1)
            row_ar = pos_ar.any(axis=1)
            if bool((pos_ag.all(axis=1) == row_ag).all()) and bool(
                (pos_ar.all(axis=1) == row_ar).all()
            ):
                # Uniform rows (the common case: every size positive for
                # p > 1, every size zero for p <= 1).
                out = []
                for a_on, r_on in zip(row_ag.tolist(), row_ar.tolist()):
                    parts = [ag_l[0]] if a_on else []
                    if r_on and ar_l[0] not in parts:
                        parts.append(ar_l[0])
                    out.append("+".join(parts) if parts else None)
                return out
        ia = None if ag.index is None else ag.index.tolist()
        ir = None if ar.index is None else ar.index.tolist()
        pa = pos_ag.tolist()
        pr = pos_ar.tolist()
        out = []
        for i in range(n):
            parts: List[str] = []
            for j in range(len(pa[i])):
                if pa[i][j]:
                    lbl = ag_l[0] if ia is None else ag_l[ia[i][j]]
                    if lbl not in parts:
                        parts.append(lbl)
                if pr[i][j]:
                    lbl = ar_l[0] if ir is None else ar_l[ir[i][j]]
                    if lbl not in parts:
                        parts.append(lbl)
            out.append("+".join(parts) if parts else None)
        return out

    # ------------------------------------------------------ batch handlers
    def _batch_serial(self, np, strats, batches, D, comm):
        n, _, B = self._batch_base(np, strats, batches)
        I = D // B
        k = self.kernel
        fw = (D / 1.0 * k.fw_total) + np.zeros(n)
        bw = (D / 1.0 * k.bw_total) + np.zeros(n)
        wu = I / 1.0 * k.wu_total
        mem = self.gamma * self.delta * (
            2.0 * B * k.io_elements
            + 2.0 * k.weight_elements
            + k.bias_elements
        )
        cp = fw + bw + wu
        return [
            (
                PhaseBreakdown._build(f, b, w, totals=(c, 0.0, c)),
                m, (), (),
            )
            for f, b, w, m, c in zip(
                fw.tolist(), bw.tolist(), wu.tolist(), mem.tolist(),
                cp.tolist())
        ]

    def _batch_data(self, np, strats, batches, D, comm):
        n, p_int, B = self._batch_base(np, strats, batches)
        p = p_int.astype(np.float64)
        I = D // B
        k = self.kernel
        fw = D / p * k.fw_total
        bw = D / p * k.bw_total
        wu = I / 1.0 * k.wu_total
        bc = comm.time_batch("allreduce", p_int, float(self._weights_bytes()))
        ge = I * bc.seconds
        mem = self.gamma * self.delta * (
            2.0 * (B / p) * k.io_elements
            + 2.0 * k.weight_elements
            + k.bias_elements
        )
        labs, secs = self._choice_labels(np, bc, n)
        cp = fw + bw + wu
        tt = cp + ge
        return [
            (
                PhaseBreakdown._build(f, b, w, g, totals=(c, g, t)),
                m, (), self._ge_algos([(labs[i], secs[i])]),
            )
            for i, (f, b, w, g, m, c, t) in enumerate(zip(
                fw.tolist(), bw.tolist(), wu.tolist(), ge.tolist(),
                mem.tolist(), cp.tolist(), tt.tolist()))
        ]

    def _batch_sharded_data(self, np, strats, batches, D, comm):
        n, p_int, B = self._batch_base(np, strats, batches)
        p = p_int.astype(np.float64)
        I = D // B
        k = self.kernel
        fw = D / p * k.fw_total
        bw = D / p * k.bw_total
        wu = I / p * k.wu_total
        wbytes = self._weights_bytes()
        rs = comm.time_batch("reduce_scatter", p_int, float(wbytes))
        ag = comm.time_batch("allgather", p_int, wbytes / p)
        ge = I * (rs.seconds + 2 * ag.seconds)
        mem = self.gamma * self.delta * (
            2.0 * (B / p) * k.io_elements + k.weight2_plus_bias / p
        )
        rs_lab, rs_sec = self._choice_labels(np, rs, n)
        ag_lab, ag_sec = self._choice_labels(np, ag, n)
        notes = ("weights/optimizer state sharded 1/p",)
        cp = fw + bw + wu
        tt = cp + ge
        return [
            (
                PhaseBreakdown._build(f, b, w, g, totals=(c, g, t)),
                m, notes,
                self._ge_algos(
                    [(rs_lab[i], rs_sec[i]), (ag_lab[i], ag_sec[i])]),
            )
            for i, (f, b, w, g, m, c, t) in enumerate(zip(
                fw.tolist(), bw.tolist(), wu.tolist(), ge.tolist(),
                mem.tolist(), cp.tolist(), tt.tolist()))
        ]

    def _batch_spatial(self, np, strats, batches, D, comm):
        n, p_int, B = self._batch_base(np, strats, batches)
        p = p_int.astype(np.float64)
        I = D // B
        k = self.kernel
        tables = self._spatial_tables(strats)
        ok = [not isinstance(t, Exception) for t in tables]
        fw = D / p * k.fw_total
        bw = D / p * k.bw_total
        wu = I / 1.0 * k.wu_total
        bc = comm.time_batch("allreduce", p_int, float(self._weights_bytes()))
        ge = I * bc.seconds
        ha, hb = self._per_unique(
            np, p_int,
            lambda v: self.cluster.hockney(v, transport=self.halo_transport),
        )
        pairs = np.asarray(
            [float(t.halo_pairs) if o else 0.0 for t, o in zip(tables, ok)])
        helems = np.asarray(
            [float(t.halo_elements) if o else 0.0
             for t, o in zip(tables, ok)])
        halo_iter = 4.0 * ha * pairs + 2.0 * B * helems * self.delta * hb
        halo = np.where(pairs == 0.0, 0.0, I * halo_iter)
        gridp = np.asarray(
            [float(_grid_product(s.grid)) for s in strats])
        split = np.asarray(
            [float(t.split_io) if o else 0.0 for t, o in zip(tables, ok)])
        rest = np.asarray(
            [float(t.rest_io) if o else 0.0 for t, o in zip(tables, ok)])
        mem = self.gamma * self.delta * (
            2.0 * B * (split / gridp + rest)
            + 2.0 * k.weight_elements + k.bias_elements
        )
        labs, secs = self._choice_labels(np, bc, n)
        notes = (f"halo over {self.halo_transport} transport",)
        cp = fw + bw + wu
        cc = ge + halo
        tt = cp + cc
        rows = []
        for i, (f, b, w, g, h, m, c, v, t) in enumerate(zip(
                fw.tolist(), bw.tolist(), wu.tolist(), ge.tolist(),
                halo.tolist(), mem.tolist(), cp.tolist(), cc.tolist(),
                tt.tolist())):
            if not ok[i]:
                rows.append(tables[i])
                continue
            rows.append((
                PhaseBreakdown._build(f, b, w, g, halo=h, totals=(c, v, t)),
                m, notes, self._ge_algos([(labs[i], secs[i])]),
            ))
        return rows

    def _spatial_tables(self, strats):
        """Per-item kernel spatial tables; a bad grid maps to the
        ValueError the scalar path raises for it."""
        memo: Dict[Tuple[int, ...], object] = {}
        out = []
        for s in strats:
            grid = tuple(s.grid)
            entry = memo.get(grid)
            if entry is None:
                try:
                    entry = self.kernel.spatial(grid)
                except ValueError as exc:
                    entry = exc
                memo[grid] = entry
            out.append(entry)
        return out

    def _batch_pipeline(self, np, strats, batches, D, comm):
        if any(getattr(s, "checkpoint", False) for s in strats):
            raise _ScalarFallback  # rare; the scalar memory max differs
        n = len(strats)
        p_int = np.fromiter(
            (s.stages for s in strats), dtype=np.int64, count=n)
        S_int = np.fromiter(
            (s.segments for s in strats), dtype=np.int64, count=n)
        B = np.asarray(batches, dtype=np.int64)
        I = D // B
        tmemo: Dict[int, object] = {}
        tables = []
        for s in strats:
            entry = tmemo.get(s.stages)
            if entry is None:
                try:
                    entry = self.kernel.pipeline(s.stages)
                except ValueError as exc:
                    entry = exc
                tmemo[s.stages] = entry
            tables.append(entry)
        ok = [not isinstance(t, Exception) for t in tables]
        bubble = (p_int + S_int - 1) / S_int
        max_fw = np.asarray(
            [t.max_fw if o else 0.0 for t, o in zip(tables, ok)])
        max_bw = np.asarray(
            [t.max_bw if o else 0.0 for t, o in zip(tables, ok)])
        max_wu = np.asarray(
            [t.max_wu if o else 0.0 for t, o in zip(tables, ok)])
        fw = D * bubble * max_fw
        bw = D * bubble * max_bw
        wu = I * max_wu
        pa, pb = self._per_unique(
            np, p_int, lambda v: self.cluster.hockney(v))
        boundary = np.asarray(
            [float(t.max_boundary) if o else 0.0
             for t, o in zip(tables, ok)])
        per_stage = pa + (B / S_int * boundary * self.delta) * pb
        active = (p_int > 1) & np.asarray(
            [o and len(t.sizes) > 1 for t, o in zip(tables, ok)])
        p2p = np.where(
            active, 2 * D * (p_int + S_int - 2) / B * per_stage, 0.0)
        gd = self.gamma * self.delta
        mem = np.zeros(n)
        by_table: Dict[int, List[int]] = {}
        for i, s in enumerate(strats):
            if ok[i]:
                by_table.setdefault(s.stages, []).append(i)
        for stages, sel in by_table.items():
            t = tmemo[stages]
            io2 = np.asarray([g[0] for g in t.mem_groups], dtype=np.float64)
            wb = np.asarray([g[1] for g in t.mem_groups], dtype=np.float64)
            bsel = B[sel].astype(np.float64)
            mem[sel] = (gd * (bsel[:, None] * io2[None, :] + wb[None, :])
                        ).max(axis=1)
        cp = fw + bw + wu
        tt = cp + p2p
        rows = []
        for i, (f, b, w, c, m, o, t) in enumerate(zip(
                fw.tolist(), bw.tolist(), wu.tolist(), p2p.tolist(),
                mem.tolist(), cp.tolist(), tt.tolist())):
            if not ok[i]:
                rows.append(tables[i])
                continue
            rows.append((
                PhaseBreakdown._build(f, b, w, p2p=c, totals=(o, c, t)),
                m,
                (f"stages balanced by FLOPs: {list(tables[i].sizes)}",),
                (),
            ))
        return rows

    def _batch_layerwise_family(self, np, strats, batches, D, comm):
        """Shared f/c handler (identical totals, reversed patterns)."""
        n, p_int, B = self._batch_base(np, strats, batches)
        p = p_int.astype(np.float64)
        I = D // B
        k = self.kernel
        fw = D / p * k.fw_total
        bw = D / p * k.bw_total
        wu = I / p * k.wu_total
        fbtot, ag, ar = self._batch_layerwise(np, p_int, p, B, comm)
        fb = I * fbtot
        mem = self.gamma * self.delta * (
            2.0 * B * k.io_elements
            + 2.0 * k.weight_elements / p
            + k.bias_elements
        )
        fb_lab = self._layerwise_log(np, ag, ar, n)
        cp = fw + bw + wu
        tt = cp + fb
        return [
            (
                PhaseBreakdown._build(f, b, w, fb=c, totals=(o, c, t)),
                m, (),
                (("fb", fb_lab[i]),) if fb_lab[i] else (),
            )
            for i, (f, b, w, c, m, o, t) in enumerate(zip(
                fw.tolist(), bw.tolist(), wu.tolist(), fb.tolist(),
                mem.tolist(), cp.tolist(), tt.tolist()))
        ]

    def _batch_data_filter(self, np, strats, batches, D, comm):
        n, p_int, B = self._batch_base(np, strats, batches)
        p = p_int.astype(np.float64)
        p1_int = np.fromiter(
            (s.p1 for s in strats), dtype=np.int64, count=n)
        p2_int = np.fromiter(
            (s.p2 for s in strats), dtype=np.int64, count=n)
        p1 = p1_int.astype(np.float64)
        p2 = p2_int.astype(np.float64)
        I = D // B
        k = self.kernel
        fw = D / p * k.fw_total
        bw = D / p * k.bw_total
        wu = I / p2 * k.wu_total
        ia, ib = self._per_unique(
            np, p2_int, lambda v: self.cluster.hockney_intra(v))
        fbtot, ag, ar = self._batch_layerwise(
            np, p2_int, p, B, comm,
            params=(ia[:, None], ib[:, None]), scope="intra-node",
        )
        fb = I * fbtot
        # Contended inter-node parameters per unique (p, p2) pair; the
        # phi note is keyed by p2 alone.
        ea = np.zeros(n)
        eb = np.zeros(n)
        phi_note: Dict[int, str] = {}
        pairs: Dict[Tuple[int, int], List[int]] = {}
        for i, (pv, p2v) in enumerate(
                zip(p_int.tolist(), p2_int.tolist())):
            pairs.setdefault((pv, p2v), []).append(i)
        for (pv, p2v), sel in pairs.items():
            inter = self.cluster.hockney(pv)
            if self.contention:
                phi = data_filter_phi(self.cluster, p2v)
                inter = inter.with_contention(phi)
                phi_note.setdefault(p2v, f"GE beta scaled by phi={phi:.2f}")
            ea[sel] = inter.alpha
            eb[sel] = inter.beta
        ge_bc = comm.time_batch(
            "allreduce", p1_int, self._weights_bytes() / p2,
            params=(ea, eb), scope="inter-node",
        )
        ge = I * ge_bc.seconds
        mem = self.gamma * self.delta * (
            2.0 * (B / p1) * k.io_elements
            + 2.0 * k.weight_elements / p2
            + k.bias_elements
        )
        fb_lab = self._layerwise_log(np, ag, ar, n)
        ge_lab, ge_sec = self._choice_labels(np, ge_bc, n)
        cp = fw + bw + wu
        cc = ge + fb
        tt = cp + cc
        rows = []
        for i, (f, b, w, cfb, g, m, o, v, t) in enumerate(zip(
                fw.tolist(), bw.tolist(), wu.tolist(), fb.tolist(),
                ge.tolist(), mem.tolist(), cp.tolist(), cc.tolist(),
                tt.tolist())):
            algos = []
            if fb_lab[i]:
                algos.append(("fb", fb_lab[i]))
            if ge_sec[i] > 0.0:
                algos.append(("ge", ge_lab[i]))
            p1v = int(p1_int[i])
            notes = (
                (phi_note[int(p2_int[i])],)
                if self.contention and p1v > 1
                else ()
            )
            rows.append((
                PhaseBreakdown._build(
                    f, b, w, g, fb=cfb, totals=(o, v, t)),
                m, notes, tuple(algos),
            ))
        return rows

    def _batch_data_spatial(self, np, strats, batches, D, comm):
        n, p_int, B = self._batch_base(np, strats, batches)
        p = p_int.astype(np.float64)
        p1_int = np.fromiter(
            (s.p1 for s in strats), dtype=np.int64, count=n)
        p2_int = np.fromiter(
            (s.p2 for s in strats), dtype=np.int64, count=n)
        p1 = p1_int.astype(np.float64)
        I = D // B
        k = self.kernel
        group_batch = B / p1
        fw = D / p * k.fw_total
        bw = D / p * k.bw_total
        wu = I / 1.0 * k.wu_total
        tables = self._spatial_tables(strats)
        ok = [not isinstance(t, Exception) for t in tables]
        ha, hb = self._per_unique(
            np, p2_int,
            lambda v: self.cluster.hockney_intra(
                v, transport=self.halo_transport, floor=2),
        )
        # int(group_batch) or 1, elementwise.
        gb = np.trunc(group_batch)
        gb = np.where(gb == 0.0, 1.0, gb)
        pairs = np.asarray(
            [float(t.halo_pairs) if o else 0.0 for t, o in zip(tables, ok)])
        helems = np.asarray(
            [float(t.halo_elements) if o else 0.0
             for t, o in zip(tables, ok)])
        halo_iter = 4.0 * ha * pairs + 2.0 * gb * helems * self.delta * hb
        halo = np.where((p2_int > 1) & (pairs > 0.0), I * halo_iter, 0.0)
        L_int = np.fromiter(
            (getattr(s, "leaders", 1) for s in strats),
            dtype=np.int64, count=n)
        wl = self._weights_bytes() / L_int.astype(np.float64)
        na, nb = self._per_unique(
            np, p2_int, lambda v: self.cluster.hockney_intra(v, floor=2))
        rd = comm.time_batch(
            "reduce", p2_int, wl, params=(na, nb), scope="intra-node")
        bc = comm.time_batch(
            "broadcast", p2_int, wl, params=(na, nb), scope="intra-node")
        ea = np.zeros(n)
        eb = np.zeros(n)
        lpairs: Dict[Tuple[int, int], List[int]] = {}
        for i, (pv, lv) in enumerate(zip(p_int.tolist(), L_int.tolist())):
            lpairs.setdefault((pv, lv), []).append(i)
        nics = self.cluster.node.nics
        for (pv, lv), sel in lpairs.items():
            inter = self.cluster.hockney(pv)
            if self.contention and lv > nics:
                inter = inter.with_contention(lv / nics)
            ea[sel] = inter.alpha
            eb[sel] = inter.beta
        arr = comm.time_batch(
            "allreduce", p1_int, wl, params=(ea, eb), scope="inter-node")
        ge = I * ((rd.seconds + bc.seconds) + arr.seconds)
        gridp = np.asarray(
            [float(_grid_product(s.grid)) for s in strats])
        split = np.asarray(
            [float(t.split_io) if o else 0.0 for t, o in zip(tables, ok)])
        rest = np.asarray(
            [float(t.rest_io) if o else 0.0 for t, o in zip(tables, ok)])
        mem = self.gamma * self.delta * (
            2.0 * group_batch * (split / gridp + rest)
            + 2.0 * k.weight_elements + k.bias_elements
        )
        rd_lab, rd_sec = self._choice_labels(np, rd, n)
        bc_lab, bc_sec = self._choice_labels(np, bc, n)
        ar_lab, ar_sec = self._choice_labels(np, arr, n)
        cp = fw + bw + wu
        cc = ge + halo
        tt = cp + cc
        rows = []
        for i, (f, b, w, h, g, m, o, v, t) in enumerate(zip(
                fw.tolist(), bw.tolist(), wu.tolist(), halo.tolist(),
                ge.tolist(), mem.tolist(), cp.tolist(), cc.tolist(),
                tt.tolist())):
            if not ok[i]:
                rows.append(tables[i])
                continue
            lv = int(L_int[i])
            rows.append((
                PhaseBreakdown._build(f, b, w, g, halo=h, totals=(o, v, t)),
                m,
                () if lv == 1 else (f"multi-leader allreduce: L={lv}",),
                self._ge_algos([
                    (rd_lab[i], rd_sec[i]),
                    (bc_lab[i], bc_sec[i]),
                    (ar_lab[i], ar_sec[i]),
                ]),
            ))
        return rows

    #: Strategy family -> batch handler (unbound; called with ``self``).
    _BATCH_HANDLERS = {
        "serial": _batch_serial,
        "d": _batch_data,
        "z": _batch_sharded_data,
        "s": _batch_spatial,
        "p": _batch_pipeline,
        "f": _batch_layerwise_family,
        "c": _batch_layerwise_family,
        "df": _batch_data_filter,
        "ds": _batch_data_spatial,
    }


def _grid_product(grid: Tuple[int, ...]) -> int:
    out = 1
    for g in grid:
        out *= g
    return out
