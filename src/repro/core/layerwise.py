"""Per-layer hybrid strategy planning (Section 3.5's generalization).

The paper's strategies apply one decomposition to the whole network, and
Section 3.5 notes "the hybrid strategy could be more complex when applying
different parallel strategies for different layers" (citing Jia et al.'s
layer-wise exploration and Krizhevsky's "one weird trick" — data-parallel
convolutions + model-parallel FC layers).  This module implements that
generalization on top of the same Table-3 cost primitives: a dynamic
program over the layer chain that picks, per layer, one of

* ``data``       — batch-split compute, weights replicated (GE needed),
* ``spatial``    — spatial-split compute with halo exchange (GE needed),
* ``filter``     — output-channel split, per-layer Allgather+Allreduce,
* ``channel``    — input-channel split, same cost shape,
* ``replicate``  — redundant full compute (free of communication),

while charging *re-decomposition* collectives whenever consecutive layers
need the activation in a different layout (batch-split, spatially-split, or
replicated).  The DP is exact for the chain model because the cost of a
layer depends only on (previous layout, chosen mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..network.topology import ClusterSpec
from .analytical import PhaseBreakdown
from .graph import ModelGraph
from .layers import Layer
from .profiles import ComputeProfile
from .strategies import _square_grid
from .tensors import halo_elements

__all__ = ["LayerAssignment", "LayerwisePlan", "LayerwisePlanner"]

#: Activation layouts across the p PEs.
LAYOUTS = ("batch", "replicated", "spatial")

#: Execution modes and the layouts they consume/produce.
MODE_LAYOUTS: Dict[str, Tuple[str, str]] = {
    "data": ("batch", "batch"),
    "spatial": ("spatial", "spatial"),
    "filter": ("replicated", "replicated"),
    "channel": ("replicated", "replicated"),
    "replicate": ("replicated", "replicated"),
}


@dataclass(frozen=True)
class LayerAssignment:
    """One layer's planned execution."""

    layer: str
    mode: str
    comp_s: float        # per-iteration compute on the critical PE
    comm_s: float        # per-layer collectives (FB phase)
    transition_s: float  # re-decomposition cost charged before this layer

    @property
    def total_s(self) -> float:
        return self.comp_s + self.comm_s + self.transition_s


@dataclass(frozen=True)
class LayerwisePlan:
    """A complete per-layer plan with its projected iteration time."""

    model_name: str
    p: int
    batch: int
    assignments: Tuple[LayerAssignment, ...]
    per_iteration: PhaseBreakdown

    @property
    def mode_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for a in self.assignments:
            counts[a.mode] = counts.get(a.mode, 0) + 1
        return counts

    @property
    def is_uniform(self) -> bool:
        return len(self.mode_counts) == 1

    def modes(self) -> List[str]:
        return [a.mode for a in self.assignments]


class LayerwisePlanner:
    """Exact DP planner over the layer chain.

    Parameters mirror :class:`~repro.core.analytical.AnalyticalModel`; the
    cost primitives are identical, so a uniform plan's cost matches the
    corresponding Table-3 projection up to the per-layer attribution of
    the gradient-exchange latency.
    """

    def __init__(
        self,
        model: ModelGraph,
        cluster: ClusterSpec,
        profile: ComputeProfile,
        p: int,
        *,
        delta: int = 4,
        modes: Tuple[str, ...] = ("data", "spatial", "filter", "channel",
                                  "replicate"),
    ) -> None:
        if p < 1:
            raise ValueError("p must be >= 1")
        profile.validate_against(model)
        unknown = set(modes) - set(MODE_LAYOUTS)
        if unknown:
            raise ValueError(f"unknown modes: {sorted(unknown)}")
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.p = p
        self.delta = delta
        self.modes = modes
        self.params = cluster.hockney(p)
        try:
            self.grid = _square_grid(p, model.input_spec.ndim)
        except Exception:
            self.grid = None

    # ------------------------------------------------------------- feasibility
    def _mode_feasible(self, layer: Layer, mode: str, batch: int) -> bool:
        if mode == "replicate":
            return True
        if mode == "data":
            return batch >= self.p
        if mode == "filter":
            return (
                layer.has_weights
                and layer.out_channels >= self.p
                and layer.out_channels % self.p == 0
            )
        if mode == "channel":
            return (
                layer.has_weights
                and layer.in_channels >= self.p
                and layer.in_channels % self.p == 0
            )
        if mode == "spatial":
            if self.grid is None or not layer.spatially_parallelizable:
                return False
            if len(self.grid) != layer.input.ndim:
                return False
            return all(g <= s for g, s in zip(self.grid, layer.input.spatial))
        return False

    # ------------------------------------------------------------------ costs
    def _comp(self, layer: Layer, mode: str, batch: int) -> float:
        """Per-iteration compute of the layer on the critical PE."""
        t = self.profile.fw(layer.name) + self.profile.bw(layer.name)
        wu = self.profile.wu(layer.name)
        if mode == "data":
            return batch / self.p * t + wu
        if mode in ("filter", "channel"):
            return batch * t / self.p + wu / self.p
        if mode == "spatial":
            return batch * t / self.p + wu
        # replicate: every PE does the full batch.
        return batch * t + wu

    def _layer_comm(self, layer: Layer, mode: str, batch: int) -> float:
        """Per-iteration FB-phase collectives this mode requires."""
        if mode in ("filter", "channel"):
            msg = batch * layer.output.elements * self.delta / self.p
            return 3 * (self.p - 1) * (self.params.alpha + msg * self.params.beta)
        if mode == "spatial" and layer.kernel and max(layer.kernel) > 1:
            hx = halo_elements(layer.input, self.grid, layer.kernel)
            hy = halo_elements(layer.output, self.grid, layer.kernel)
            if hx or hy:
                return 2 * (
                    2 * self.params.alpha
                    + batch * (hx + hy) * self.delta * self.params.beta
                )
        return 0.0

    def _ge_bandwidth(self, layer: Layer, mode: str) -> float:
        """Per-iteration gradient-exchange bandwidth this layer adds.

        Weights are replicated (and see different data) under data/spatial
        execution -> their gradients must be Allreduced.  Filter/channel
        shard the weights; replicate-mode gradients are identical on every
        PE; neither needs exchange.
        """
        if mode in ("data", "spatial") and layer.has_weights:
            nbytes = (layer.weight_elements + layer.bias_elements) * self.delta
            return 2 * (self.p - 1) * (nbytes / self.p) * self.params.beta
        return 0.0

    def _transition(self, prev: str, nxt: str, layer: Layer, batch: int
                    ) -> float:
        """Re-decomposition collective between layouts, on this layer's
        *input* tensor."""
        if prev == nxt:
            return 0.0
        nbytes = batch * layer.input.elements * self.delta
        gather = (self.p - 1) * (
            self.params.alpha + nbytes / self.p * self.params.beta
        )
        if prev == "replicated":
            # Every PE already holds the full tensor; slicing is local.
            return 0.0
        if nxt == "replicated":
            return gather
        # batch <-> spatial: an all-to-all, costed like the gather (each PE
        # exchanges (p-1)/p of its shard).
        return gather

    # -------------------------------------------------------------------- DP
    def plan(self, batch: int) -> LayerwisePlan:
        """Find the minimum-time per-layer assignment for ``batch``."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        # dp[layout] = (cost, path) where path = [(mode, comp, comm, trans)]
        start = "replicated"  # the input batch is loaded once, broadcast
        dp: Dict[str, Tuple[float, List]] = {start: (0.0, [])}
        for layer in self.model:
            ndp: Dict[str, Tuple[float, List]] = {}
            for mode in self.modes:
                if not self._mode_feasible(layer, mode, batch):
                    continue
                need, out = MODE_LAYOUTS[mode]
                comp = self._comp(layer, mode, batch)
                comm = self._layer_comm(layer, mode, batch)
                ge = self._ge_bandwidth(layer, mode)
                for prev_layout, (cost, path) in dp.items():
                    trans = self._transition(prev_layout, need, layer, batch)
                    total = cost + comp + comm + ge + trans
                    entry = (total, path + [(layer.name, mode, comp,
                                             comm + ge, trans)])
                    if out not in ndp or total < ndp[out][0]:
                        ndp[out] = entry
            if not ndp:
                raise ValueError(
                    f"no feasible mode for layer {layer.name!r} at p={self.p}"
                )
            dp = ndp
        best_cost, best_path = min(dp.values(), key=lambda cp: cp[0])

        assignments = tuple(
            LayerAssignment(layer=n, mode=m, comp_s=c, comm_s=f,
                            transition_s=t)
            for n, m, c, f, t in best_path
        )
        # One alpha charge for the fused gradient-exchange launch.
        ge_layers = [a for a in assignments if a.mode in ("data", "spatial")]
        ge_alpha = (
            2 * (self.p - 1) * self.params.alpha if ge_layers else 0.0
        )
        breakdown = PhaseBreakdown(
            comp_fw=sum(a.comp_s for a in assignments),
            comm_fb=sum(a.comm_s for a in assignments),
            comm_p2p=sum(a.transition_s for a in assignments),
            comm_ge=ge_alpha,
        )
        return LayerwisePlan(
            model_name=self.model.name,
            p=self.p,
            batch=batch,
            assignments=assignments,
            per_iteration=breakdown,
        )

    def uniform_plan(self, mode: str, batch: int) -> LayerwisePlan:
        """Force a single mode everywhere (for comparisons).

        Raises if the mode is infeasible for some layer — use
        ``"replicate"``-free models or feasible (mode, p) pairs.
        """
        saved = self.modes
        try:
            self.modes = (mode,)
            return self.plan(batch)
        finally:
            self.modes = saved
