"""Empirical parametrization (Section 4.4).

ParaDL's parameters come in two groups, both *measured* rather than derived:

* **Computation** (``FW_l``, ``BW_l``, ``WU_l``): profiled per layer on the
  target device.  :func:`profile_model` produces the table from the
  simulated V100 roofline — the stand-in for running the paper's layer
  benchmarks.
* **Communication** (``alpha``, ``beta``): measured by sweeping collective
  message sizes (OSU micro-benchmarks / nccl-tests in the paper) and
  interpolating.  :func:`measure_allreduce_curve` runs the sweep on the
  simulated fabric and :func:`fit_hockney` recovers (alpha, beta) by linear
  least squares — the interpolation step of the paper.

The fitted parameters are *invariant to the parallelism strategy* (the
paper's key portability claim): they depend on the system and transport
only, and the analytical model reuses them across all strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .. import npcompat
from ..network.hockney import HockneyParams
from ..network.topology import ClusterSpec
from .graph import ModelGraph
from .profiles import ComputeProfile

__all__ = [
    "fit_hockney",
    "measure_allreduce_curve",
    "calibrate_cluster",
    "profile_model",
    "estimate_gamma",
    "CalibrationResult",
]


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted communication parameters plus fit quality."""

    params: HockneyParams
    residual_rms: float
    num_points: int
    pattern: str
    p: int


def fit_hockney(
    message_sizes: Sequence[float],
    times: Sequence[float],
    p: int,
    pattern: str = "allreduce",
) -> CalibrationResult:
    """Fit (alpha, beta) from measured collective times.

    For a ring Allreduce ``t(m) = 2(p-1) alpha + 2(p-1)/p * m * beta`` is
    linear in ``m``; an ordinary least-squares line through the sweep
    recovers both parameters.  ``pattern`` selects the step-count model
    ("allreduce", "allgather", or "p2p").
    """
    np = npcompat.np
    sizes = [float(m) for m in message_sizes]
    t = [float(x) for x in times]
    if len(sizes) != len(t) or len(sizes) < 2:
        raise ValueError("need >= 2 matching (size, time) points")
    if p < 2 and pattern != "p2p":
        raise ValueError("collective fits need p >= 2")
    if pattern == "allreduce":
        step_count = 2 * (p - 1)
        bytes_per_step = [m / p for m in sizes]
    elif pattern == "allgather":
        step_count = p - 1
        bytes_per_step = sizes  # sweep is per-PE segment size
    elif pattern == "p2p":
        step_count = 1
        bytes_per_step = sizes
    else:
        raise ValueError(f"unknown pattern {pattern!r}")

    # t = step_count * alpha + step_count * bytes_per_step * beta
    if np is not None:
        slope, intercept = np.polyfit(bytes_per_step, t, 1)
    else:
        # numpy-free ordinary least squares (same line, up to fp noise)
        n = len(t)
        mx = sum(bytes_per_step) / n
        my = sum(t) / n
        var = sum((x - mx) ** 2 for x in bytes_per_step)
        if var == 0.0:
            raise ValueError("need at least two distinct message sizes")
        slope = sum(
            (x - mx) * (y - my) for x, y in zip(bytes_per_step, t)) / var
        intercept = my - slope * mx
    alpha = max(0.0, float(intercept) / step_count)
    beta = max(0.0, float(slope) / step_count)
    residual = math.sqrt(sum(
        (step_count * (alpha + x * beta) - y) ** 2
        for x, y in zip(bytes_per_step, t)) / len(t))
    return CalibrationResult(
        params=HockneyParams(alpha=alpha, beta=beta),
        residual_rms=residual,
        num_points=len(sizes),
        pattern=pattern,
        p=p,
    )


def measure_allreduce_curve(
    cluster: ClusterSpec,
    p: int,
    message_sizes: Sequence[float],
    transport: str = "nccl",
    congestion=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the micro-benchmark sweep on the simulated fabric.

    Returns ``(sizes, times)`` — the nccl-tests stand-in the fit consumes.
    """
    from ..simulator.collectives_sim import CollectiveSimulator

    sim = CollectiveSimulator(cluster, congestion)
    gpus = list(range(p))
    np = npcompat.np
    sizes = [float(m) for m in message_sizes]
    times = [sim.ring_allreduce(gpus, m, transport=transport) for m in sizes]
    if np is None:  # plain lists; fit_hockney accepts either
        return sizes, times
    return np.asarray(sizes), np.asarray(times)


def calibrate_cluster(
    cluster: ClusterSpec,
    p: int,
    message_sizes: Optional[Sequence[float]] = None,
    transport: str = "nccl",
) -> CalibrationResult:
    """End-to-end calibration: sweep + fit for a ``p``-wide communicator.

    The resulting parameters differ between intra-node and inter-node
    ``p`` — "alpha and beta become different when changing the number of
    processing elements in a hierarchical computing architecture"
    (Section 4.4).
    """
    if message_sizes is None:
        message_sizes = [2.0 ** e for e in range(12, 29, 2)]  # 4 KiB..256 MiB
    sizes, times = measure_allreduce_curve(
        cluster, p, message_sizes, transport=transport
    )
    return fit_hockney(sizes, times, p, pattern="allreduce")


def profile_model(
    model: ModelGraph,
    samples_per_pe: int,
    gpu=None,
    optimizer: str = "sgd",
    delta: int = 4,
) -> ComputeProfile:
    """Profile per-layer compute times (the paper's Section 4.4 step).

    ``samples_per_pe`` is the tuned per-device batch (``b`` in Figure 3) at
    which the profiling runs — efficiency depends on it, which is why the
    paper tunes it per model/strategy.
    """
    from ..simulator.compute import GpuComputeModel, V100

    model_gpu = gpu if gpu is not None else V100
    return GpuComputeModel(model_gpu, delta=delta, optimizer=optimizer).profile(
        model, samples_per_pe
    )


def estimate_gamma(
    naive_bytes: float,
    measured_peak_bytes: float,
) -> float:
    """Memory-reuse factor gamma = measured peak / naive aggregate.

    The paper derives gamma from layer-level memory profiling studies; given
    a measured peak (e.g. from a framework's allocator stats) this returns
    the factor to plug into the analytical memory model.
    """
    if naive_bytes <= 0 or measured_peak_bytes <= 0:
        raise ValueError("byte counts must be > 0")
    gamma = measured_peak_bytes / naive_bytes
    if gamma > 1.0:
        raise ValueError(
            f"measured peak ({measured_peak_bytes}) exceeds the naive "
            f"aggregate ({naive_bytes}); check the inputs"
        )
    return gamma
