"""Layer intermediate representation for the cost model.

Each layer knows its per-sample input/output/weight tensor specs and its
forward/backward FLOP counts.  The adaptation of non-Conv layers follows
Section 2.2 of the paper:

* **fully-connected** layers are convolutions whose kernel equals the input
  extent (output spatial extent ``1``),
* **channel-wise** layers (pooling, batch-norm) keep ``F = C``,
* **element-wise** layers (ReLU, residual Add) keep ``F = C`` and have no
  weights,
* layers without weights use ``w[C, F, 0]`` — i.e. ``|w| = 0``.

FLOP counts use the conventional multiply-accumulate = 2 FLOPs accounting;
the backward pass is split into the two GEMM-shaped pieces the paper names
``BW_data`` (input gradients) and ``BW_weight`` (weight gradients) so the
compute model can price them separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .tensors import TensorSpec, conv_output_extent, pool_output_extent, prod

__all__ = [
    "Layer",
    "Conv",
    "Pool",
    "FullyConnected",
    "BatchNorm",
    "ReLU",
    "Add",
    "GlobalAvgPool",
    "Flatten",
]


def _astuple(value, ndim: int, name: str) -> Tuple[int, ...]:
    """Broadcast an int (or sequence) to an ``ndim``-tuple."""
    if isinstance(value, int):
        return (value,) * ndim
    value = tuple(int(v) for v in value)
    if len(value) != ndim:
        raise ValueError(f"{name} must have {ndim} entries, got {value}")
    return value


@dataclass
class Layer:
    """Base layer: shape specs plus cost queries.

    Attributes
    ----------
    name:
        Unique layer name within a graph (e.g. ``conv2_1``).
    input:
        Per-sample input spec ``x_l``.
    output:
        Per-sample output spec ``y_l``.
    weight_elements:
        ``|w_l|`` — parameter element count (0 for weight-less layers).
    bias_elements:
        ``|bi_l|``.
    """

    name: str
    input: TensorSpec
    output: TensorSpec
    weight_elements: int = 0
    bias_elements: int = 0
    kernel: Tuple[int, ...] = field(default_factory=tuple)
    stride: Tuple[int, ...] = field(default_factory=tuple)
    padding: Tuple[int, ...] = field(default_factory=tuple)
    #: Name of the layer whose output feeds this one.  ``None`` means the
    #: chain predecessor; branch layers (e.g. ResNet downsample projections)
    #: set it explicitly.  Builders assign it after construction.
    parent: Optional[str] = None

    # ---- identity -----------------------------------------------------
    @property
    def kind(self) -> str:
        return type(self).__name__

    @property
    def has_weights(self) -> bool:
        return self.weight_elements > 0

    @property
    def in_channels(self) -> int:
        """``C_l`` in the paper's notation."""
        return self.input.channels

    @property
    def out_channels(self) -> int:
        """``F_l`` in the paper's notation."""
        return self.output.channels

    @property
    def parameters(self) -> int:
        return self.weight_elements + self.bias_elements

    # ---- FLOPs ---------------------------------------------------------
    def forward_flops(self) -> int:
        """FLOPs of ``FW_l`` for one sample."""
        raise NotImplementedError

    def backward_data_flops(self) -> int:
        """FLOPs of ``BW_data`` (dL/dx) for one sample."""
        return self.forward_flops()

    def backward_weight_flops(self) -> int:
        """FLOPs of ``BW_weight`` (dL/dw) for one sample."""
        return self.forward_flops() if self.has_weights else 0

    def backward_flops(self) -> int:
        """Total ``BW_l`` FLOPs for one sample."""
        return self.backward_data_flops() + self.backward_weight_flops()

    def weight_update_flops(self) -> int:
        """FLOPs of a plain-SGD weight update per iteration.

        One multiply-add per parameter (learning-rate scale + subtract).
        Optimizers with state (momentum, Adam) multiply this; see
        :mod:`repro.simulator.compute`.
        """
        return 2 * self.parameters

    # ---- parallelism metadata ------------------------------------------
    @property
    def spatially_parallelizable(self) -> bool:
        """Whether spatial decomposition applies to this layer."""
        return self.input.ndim > 0 and self.output.ndim > 0

    @property
    def channel_parallelizable(self) -> bool:
        return self.has_weights and self.in_channels > 1

    @property
    def filter_parallelizable(self) -> bool:
        return self.has_weights and self.out_channels > 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kind}({self.name}: {self.input} -> {self.output}, "
            f"params={self.parameters})"
        )


class Conv(Layer):
    """A ``d``-dimensional convolution ``w[C, F, K^d]``."""

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        out_channels: int,
        kernel,
        stride=1,
        padding=0,
        bias: bool = True,
    ) -> None:
        ndim = input.ndim
        if ndim == 0:
            raise ValueError("Conv requires a spatial input; use FullyConnected")
        kernel = _astuple(kernel, ndim, "kernel")
        stride = _astuple(stride, ndim, "stride")
        padding = _astuple(padding, ndim, "padding")
        out_extent = conv_output_extent(input.spatial, kernel, stride, padding)
        output = TensorSpec(out_channels, out_extent)
        weight = input.channels * out_channels * prod(kernel)
        super().__init__(
            name=name,
            input=input,
            output=output,
            weight_elements=weight,
            bias_elements=out_channels if bias else 0,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )

    def forward_flops(self) -> int:
        # 2 * |Y| * F * C * |K| multiply-accumulates per sample.
        return (
            2
            * self.output.spatial_elements
            * self.out_channels
            * self.in_channels
            * prod(self.kernel)
        )


class FullyConnected(Layer):
    """FC layer expressed as a convolution with kernel == input extent.

    Per Section 2.2: an FC layer with input ``x[N, C, W x H]`` and ``F``
    outputs is a convolution ``w[C, F, W x H]`` with stride 1 / padding 0,
    producing ``y[N, F, 1 x 1]`` — which we store as spatially-degenerate.
    """

    def __init__(self, name: str, input: TensorSpec, out_features: int,
                 bias: bool = True) -> None:
        weight = input.elements * out_features
        super().__init__(
            name=name,
            input=input,
            output=TensorSpec(out_features),
            weight_elements=weight,
            bias_elements=out_features if bias else 0,
            kernel=tuple(input.spatial),
        )

    def forward_flops(self) -> int:
        return 2 * self.input.elements * self.out_channels

    @property
    def spatially_parallelizable(self) -> bool:
        # The paper explicitly does not spatially parallelize FC layers
        # (Section 4.2): the communication overhead would dominate.
        return False


class Pool(Layer):
    """Max/average pooling: channel-wise, weight-less."""

    def __init__(self, name: str, input: TensorSpec, kernel, stride=None,
                 padding=0, ceil_mode: bool = False) -> None:
        ndim = input.ndim
        kernel = _astuple(kernel, ndim, "kernel")
        stride = _astuple(stride if stride is not None else kernel, ndim, "stride")
        padding = _astuple(padding, ndim, "padding")
        out_extent = pool_output_extent(
            input.spatial, kernel, stride, padding, ceil_mode=ceil_mode
        )
        super().__init__(
            name=name,
            input=input,
            output=TensorSpec(input.channels, out_extent),
            kernel=kernel,
            stride=stride,
            padding=padding,
        )

    def forward_flops(self) -> int:
        # One comparison/add per kernel element per output position.
        return self.output.elements * prod(self.kernel)

    def backward_weight_flops(self) -> int:
        return 0

    def backward_data_flops(self) -> int:
        return self.output.elements * prod(self.kernel)


class GlobalAvgPool(Layer):
    """Global average pooling collapsing the spatial extent."""

    def __init__(self, name: str, input: TensorSpec) -> None:
        super().__init__(
            name=name,
            input=input,
            output=TensorSpec(input.channels),
            kernel=tuple(input.spatial),
        )

    def forward_flops(self) -> int:
        return self.input.elements

    def backward_data_flops(self) -> int:
        return self.input.elements

    @property
    def spatially_parallelizable(self) -> bool:
        return False


class Flatten(Layer):
    """Shape-only layer folding spatial dims into channels (zero cost)."""

    def __init__(self, name: str, input: TensorSpec) -> None:
        super().__init__(
            name=name,
            input=input,
            output=TensorSpec(input.elements),
        )

    def forward_flops(self) -> int:
        return 0

    def backward_data_flops(self) -> int:
        return 0

    @property
    def spatially_parallelizable(self) -> bool:
        return False


class BatchNorm(Layer):
    """Batch normalization: channel-wise, tiny weights (gamma, beta).

    The parallel-strategy implications (synchronized vs local BN,
    distributed recompute under filter/channel parallelism) are discussed in
    Section 4.5.2 and handled by the strategy analyzers; the base cost is a
    handful of element-wise passes.
    """

    def __init__(self, name: str, input: TensorSpec) -> None:
        super().__init__(
            name=name,
            input=input,
            output=input,
            weight_elements=2 * input.channels,
            bias_elements=0,
        )

    def forward_flops(self) -> int:
        # mean + var + normalize + scale/shift: ~4 passes, 2 FLOPs each.
        return 8 * self.input.elements

    def backward_data_flops(self) -> int:
        return 8 * self.input.elements

    def backward_weight_flops(self) -> int:
        return 2 * self.input.elements


class ReLU(Layer):
    """Element-wise activation; ``F = C``, no weights."""

    def __init__(self, name: str, input: TensorSpec) -> None:
        super().__init__(name=name, input=input, output=input)

    def forward_flops(self) -> int:
        return self.input.elements

    def backward_data_flops(self) -> int:
        return self.input.elements


class Add(Layer):
    """Residual element-wise addition of a skip connection.

    ``skip_of`` names the earlier layer whose output is added; the graph
    records this so memory analysis can count the retained activation.
    """

    def __init__(self, name: str, input: TensorSpec,
                 skip_of: Optional[str] = None) -> None:
        super().__init__(name=name, input=input, output=input)
        self.skip_of = skip_of

    def forward_flops(self) -> int:
        return self.input.elements

    def backward_data_flops(self) -> int:
        return self.input.elements
