"""Core of the reproduction: tensor/layer IR, strategies, the analytical
model (Table 3), and the ParaDL oracle facade."""

from .tensors import TensorSpec, halo_elements, prod
from .math_utils import divisors, power_of_two_budgets, smallest_prime_factor
from .layers import (
    Layer,
    Conv,
    Pool,
    FullyConnected,
    BatchNorm,
    ReLU,
    Add,
    GlobalAvgPool,
    Flatten,
)
from .graph import ModelGraph, GraphStats
from .strategies import (
    Strategy,
    Serial,
    DataParallel,
    ShardedDataParallel,
    SpatialParallel,
    PipelineParallel,
    FilterParallel,
    ChannelParallel,
    DataFilterParallel,
    DataSpatialParallel,
    StrategyError,
    strategy_from_id,
    ALL_STRATEGY_IDS,
)
from .profiles import LayerTimes, ComputeProfile
from .analytical import AnalyticalModel, PhaseBreakdown, Projection
from .oracle import ParaDL, Suggestion, accuracy
from .calibration import (
    fit_hockney,
    calibrate_cluster,
    measure_allreduce_curve,
    profile_model,
    estimate_gamma,
    CalibrationResult,
)
from .limits import Finding, detect_findings, TABLE6_ROWS
from .contention import data_filter_phi, data_spatial_phi, ContentionGraph

__all__ = [
    "TensorSpec",
    "halo_elements",
    "prod",
    "divisors",
    "power_of_two_budgets",
    "smallest_prime_factor",
    "Layer",
    "Conv",
    "Pool",
    "FullyConnected",
    "BatchNorm",
    "ReLU",
    "Add",
    "GlobalAvgPool",
    "Flatten",
    "ModelGraph",
    "GraphStats",
    "Strategy",
    "Serial",
    "DataParallel",
    "ShardedDataParallel",
    "SpatialParallel",
    "PipelineParallel",
    "FilterParallel",
    "ChannelParallel",
    "DataFilterParallel",
    "DataSpatialParallel",
    "StrategyError",
    "strategy_from_id",
    "ALL_STRATEGY_IDS",
    "LayerTimes",
    "ComputeProfile",
    "AnalyticalModel",
    "PhaseBreakdown",
    "Projection",
    "ParaDL",
    "Suggestion",
    "accuracy",
    "fit_hockney",
    "calibrate_cluster",
    "measure_allreduce_curve",
    "profile_model",
    "estimate_gamma",
    "CalibrationResult",
    "Finding",
    "detect_findings",
    "TABLE6_ROWS",
    "data_filter_phi",
    "data_spatial_phi",
    "ContentionGraph",
]
