"""Limitation / bottleneck detection (Table 6 of the paper).

Given a projection (and optionally a measured run), classify what holds the
configuration back, using the paper's taxonomy:

* **L** (limitation): inherent to the parallel strategy itself,
* **B** (bottleneck): caused by the framework (FR) or system (SY).

Categories: Communication (gradient exchange, layer-wise collectives, P2P,
network congestion), Memory capacity (redundancy, allocator stalling),
Computation (weight update, workload balancing, computational redundancy),
and Scaling (PE-count ceiling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .analytical import Projection
from .graph import ModelGraph
from .strategies import Strategy

__all__ = ["Finding", "detect_findings", "TABLE6_ROWS"]

#: The paper's Table 6 rows: (category, kind, strategies, component, remark).
TABLE6_ROWS = (
    ("communication", "L", ("d", "s", "df", "ds"), "-", "Gradient-exchange"),
    ("communication", "L", ("f", "c", "df"), "-", "Layer-wise comm."),
    ("communication", "B", ("s", "p", "ds"), "FR", "P2P communication"),
    ("communication", "B", ("d", "s", "p", "f", "c", "df", "ds"), "SY",
     "Network Congestion"),
    ("memory", "B", ("d", "s", "p", "f", "c", "df", "ds"), "SY",
     "Memory Redundancy"),
    ("memory", "B", ("d", "s", "p", "f", "c", "df", "ds"), "FR",
     "Memory Stalling"),
    ("computation", "L", ("d", "s", "p", "f", "c", "df", "ds"), "-",
     "Weight Update"),
    ("computation", "L", ("p",), "-", "Workload Balancing"),
    ("computation", "B", ("f", "c", "df"), "FR", "Comp. Redundancy"),
    ("scaling", "L", ("d", "s", "p", "f", "c", "df", "ds"), "-",
     "Number of PEs"),
)


@dataclass(frozen=True)
class Finding:
    """One detected limitation or bottleneck."""

    category: str        # communication | memory | computation | scaling
    kind: str            # "L" or "B"
    name: str            # Table 6 remark
    message: str
    severity: float      # fraction of time/memory affected, in [0, 1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}/{self.category}] {self.name}: {self.message}"


def detect_findings(
    model: ModelGraph,
    projection: Projection,
    *,
    comm_threshold: float = 0.15,
    wu_threshold: float = 0.10,
    memory_threshold: float = 0.85,
    scaling_margin: float = 0.5,
    pipeline_imbalance_tol: float = 0.15,
    profile=None,
) -> List[Finding]:
    """Analyze one projection and return detected findings.

    ``comm_threshold`` etc. set how large a share of the epoch a phase must
    take before it is reported; the defaults flag anything that consumes
    >=15% of the iteration (communication), >=10% (weight update), or
    >=85% of GPU memory.
    """
    strategy = projection.strategy
    sid = strategy.id
    epoch = projection.per_epoch
    total = epoch.total
    findings: List[Finding] = []
    if total <= 0:
        return findings

    # --- communication -------------------------------------------------------
    ge_share = epoch.comm_ge / total
    if ge_share >= comm_threshold and sid in ("d", "s", "df", "ds"):
        findings.append(Finding(
            "communication", "L", "Gradient-exchange",
            f"GE Allreduce takes {ge_share:.0%} of the epoch "
            f"({epoch.comm_ge:.1f}s of {total:.1f}s)",
            severity=ge_share,
        ))
    fb_share = epoch.comm_fb / total
    if fb_share >= comm_threshold and sid in ("f", "c", "df"):
        findings.append(Finding(
            "communication", "L", "Layer-wise comm.",
            f"per-layer Allgather/Allreduce rounds take {fb_share:.0%}; "
            f"grows with depth G and batch (O(B * sum|y_l|))",
            severity=fb_share,
        ))
    p2p_share = (epoch.comm_halo + epoch.comm_p2p) / total
    if p2p_share >= comm_threshold and sid in ("s", "p", "ds"):
        pattern = "halo exchange" if sid in ("s", "ds") else "stage-to-stage"
        findings.append(Finding(
            "communication", "B", "P2P communication",
            f"{pattern} P2P takes {p2p_share:.0%}; the paper traces this to "
            f"MPI (no GPUDirect) transport",
            severity=p2p_share,
        ))

    # --- memory ------------------------------------------------------------
    pressure = projection.memory_bytes / projection.memory_capacity
    if sid in ("s", "f", "c", "ds") or (sid == "p"):
        redundant = _memory_redundancy(model, projection)
        if redundant > 0.25:
            findings.append(Finding(
                "memory", "B", "Memory Redundancy",
                f"{redundant:.0%} of per-PE memory is replicated state that "
                f"the decomposition does not divide "
                f"({'weights' if sid in ('s', 'ds') else 'activations'})",
                severity=redundant,
            ))
    if pressure >= memory_threshold:
        findings.append(Finding(
            "memory", "B", "Memory Stalling",
            f"memory pressure {pressure:.0%} of capacity; allocator-induced "
            f"kernel stalls are likely (Section 5.3.2 observed 1.5x)",
            severity=min(1.0, pressure),
        ))
    if pressure > 1.0:
        findings.append(Finding(
            "memory", "B", "Out of Memory",
            f"projected {projection.memory_bytes / 1e9:.1f} GB/PE exceeds "
            f"{projection.memory_capacity / 1e9:.1f} GB",
            severity=1.0,
        ))

    # --- computation ------------------------------------------------------------
    comp = epoch.computation
    if comp > 0:
        wu_share = epoch.comp_wu / comp
        if wu_share >= wu_threshold:
            findings.append(Finding(
                "computation", "L", "Weight Update",
                f"weight update is {wu_share:.0%} of compute; grows with "
                f"model size and optimizer state (Figure 7)",
                severity=wu_share,
            ))
    if sid == "p" and profile is not None:
        groups = model.partition_depth(strategy.p)
        loads = [profile.group_fw(g) + profile.group_bw(g) for g in groups]
        mean = sum(loads) / len(loads)
        if mean > 0:
            imbalance = max(loads) / mean - 1.0
            if imbalance > pipeline_imbalance_tol:
                findings.append(Finding(
                    "computation", "L", "Workload Balancing",
                    f"slowest stage is {imbalance:.0%} above the mean; the "
                    f"pipeline is gated by it",
                    severity=min(1.0, imbalance),
                ))
    if sid in ("f", "c", "df"):
        findings.append(Finding(
            "computation", "B", "Comp. Redundancy",
            "split/concat and replicated channel-wise layers add overhead "
            "the ideal 1/p scaling ignores (Figure 8)",
            severity=0.1,
        ))

    # --- scaling ------------------------------------------------------------
    limit = _scaling_limit(model, strategy, projection.batch)
    if limit is not None and strategy.p >= limit * scaling_margin:
        findings.append(Finding(
            "scaling", "L", "Number of PEs",
            f"p={strategy.p} is within {scaling_margin:.0%} of the hard "
            f"limit {limit} for strategy '{sid}'",
            severity=strategy.p / limit,
        ))
    return findings


def _memory_redundancy(model: ModelGraph, projection: Projection) -> float:
    """Fraction of per-PE memory that the decomposition replicates."""
    sid = projection.strategy.id
    delta, gamma = projection.delta, projection.gamma
    weights = gamma * delta * sum(
        2 * l.weight_elements + l.bias_elements for l in model
    )
    if projection.memory_bytes <= 0:
        return 0.0
    if sid in ("s", "ds"):
        # Weights fully replicated across the spatial group.
        return min(1.0, weights / projection.memory_bytes)
    if sid in ("f", "c"):
        # Activations fully replicated (gathered every layer).
        acts = projection.memory_bytes - weights / projection.strategy.p
        return max(0.0, min(1.0, acts / projection.memory_bytes))
    return 0.0


def _scaling_limit(model: ModelGraph, strategy: Strategy, batch: int
                   ) -> Optional[int]:
    sid = strategy.id
    if sid == "d":
        return batch
    if sid == "s":
        return model.min_spatial()
    if sid == "p":
        return len(model.layers)
    if sid == "f":
        return model.min_filters()
    if sid == "c":
        return model.min_channels()
    if sid == "df":
        return batch * model.min_filters()
    if sid == "ds":
        return batch * model.min_spatial()
    return None
