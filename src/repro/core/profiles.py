"""Per-layer compute-time profiles (the empirical half of the oracle).

ParaDL deliberately does *not* derive computation time analytically: "we
empirically profile the average computation time per sample of each layer
(or group of layers) on the target architecture" (Section 4.4).  This module
defines the container those profiles live in.  Profiles are produced either
by the roofline GPU model in :mod:`repro.simulator.compute` (our simulated
stand-in for profiling a V100) or supplied by the user from real
measurements — the oracle consumes them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from .graph import ModelGraph
from .layers import Layer

__all__ = ["LayerTimes", "ComputeProfile"]


@dataclass(frozen=True)
class LayerTimes:
    """Measured times for one layer.

    ``forward`` and ``backward`` are seconds *per sample* (``FW_l`` and
    ``BW_l`` in the paper's notation); ``weight_update`` is seconds *per
    iteration* (``WU_l`` — independent of batch size, proportional to
    parameter count).
    """

    forward: float
    backward: float
    weight_update: float = 0.0

    def __post_init__(self) -> None:
        if min(self.forward, self.backward, self.weight_update) < 0:
            raise ValueError("layer times must be >= 0")


class ComputeProfile:
    """A per-layer time table for one model on one device.

    Access by layer name; aggregate helpers mirror the sums that appear in
    Table 3 (``sum_l FW_l``, ``max_i FW_Gi`` for pipeline groups, ...).
    """

    def __init__(self, model_name: str, times: Mapping[str, LayerTimes]) -> None:
        if not times:
            raise ValueError("profile must contain at least one layer")
        self.model_name = model_name
        self._times: Dict[str, LayerTimes] = dict(times)

    # ---- access -----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._times

    def __len__(self) -> int:
        return len(self._times)

    def layer(self, name: str) -> LayerTimes:
        try:
            return self._times[name]
        except KeyError:
            raise KeyError(
                f"layer {name!r} missing from profile of {self.model_name}"
            ) from None

    def fw(self, name: str) -> float:
        return self.layer(name).forward

    def bw(self, name: str) -> float:
        return self.layer(name).backward

    def wu(self, name: str) -> float:
        return self.layer(name).weight_update

    # ---- aggregates ---------------------------------------------------------
    def total_fw(self) -> float:
        """``sum_l FW_l`` (seconds per sample)."""
        return sum(t.forward for t in self._times.values())

    def total_bw(self) -> float:
        return sum(t.backward for t in self._times.values())

    def total_wu(self) -> float:
        """``sum_l WU_l`` (seconds per iteration)."""
        return sum(t.weight_update for t in self._times.values())

    def group_fw(self, layers: Iterable[Layer]) -> float:
        """``FW_Gi = sum_{l in g_i} FW_l`` for a pipeline composite layer."""
        return sum(self.fw(l.name) for l in layers)

    def group_bw(self, layers: Iterable[Layer]) -> float:
        return sum(self.bw(l.name) for l in layers)

    def group_wu(self, layers: Iterable[Layer]) -> float:
        return sum(self.wu(l.name) for l in layers)

    def validate_against(self, model: ModelGraph) -> None:
        """Ensure the profile covers every layer of ``model``."""
        missing = [l.name for l in model if l.name not in self._times]
        if missing:
            raise ValueError(
                f"profile for {self.model_name} is missing layers: "
                f"{missing[:5]}{'...' if len(missing) > 5 else ''}"
            )

    def scaled(self, factor: float) -> "ComputeProfile":
        """A uniformly scaled copy (e.g. the paper's x8 extrapolation of
        CosmoFlow 256^3 profiles to 512^3 samples)."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        return ComputeProfile(
            self.model_name,
            {
                name: LayerTimes(
                    forward=t.forward * factor,
                    backward=t.backward * factor,
                    weight_update=t.weight_update * factor,
                )
                for name, t in self._times.items()
            },
        )

    def items(self):
        return self._times.items()
