"""Parallel-strategy configurations (Section 3 of the paper).

Each strategy is a small immutable config object describing how the training
tensors are decomposed over ``p`` processing elements (PEs).  Feasibility —
the "Number of PEs" column of Table 3 — is checked against a concrete
:class:`~repro.core.graph.ModelGraph` by :meth:`Strategy.check`.

The short ids match the paper: ``d`` data, ``s`` spatial, ``p`` pipeline
(layer), ``f`` filter, ``c`` channel, ``df`` data+filter, ``ds`` data+spatial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .graph import ModelGraph
from .math_utils import smallest_prime_factor
from .tensors import prod

__all__ = [
    "Strategy",
    "Serial",
    "DataParallel",
    "ShardedDataParallel",
    "SpatialParallel",
    "PipelineParallel",
    "FilterParallel",
    "ChannelParallel",
    "DataFilterParallel",
    "DataSpatialParallel",
    "StrategyError",
    "strategy_from_id",
    "ALL_STRATEGY_IDS",
]

ALL_STRATEGY_IDS = ("serial", "d", "z", "s", "p", "f", "c", "df", "ds")


class StrategyError(ValueError):
    """A strategy configuration is infeasible for a model/batch."""


@dataclass(frozen=True)
class Strategy:
    """Base class: a named decomposition over ``p`` PEs."""

    @property
    def id(self) -> str:
        raise NotImplementedError

    @property
    def p(self) -> int:
        """Total number of PEs."""
        raise NotImplementedError

    @property
    def is_weak_scaling(self) -> bool:
        """Whether the de-facto scaling mode grows B with p (Section 4.2).

        Data-parallel-bearing strategies weak-scale; pure model-parallel
        strategies (filter/channel) strong-scale a fixed global batch, as in
        the paper's Figure 3 caption.
        """
        return False

    def check(self, model: ModelGraph, batch: int) -> None:
        """Raise :class:`StrategyError` if infeasible (Table 3 last column)."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.id}(p={self.p})"


@dataclass(frozen=True)
class Serial(Strategy):
    """Single-PE baseline (Table 3 'Serial' row)."""

    @property
    def id(self) -> str:
        return "serial"

    @property
    def p(self) -> int:
        return 1

    def check(self, model: ModelGraph, batch: int) -> None:
        if batch < 1:
            raise StrategyError("batch must be >= 1")


@dataclass(frozen=True)
class DataParallel(Strategy):
    """Replicate the model; scatter the batch over ``p`` PEs."""

    replicas: int

    @property
    def id(self) -> str:
        return "d"

    @property
    def p(self) -> int:
        return self.replicas

    @property
    def is_weak_scaling(self) -> bool:
        return True

    def check(self, model: ModelGraph, batch: int) -> None:
        if self.replicas < 1:
            raise StrategyError("need at least one replica")
        if self.replicas > batch:
            raise StrategyError(
                f"data parallelism needs p <= B ({self.replicas} > {batch})"
            )


@dataclass(frozen=True)
class ShardedDataParallel(Strategy):
    """Data parallelism with ZeRO-style weight/optimizer sharding.

    Section 5.3.2 cites this as the fix for weight-replication memory
    redundancy: "split the weights as well as the activations.  However,
    this comes at the cost of extra communication of 50% since two
    Allgathers of the weights are needed in the forward and backward
    passes."  Each PE owns 1/p of the parameters and optimizer state;
    gradients are Reduce-Scattered instead of Allreduced.
    """

    replicas: int

    @property
    def id(self) -> str:
        return "z"

    @property
    def p(self) -> int:
        return self.replicas

    @property
    def is_weak_scaling(self) -> bool:
        return True

    def check(self, model: ModelGraph, batch: int) -> None:
        if self.replicas < 1:
            raise StrategyError("need at least one replica")
        if self.replicas > batch:
            raise StrategyError(
                f"sharded data parallelism needs p <= B "
                f"({self.replicas} > {batch})"
            )


@dataclass(frozen=True)
class SpatialParallel(Strategy):
    """Split the spatial extent over a ``grid`` of PEs (height-width-depth).

    ``grid`` has one entry per spatial dimension of the model input;
    ``p = prod(grid)`` and every entry must not exceed the smallest extent
    of that dimension across spatially-parallelized layers.
    """

    grid: Tuple[int, ...]

    @property
    def id(self) -> str:
        return "s"

    @property
    def p(self) -> int:
        return prod(self.grid)

    def check(self, model: ModelGraph, batch: int) -> None:
        if any(g < 1 for g in self.grid):
            raise StrategyError("grid entries must be >= 1")
        ndim = model.input_spec.ndim
        if len(self.grid) != ndim:
            raise StrategyError(
                f"grid rank {len(self.grid)} != model input rank {ndim}"
            )
        if self.p > model.min_spatial():
            raise StrategyError(
                f"spatial parallelism limited to p <= min(W*H) = "
                f"{model.min_spatial()}, got {self.p}"
            )
        for dim, g in enumerate(self.grid):
            limit = min(
                l.input.spatial[dim]
                for l in model.layers
                if l.spatially_parallelizable
            )
            if g > limit:
                raise StrategyError(
                    f"grid[{dim}]={g} exceeds the smallest extent {limit}"
                )


@dataclass(frozen=True)
class PipelineParallel(Strategy):
    """Vertical (layer) parallelism with a GPipe pipeline of ``segments``.

    ``stages`` PEs each hold a contiguous composite layer; each mini-batch
    is cut into ``segments`` micro-batches (the ``S`` of Table 3).

    ``checkpoint`` enables gradient checkpointing at the partition
    boundaries (Section 5.3.2: "unless we apply gradient checkpointing at
    the boundary of the partition, which comes with the overhead of
    recomputing the activations within each partition") — activation
    memory shrinks to one micro-batch plus the stored boundaries, at the
    cost of one extra forward pass.
    """

    stages: int
    segments: int = 4
    checkpoint: bool = False

    @property
    def id(self) -> str:
        return "p"

    @property
    def p(self) -> int:
        return self.stages

    def check(self, model: ModelGraph, batch: int) -> None:
        if self.stages < 1:
            raise StrategyError("need at least one stage")
        if self.stages > len(model.layers):
            raise StrategyError(
                f"pipeline needs p <= G = {len(model.layers)} layers"
            )
        if not 1 <= self.segments <= batch:
            raise StrategyError(
                f"segments must be in [1, B={batch}], got {self.segments}"
            )


@dataclass(frozen=True)
class FilterParallel(Strategy):
    """Horizontal model parallelism over output channels (filters)."""

    parts: int

    @property
    def id(self) -> str:
        return "f"

    @property
    def p(self) -> int:
        return self.parts

    def check(self, model: ModelGraph, batch: int) -> None:
        if self.parts < 1:
            raise StrategyError("need at least one part")
        limit = model.min_filters()
        if self.parts > limit:
            raise StrategyError(
                f"filter parallelism limited to p <= min F_l = {limit}, "
                f"got {self.parts}"
            )


@dataclass(frozen=True)
class ChannelParallel(Strategy):
    """Horizontal model parallelism over input channels."""

    parts: int

    @property
    def id(self) -> str:
        return "c"

    @property
    def p(self) -> int:
        return self.parts

    def check(self, model: ModelGraph, batch: int) -> None:
        if self.parts < 1:
            raise StrategyError("need at least one part")
        limit = model.min_channels(skip_first=True)
        if self.parts > limit:
            raise StrategyError(
                f"channel parallelism limited to p <= min C_l = {limit}, "
                f"got {self.parts}"
            )


@dataclass(frozen=True)
class DataFilterParallel(Strategy):
    """Hybrid: ``groups`` data-parallel groups of ``parts`` filter-parallel
    PEs each (``p = p1 * p2`` with ``p1 = groups``, ``p2 = parts``)."""

    groups: int
    parts: int

    @property
    def id(self) -> str:
        return "df"

    @property
    def p(self) -> int:
        return self.groups * self.parts

    @property
    def p1(self) -> int:
        return self.groups

    @property
    def p2(self) -> int:
        return self.parts

    @property
    def is_weak_scaling(self) -> bool:
        return True

    def describe(self) -> str:
        return f"df(p1={self.groups},p2={self.parts})"

    def check(self, model: ModelGraph, batch: int) -> None:
        if self.groups < 1 or self.parts < 1:
            raise StrategyError("groups and parts must be >= 1")
        if self.groups > batch:
            raise StrategyError(
                f"data dimension needs p1 <= B ({self.groups} > {batch})"
            )
        limit = model.min_filters()
        if self.parts > limit:
            raise StrategyError(
                f"filter dimension limited to p2 <= min F_l = {limit}, "
                f"got {self.parts}"
            )


@dataclass(frozen=True)
class DataSpatialParallel(Strategy):
    """Hybrid: ``groups`` data-parallel groups each spatially decomposed
    over ``grid``.

    ``leaders`` selects the hierarchical gradient-exchange flavor
    (Section 5.3.1): 1 reproduces the paper's single-leader reduce +
    inter-leader Allreduce (whose overhead they measured at >2x data
    parallelism's); >1 models the multi-leader fix they cite, where each
    leader carries 1/leaders of the weights concurrently.
    """

    groups: int
    grid: Tuple[int, ...]
    leaders: int = 1

    @property
    def id(self) -> str:
        return "ds"

    @property
    def p(self) -> int:
        return self.groups * prod(self.grid)

    @property
    def p1(self) -> int:
        return self.groups

    @property
    def p2(self) -> int:
        return prod(self.grid)

    @property
    def is_weak_scaling(self) -> bool:
        return True

    def describe(self) -> str:
        grid = "x".join(str(g) for g in self.grid)
        extra = f",L={self.leaders}" if self.leaders > 1 else ""
        return f"ds(p1={self.groups},grid={grid}{extra})"

    def check(self, model: ModelGraph, batch: int) -> None:
        if self.groups < 1:
            raise StrategyError("groups must be >= 1")
        if self.groups > batch:
            raise StrategyError(
                f"data dimension needs p1 <= B ({self.groups} > {batch})"
            )
        if not 1 <= self.leaders <= self.p2:
            raise StrategyError(
                f"leaders must be in [1, p2={self.p2}], got {self.leaders}"
            )
        SpatialParallel(self.grid).check(model, batch)


def strategy_from_id(sid: str, p: int, model: ModelGraph, batch: int,
                     segments: int = 4, intra: int = 4) -> Strategy:
    """Construct a reasonable default strategy config for short id ``sid``.

    ``intra`` is the group size used by hybrids (PEs per node in the paper's
    experiments, i.e. 4 GPUs/node: model parallelism intra-node, data
    parallelism inter-node).
    """
    if sid == "serial":
        return Serial()
    if sid == "d":
        return DataParallel(p)
    if sid == "z":
        return ShardedDataParallel(p)
    if sid == "s":
        return SpatialParallel(_square_grid(p, model.input_spec.ndim))
    if sid == "p":
        return PipelineParallel(p, segments=segments)
    if sid == "f":
        return FilterParallel(p)
    if sid == "c":
        return ChannelParallel(p)
    if sid == "df":
        if p % intra:
            raise StrategyError(f"p={p} not divisible by group size {intra}")
        return DataFilterParallel(groups=p // intra, parts=intra)
    if sid == "ds":
        if p % intra:
            raise StrategyError(f"p={p} not divisible by group size {intra}")
        grid = _square_grid(intra, model.input_spec.ndim)
        return DataSpatialParallel(groups=p // intra, grid=grid)
    raise StrategyError(f"unknown strategy id {sid!r}")


def _square_grid(p: int, ndim: int) -> Tuple[int, ...]:
    """Factor ``p`` into an ``ndim``-grid, preferring near-square shapes."""
    if ndim == 0:
        raise StrategyError("model input has no spatial dimensions")
    if ndim == 1:
        return (p,)
    grid = [1] * ndim
    remaining = p
    # Greedy: repeatedly multiply the smallest grid entry by the smallest
    # prime factor of what remains.
    while remaining > 1:
        factor = smallest_prime_factor(remaining)
        idx = grid.index(min(grid))
        grid[idx] *= factor
        remaining //= factor
    return tuple(sorted(grid, reverse=True))
