"""ParaDL — the oracle facade (Figure 2 of the paper).

Ties together the pieces: given what can be known beforehand (dataset,
model, cluster specification, user constraints such as a PE budget), ParaDL
projects computation and communication time per training phase, checks
memory feasibility, ranks strategies, and compares projections against
measured runs to compute the paper's accuracy metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.datasets import DatasetSpec
from ..network.topology import ClusterSpec
from .analytical import AnalyticalModel, Projection
from .graph import ModelGraph
from .math_utils import divisors
from .profiles import ComputeProfile
from .strategies import (
    ALL_STRATEGY_IDS,
    Strategy,
    StrategyError,
    strategy_from_id,
)

__all__ = ["ParaDL", "Suggestion", "accuracy"]


def accuracy(projected: float, measured: float) -> float:
    """The paper's accuracy metric: ``1 - |proj - meas| / meas``."""
    if measured <= 0:
        raise ValueError("measured time must be > 0")
    return 1.0 - abs(projected - measured) / measured




@dataclass(frozen=True)
class Suggestion:
    """One ranked entry from :meth:`ParaDL.suggest`."""

    strategy: Strategy
    projection: Projection
    rank: int
    feasible: bool
    reason: str = ""

    @property
    def epoch_time(self) -> float:
        return self.projection.per_epoch.total


class ParaDL:
    """The oracle: projection, ranking, and accuracy evaluation.

    Parameters
    ----------
    model:
        The CNN under study.
    cluster:
        Target machine.
    profile:
        Empirical per-layer compute profile.  Use
        :func:`repro.core.calibration.profile_model` to generate one from
        the simulated V100, or supply real measurements.
    comm:
        Communication model: a policy name (``"paper"`` — the default,
        reproducing the seed's ring-everywhere costs — ``"auto"`` or
        ``"nccl-like"``) or a ready
        :class:`~repro.collectives.selector.CommModel`.
    delta / gamma / halo_transport / contention:
        Forwarded to :class:`~repro.core.analytical.AnalyticalModel`.
    scenario:
        The :class:`~repro.api.spec.ScenarioSpec` this oracle realizes.
        Normally supplied by :class:`~repro.api.session.Session`; direct
        construction is the legacy path — it keeps working, and for zoo
        models at default analytical knobs the shim records a
        *provenance* spec on :attr:`scenario` (profile-level knobs are
        not recoverable, so the echo identifies the configuration
        rather than guaranteeing reproduction; ``None`` when no honest
        echo exists).  Prefer :meth:`from_scenario` / ``Session`` for
        new code: specs serialize, sessions cache.
    """

    def __init__(
        self,
        model: ModelGraph,
        cluster: ClusterSpec,
        profile: ComputeProfile,
        *,
        delta: int = 4,
        gamma: float = 0.5,
        halo_transport: str = "mpi",
        contention: bool = True,
        comm=None,
        scenario=None,
    ) -> None:
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.analytical = AnalyticalModel(
            model,
            cluster,
            profile,
            delta=delta,
            gamma=gamma,
            halo_transport=halo_transport,
            contention=contention,
            comm=comm,
        )
        #: The bound communication model (shared with ``analytical``).
        self.comm = self.analytical.comm
        #: The scenario this oracle realizes (derived best-effort for
        #: legacy direct construction; ``None`` for custom models the
        #: spec layer cannot name).
        self.scenario = (
            scenario if scenario is not None
            else self._derive_scenario(
                gamma,
                defaults=(delta == 4 and halo_transport == "mpi"
                          and contention),
            )
        )

    @classmethod
    def from_scenario(cls, scenario) -> "ParaDL":
        """Build the oracle a scenario describes (dict, path, or spec).

        This is :class:`~repro.api.session.Session` construction without
        keeping the session — use a ``Session`` when you will ask more
        than one question, so profiles and caches are reused.
        """
        from ..api.session import Session

        return Session(scenario).oracle

    def _derive_scenario(self, gamma: float, *, defaults: bool):
        """Provenance echo for legacy ``ParaDL(model, ...)`` calls.

        Only derived when the model is a zoo model and the analytical
        knobs (delta, halo transport, contention) are at their
        defaults; ``None`` otherwise.  The model, cluster size, comm
        policy/forcing, and gamma are faithful; profile-level knobs
        (``samples_per_pe``, ``optimizer``) are not recoverable from a
        :class:`ComputeProfile` and stay at spec defaults — treat the
        echo as identification, not a guaranteed-reproducible request
        (construct via :meth:`from_scenario` / ``Session`` for that).
        """
        from ..models import MODEL_BUILDERS

        if not defaults or self.model.name not in MODEL_BUILDERS:
            return None
        from ..api.spec import (
            ClusterRef,
            CommSpec,
            ModelSpec,
            ScenarioSpec,
            TrainingSpec,
        )

        return ScenarioSpec(
            model=ModelSpec(name=self.model.name),
            cluster=ClusterRef(
                pes=self.cluster.total_gpus,
                gpus_per_node=self.cluster.node.gpus,
            ),
            training=TrainingSpec(gamma=gamma),
            comm=CommSpec(
                policy=self.comm.policy,
                algo=tuple(sorted(self.comm.algo.items())),
            ),
        )

    # ---------------------------------------------------------------- project
    def project(
        self,
        strategy: Strategy,
        batch: int,
        dataset: DatasetSpec,
        *,
        comm=None,
    ) -> Projection:
        """Project one strategy at global mini-batch ``batch``.

        ``comm`` overrides the oracle's communication policy for this
        projection only.
        """
        return self.analytical.project(
            strategy, batch, dataset.num_samples, comm=comm
        )

    def project_batch(
        self,
        strategies: Sequence[Strategy],
        batches: Sequence[int],
        dataset: DatasetSpec,
        *,
        comms=None,
    ):
        """Project many ``(strategy, batch)`` candidates at once.

        The structure-of-arrays fast path: candidates are grouped by
        strategy family and evaluated as numpy array expressions (see
        :meth:`AnalyticalModel.project_batch`).  Returns one entry per
        input — a :class:`Projection`, or the ``StrategyError`` /
        ``ValueError`` that candidate would have raised under
        :meth:`project`.  Results are identical to the scalar path;
        without numpy this *is* the scalar path, looped.
        """
        return self.analytical.project_batch(
            strategies, batches, dataset.num_samples, comms=comms
        )

    def project_id(
        self,
        sid: str,
        p: int,
        batch: int,
        dataset: DatasetSpec,
        segments: int = 4,
        intra: Optional[int] = None,
    ) -> Projection:
        """Project by short strategy id with default configuration rules
        (hybrids map the model-parallel dimension intra-node)."""
        intra = intra if intra is not None else self.cluster.node.gpus
        strategy = strategy_from_id(
            sid, p, self.model, batch, segments=segments, intra=intra
        )
        return self.project(strategy, batch, dataset)

    # ---------------------------------------------------------------- suggest
    def suggest(
        self,
        p: int,
        dataset: DatasetSpec,
        samples_per_pe: int = 32,
        fixed_batch: Optional[int] = None,
        candidates: Sequence[str] = ("d", "z", "s", "p", "f", "c", "df", "ds"),
        segments: int = 4,
    ) -> List[Suggestion]:
        """Rank strategies for a PE budget of ``p``.

        Weak-scaling strategies use ``batch = samples_per_pe * p`` (the
        paper's de-facto scaling mode); strong-scaling ones (filter,
        channel, pipeline) use ``fixed_batch`` (default
        ``samples_per_pe * node GPUs``).  Infeasible candidates — scaling
        limit exceeded or out of memory — are returned unranked with the
        reason, because *why* data parallelism fails is half the oracle's
        point.
        """
        fixed_batch = fixed_batch or samples_per_pe * self.cluster.node.gpus
        results: List[Tuple[Strategy, Optional[Projection], str]] = []
        for sid in candidates:
            try:
                strategy = strategy_from_id(
                    sid, p, self.model, max(p, fixed_batch),
                    segments=segments, intra=self.cluster.node.gpus,
                )
            except StrategyError as exc:
                results.append((None, None, f"{sid}: {exc}"))
                continue
            batch = (
                samples_per_pe * p if strategy.is_weak_scaling else fixed_batch
            )
            try:
                strategy.check(self.model, batch)
                proj = self.project(strategy, batch, dataset)
            except StrategyError as exc:
                results.append((strategy, None, str(exc)))
                continue
            reason = "" if proj.feasible_memory else (
                f"memory {proj.memory_bytes / 1e9:.1f} GB exceeds "
                f"{proj.memory_capacity / 1e9:.1f} GB/PE"
            )
            results.append((strategy, proj, reason))

        feasible = [
            (s, pr) for s, pr, r in results if pr is not None and not r
        ]
        feasible.sort(key=lambda sp: sp[1].per_epoch.total)
        suggestions: List[Suggestion] = []
        for rank, (s, pr) in enumerate(feasible, start=1):
            suggestions.append(Suggestion(s, pr, rank, True))
        for s, pr, r in results:
            if pr is None or r:
                suggestions.append(
                    Suggestion(s, pr, rank=0, feasible=False, reason=r)
                    if s is not None
                    else Suggestion(
                        strategy=None, projection=None, rank=0,
                        feasible=False, reason=r,
                    )
                )
        return suggestions

    # ------------------------------------------------------- layer-wise plan
    def plan_layerwise(self, p: int, batch: int):
        """Optimal per-layer strategy assignment (Section 3.5 generalized).

        Returns a :class:`~repro.core.layerwise.LayerwisePlan` minimizing
        projected iteration time by choosing, per layer, among data /
        spatial / filter / channel / replicated execution with
        re-decomposition costs — Krizhevsky's "one weird trick" falls out
        of this DP for FC-heavy models.
        """
        from .layerwise import LayerwisePlanner

        planner = LayerwisePlanner(
            self.model, self.cluster, self.profile, p,
            delta=self.analytical.delta,
        )
        return planner.plan(batch)

    # ----------------------------------------------------------- hybrid search
    def search_hybrid(
        self,
        p: int,
        dataset: DatasetSpec,
        samples_per_pe: int = 32,
        kinds: Sequence[str] = ("df", "ds"),
        max_model_dim: Optional[int] = None,
    ) -> List[Suggestion]:
        """Exhaustively search hybrid factorizations ``p = p1 * p2``.

        The paper's hybrids fix the model-parallel dimension at the node
        size; this search relaxes that and enumerates every divisor
        ``p2 <= max_model_dim`` (default: one rack's worth of GPUs),
        ranking feasible configurations by projected epoch time.  This is
        the "suggesting the best strategy for a given resource budget"
        use-case with the configuration space opened up.
        """
        from .strategies import DataFilterParallel, DataSpatialParallel
        from .strategies import _square_grid

        max_model_dim = max_model_dim or (
            self.cluster.node.gpus * self.cluster.fabric.nodes_per_rack
        )
        candidates: List[Strategy] = []
        for p2 in divisors(p):
            if p2 < 2 or p2 > max_model_dim:
                continue
            p1 = p // p2
            if "df" in kinds:
                candidates.append(DataFilterParallel(groups=p1, parts=p2))
            if "ds" in kinds:
                try:
                    grid = _square_grid(p2, self.model.input_spec.ndim)
                except StrategyError:
                    grid = None
                if grid is not None:
                    candidates.append(
                        DataSpatialParallel(groups=p1, grid=grid)
                    )
        results: List[Suggestion] = []
        ok: List[Tuple[Strategy, Projection]] = []
        for strategy in candidates:
            batch = samples_per_pe * strategy.p1
            try:
                strategy.check(self.model, batch)
                proj = self.project(strategy, batch, dataset)
            except (StrategyError, ValueError) as exc:
                results.append(Suggestion(strategy, None, 0, False, str(exc)))
                continue
            if not proj.feasible_memory:
                results.append(Suggestion(
                    strategy, proj, 0, False,
                    f"memory {proj.memory_bytes / 1e9:.1f} GB"))
                continue
            ok.append((strategy, proj))
        ok.sort(key=lambda sp: sp[1].per_epoch.total)
        ranked = [
            Suggestion(s, pr, rank, True) for rank, (s, pr) in
            enumerate(ok, start=1)
        ]
        return ranked + results

    # ----------------------------------------------------------------- search
    def search(
        self,
        p: int,
        dataset: DatasetSpec,
        *,
        samples_per_pe: int = 32,
        strategies: Optional[Sequence[str]] = None,
        pe_budgets: Optional[Sequence[int]] = None,
        segments: Sequence[int] = (2, 4, 8),
        fixed_batches: Optional[Sequence[int]] = None,
        exhaustive: bool = False,
        cache=None,
        cache_dir: Optional[str] = None,
        workers: Optional[int] = None,
        executor: str = "thread",
        remote_workers: Optional[Sequence[str]] = None,
        weights=None,
        comm=None,
        on_result=None,
        tracer=None,
        metrics=None,
        vectorize: Optional[bool] = None,
    ):
        """Automated strategy search (the :mod:`repro.search` facade).

        ``exhaustive`` widens the space from the PE-budget ladder to
        *every* PE count up to the largest budget, and sweeps hybrid
        factorizations over the full divisor lattice (p2 from 1 to p) —
        the exhaustive-search mode the vectorized projection path makes
        affordable.  ``vectorize`` is the engine's array-path routing
        policy (``None`` auto / ``False`` scalar / ``True`` force).

        ``fixed_batches`` pins the strong scalers' global batches
        (default: one node's worth of samples per
        :class:`~repro.search.space.SearchSpace` convention).

        Expands a declarative space over the candidate strategies, every
        hybrid ``p = p1 * p2`` factorization, the PE budgets (default:
        just ``p``), and pipeline micro-batch counts; prunes infeasible
        configurations before projecting; and returns a
        :class:`~repro.search.engine.SearchReport` whose ``frontier`` is
        the Pareto-optimal set over (epoch time, iteration time, per-PE
        memory, PE count) and whose ``best`` is the scalarized pick
        (default: pure throughput, so it matches or beats the best
        :meth:`suggest` entry at the same budget).

        ``comm`` opens the communication policy as a search dimension: a
        policy name or a sequence of names ("paper", "auto",
        "nccl-like") makes every candidate carry its policy, so the
        frontier can mix e.g. a ring-cost pipeline against an
        auto-selected hybrid.  ``None`` keeps the oracle's bound policy.

        ``on_result`` is an optional callback invoked with each
        :class:`~repro.search.engine.Evaluation` as it completes
        (anytime search: the CLI's ``--stream``).

        ``cache`` may be a path: repeated planning sessions then reuse
        persisted projections (see :mod:`repro.search.cache`).
        ``cache_dir`` instead names a shared directory of per-(model,
        cluster) fingerprinted cache files — the cross-model layout
        :meth:`sweep` uses.

        ``executor`` picks the evaluation backend: ``"thread"``
        (default), ``"process"`` — which side-steps the GIL by
        projecting in worker processes — or ``"remote"``, which fans
        candidate chunks out to the ``repro worker`` fleet named by
        ``remote_workers`` (``host:port`` addresses; see
        :mod:`repro.dist` and
        :class:`~repro.search.engine.SearchEngine`).

        ``tracer`` / ``metrics`` (a :class:`~repro.obs.tracer.Tracer` /
        :class:`~repro.obs.metrics.MetricsRegistry`) opt the run into
        the observability layer; both default off (no-op).
        """
        from ..search import DEFAULT_STRATEGIES, SearchEngine, SearchSpace

        from ..collectives.selector import CommModel

        if comm is None:
            comm_policies = ()
        elif isinstance(comm, str):
            comm_policies = (comm,)
        elif isinstance(comm, CommModel):
            raise TypeError(
                "search's comm dimension takes policy names (candidates "
                "must be cacheable by key); to search under a custom "
                "CommModel, construct ParaDL(..., comm=<model>) and leave "
                "comm=None here"
            )
        else:
            comm_policies = tuple(comm)
        space = SearchSpace(
            strategies=tuple(strategies) if strategies is not None
            else DEFAULT_STRATEGIES,
            pe_budgets=tuple(pe_budgets) if pe_budgets else (p,),
            samples_per_pe=(samples_per_pe,),
            fixed_batches=(
                tuple(fixed_batches) if fixed_batches else ()),
            segments=tuple(segments),
            comm_policies=comm_policies,
            exhaustive=exhaustive,
        )
        engine = SearchEngine(
            self, dataset, cache=cache, cache_dir=cache_dir,
            workers=workers, executor=executor,
            remote_workers=remote_workers,
            tracer=tracer, metrics=metrics, vectorize=vectorize,
        )
        return engine.search(space, weights=weights, on_result=on_result)

    # ----------------------------------------------------------------- sweep
    @staticmethod
    def sweep(
        models: Sequence[str],
        dataset: DatasetSpec,
        *,
        pes: int = 64,
        cluster=None,
        samples_per_pe: int = 32,
        strategies: Optional[Sequence[str]] = None,
        pe_budgets: Optional[Sequence[int]] = None,
        segments: Sequence[int] = (2, 4, 8),
        comm=None,
        executor: str = "process",
        workers: Optional[int] = None,
        remote_workers: Optional[Sequence[str]] = None,
        cache_dir: Optional[str] = None,
        weights=None,
        on_result=None,
        report_dir: Optional[str] = None,
        plot: bool = False,
        **runner_kwargs,
    ):
        """Multi-model sweep: one :meth:`search` per zoo model, fanned out
        over a process pool, consolidated into per-model frontier CSVs and
        a cross-model summary.

        A sweep is not bound to one oracle, so this is a static facade
        over :class:`~repro.search.sweep.SweepRunner`: ``models`` are zoo
        names (:data:`repro.models.MODEL_BUILDERS`), ``cache_dir`` holds
        one fingerprinted projection-cache file per (model, cluster) so a
        warm re-run projects nothing, and ``report_dir`` (optional)
        receives the consolidated frontier report (``plot=True`` adds a
        matplotlib frontier plot when matplotlib is importable).  ``comm``
        takes the same policy name / sequence the instance method takes.
        Returns a :class:`~repro.search.sweep.SweepReport`.
        """
        from ..search.sweep import SweepRunner

        if comm is None:
            comm_policies: Sequence[str] = ()
        elif isinstance(comm, str):
            comm_policies = (comm,)
        else:
            comm_policies = tuple(comm)
        runner = SweepRunner(
            models, dataset,
            pes=pes,
            cluster=cluster,
            samples_per_pe=samples_per_pe,
            strategies=strategies,
            pe_budgets=pe_budgets,
            segments=segments,
            comm_policies=comm_policies,
            executor=executor,
            workers=workers,
            remote_workers=remote_workers,
            cache_dir=cache_dir,
            weights=weights,
            **runner_kwargs,
        )
        report = runner.run(on_result=on_result)
        if report_dir is not None:
            report.write_report(report_dir, plot=plot)
        return report

    # ---------------------------------------------------------------- accuracy
    def accuracy_against(
        self, projection: Projection, measured_epoch_time: float
    ) -> float:
        return accuracy(projection.per_epoch.total, measured_epoch_time)

    def breakdown_row(self, projection: Projection) -> Dict[str, float]:
        """Flat per-iteration dict, handy for table printing."""
        it = projection.per_iteration
        row = it.asdict()
        row.update(
            computation=it.computation,
            communication=it.communication,
            total=it.total,
            memory_GB=projection.memory_bytes / 1e9,
            p=projection.p,
        )
        return row
