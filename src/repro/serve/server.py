"""Oracle-as-a-service: the threaded HTTP planning server.

Stdlib-first: :class:`http.server.ThreadingHTTPServer` behind a small
router/handler layer.  Requests are :class:`~repro.api.spec.
ScenarioSpec` JSON documents validated by ``from_dict``; responses are
the exact PR 4 result envelopes the CLI prints under ``--json`` —
**byte-identical**, including indentation and the trailing newline, so
a consumer can switch between ``repro project --json`` and
``POST /v1/project`` without re-parsing anything.

Endpoints
---------
``POST /v1/project|suggest|hybrid|search``
    Body = a scenario document.  200 with the verb's result envelope;
    422 with the shared error envelope for structurally infeasible
    configurations; 400 with a structured validation error naming the
    dotted field path for bad documents.
``POST /v1/batch``
    One scenario, many questions: ``{"scenario": {...}, "questions":
    [{"verb": "project", "overrides": {...}}, ...]}``.  Questions are
    answered in order against one pooled session; per-question
    infeasibility is reported inline so one bad question cannot sink
    its siblings.
``POST /v1/jobs`` / ``GET /v1/jobs[/<id>]``
    Async handles for long verbs (search/sweep): submit returns 202
    with a ``job_id``; polling returns the state and, when done, the
    full result envelope.  Unknown ids are 404.
``GET /healthz`` / ``GET /metricsz``
    Liveness and the observability snapshot (metrics registry + pool +
    job counters).

Every request is traced (``serve.<route>`` spans), counted
(``serve.requests``, ``serve.status.<code>``), and timed into
per-route latency histograms (``serve.latency_s.<route>``) on the
server's :class:`~repro.obs.metrics.MetricsRegistry` — the same
instruments the load harness reads back from ``/metricsz``.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..api.results import error_envelope
from ..api.session import Session
from ..api.spec import SCHEMA_VERSION, ScenarioSpec, ScenarioValidationError
from ..core.strategies import StrategyError
from ..faults import Deadline, DeadlineExceeded, FaultError, deadline_scope
from ..faults import fire as _fire_fault
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER
from .jobs import JobManager, JobQueueFull
from .pool import SessionPool

logger = logging.getLogger(__name__)

__all__ = ["PlanningServer", "ServeError", "VERBS", "JOB_VERBS"]

#: Synchronous planning verbs exposed under ``/v1/<verb>``.
VERBS = ("project", "suggest", "hybrid", "search")

#: Verbs a job may run: the sync four plus the long-running sweep.
JOB_VERBS = VERBS + ("sweep",)

#: Optional sections each verb needs materialized in the scenario echo —
#: mirrors the CLI's ``_load_scenario(ensure=...)`` so server and CLI
#: envelopes agree field-for-field.
_ENSURE: Dict[str, Tuple[str, ...]] = {
    "project": ("strategy",),
    "suggest": (),
    "hybrid": (),
    "search": ("search",),
    "sweep": ("sweep", "search"),
}

#: Default request-body cap; oversized posts get a structured 413.
MAX_BODY_BYTES = 2 * 1024 * 1024

_JOB_PATH = re.compile(r"^/v1/jobs/(?P<job_id>[A-Za-z0-9_-]+)$")


class ServeError(Exception):
    """A structured HTTP error: status + JSON body.

    ``field`` carries the dotted scenario path for validation failures
    (the 400 contract); other statuses leave it empty.  ``headers``
    (set post-construction) adds response headers — the 503 queue-full
    path uses it for ``Retry-After``.
    """

    def __init__(self, status: int, error_type: str, message: str,
                 field: str = "", **extra) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.field = field
        self.extra = extra
        self.headers: Dict[str, str] = {}

    def payload(self) -> Dict[str, object]:
        error: Dict[str, object] = {
            "status": self.status,
            "type": self.error_type,
            "message": str(self),
        }
        if self.field:
            error["field"] = self.field
        error.update(self.extra)
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "error",
            "error": error,
        }


def _render(blob: Dict[str, object], *, indent: Optional[int] = 2) -> bytes:
    """Serialize a JSON body exactly as the CLI prints it.

    ``print(json.dumps(blob, indent=2))`` is the CLI's ``--json``
    emitter; matching its separators *and* trailing newline is what
    makes the golden wire-parity test byte-for-byte."""
    return (json.dumps(blob, indent=indent) + "\n").encode("utf-8")


def _ensure_sections(scenario: ScenarioSpec,
                     ensure: Sequence[str]) -> ScenarioSpec:
    """Materialize optional sections, CLI ``_load_scenario`` style."""
    missing = {
        section: {} for section in ensure
        if getattr(scenario, section) is None
    }
    return scenario.merged(missing) if missing else scenario


class _Response:
    """What a route handler returns: status + ready-to-send body."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(self, status: int, body: bytes,
                 content_type: str = "application/json",
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}


class _App:
    """The router/handler layer — plain Python, fully testable offline.

    ``handle(method, path, body)`` resolves a route and returns a
    :class:`_Response`; every error becomes a :class:`ServeError`
    rendered to its structured JSON body.  The HTTP transport below is
    a thin adapter over this object.
    """

    def __init__(self, *, pool: SessionPool, jobs: JobManager,
                 metrics: MetricsRegistry, tracer,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 request_deadline_s: Optional[float] = None) -> None:
        self.pool = pool
        self.jobs = jobs
        self.metrics = metrics
        self.tracer = tracer
        self.max_body_bytes = max_body_bytes
        self.request_deadline_s = request_deadline_s
        self.started_unix = time.time()
        # path -> {method -> (route_name, handler(body, match))}
        self._routes: Dict[str, Dict[str, Tuple[str, Callable]]] = {}
        for verb in VERBS:
            self._routes[f"/v1/{verb}"] = {
                "POST": (verb, self._make_verb_handler(verb))}
        self._routes["/v1/batch"] = {"POST": ("batch", self._handle_batch)}
        self._routes["/v1/jobs"] = {
            "POST": ("jobs.submit", self._handle_job_submit),
            "GET": ("jobs.list", self._handle_job_list),
        }
        self._routes["/healthz"] = {"GET": ("healthz", self._handle_health)}
        self._routes["/metricsz"] = {
            "GET": ("metricsz", self._handle_metrics)}

    # ------------------------------------------------------------ dispatch
    def handle(self, method: str, path: str, body: bytes,
               headers: Optional[Dict[str, str]] = None) -> _Response:
        t0 = time.perf_counter()
        route = "unrouted"
        try:
            # Fault site ``serve.handler``: ``delay`` stalls the request
            # (slow-handler latency campaigns); ``error`` fails it along
            # the 500 path below.
            action = _fire_fault("serve.handler")
            if action is not None and action.kind == "error":
                action.raise_()
            route, handler, match = self._resolve(method, path)
            deadline = self._request_deadline(headers)
            with deadline_scope(deadline):
                if deadline is not None:
                    deadline.check(f"serve.{route}")
                with self.tracer.span(f"serve.{route}"):
                    response = handler(body, match)
        except ServeError as exc:
            response = _Response(exc.status, _render(exc.payload()),
                                 headers=exc.headers)
        except JobQueueFull as exc:
            error = ServeError(
                503, "queue-full", str(exc),
                retry_after_s=exc.retry_after_s)
            response = _Response(
                503, _render(error.payload()),
                headers={"Retry-After": f"{exc.retry_after_s:g}"})
        except DeadlineExceeded as exc:
            response = _Response(504, _render(ServeError(
                504, "deadline-exceeded", str(exc)).payload()))
        except FaultError as exc:
            response = _Response(500, _render(ServeError(
                500, "injected-fault", str(exc)).payload()))
        except Exception as exc:  # defense: a bug must not kill the thread
            logger.exception("unhandled error serving %s %s", method, path)
            response = _Response(500, _render(ServeError(
                500, "internal", f"{type(exc).__name__}: {exc}").payload()))
        self._observe(route, response.status, time.perf_counter() - t0)
        return response

    def _request_deadline(self, headers: Optional[Dict[str, str]]
                          ) -> Optional[Deadline]:
        """The effective budget: the tighter of the server-wide default
        and the client's ``X-Repro-Deadline-S`` header (unparsable or
        non-positive header values are ignored — a malformed hint should
        not fail an otherwise valid request)."""
        budget = self.request_deadline_s
        if headers is not None:
            raw = headers.get("X-Repro-Deadline-S")
            if raw is not None:
                try:
                    hinted = float(raw)
                except (TypeError, ValueError):
                    hinted = 0.0
                if hinted > 0:
                    budget = (hinted if budget is None
                              else min(budget, hinted))
        return Deadline(budget) if budget is not None else None

    def _resolve(self, method: str, path: str):
        path = path.split("?", 1)[0].rstrip("/") or "/"
        match = _JOB_PATH.match(path)
        if match:
            if method != "GET":
                raise ServeError(
                    405, "method-not-allowed",
                    f"{method} not allowed on {path}", allow=["GET"])
            return "jobs.get", self._handle_job_get, match
        methods = self._routes.get(path)
        if methods is None:
            raise ServeError(
                404, "not-found",
                f"no such endpoint: {path} (see docs/serving.md)")
        entry = methods.get(method)
        if entry is None:
            raise ServeError(
                405, "method-not-allowed",
                f"{method} not allowed on {path}",
                allow=sorted(methods))
        route, handler = entry
        return route, handler, None

    def _observe(self, route: str, status: int, seconds: float) -> None:
        m = self.metrics
        m.counter("serve.requests").add(1)
        m.counter(f"serve.status.{status}").add(1)
        m.histogram("serve.latency_s").observe(seconds)
        m.histogram(f"serve.latency_s.{route}").observe(seconds)

    # ------------------------------------------------------- request parsing
    def _parse_json(self, body: bytes) -> object:
        if len(body) > self.max_body_bytes:
            raise ServeError(
                413, "too-large",
                f"request body is {len(body)} bytes; the server caps "
                f"bodies at {self.max_body_bytes}")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                400, "bad-request", f"request body is not valid JSON: "
                f"{exc}") from exc

    def _scenario(self, doc: object, verb: str) -> ScenarioSpec:
        try:
            scenario = ScenarioSpec.from_dict(doc)
        except ScenarioValidationError as exc:
            raise ServeError(
                400, "validation", str(exc), field=exc.field) from exc
        return _ensure_sections(scenario, _ENSURE[verb])

    # ----------------------------------------------------------- verb routes
    def _run_verb(self, verb: str, session: Session):
        if verb == "project":
            return session.project()
        if verb == "suggest":
            return session.suggest()
        if verb == "hybrid":
            return session.hybrid()
        if verb == "search":
            return session.search()
        if verb == "sweep":
            return session.sweep()
        raise AssertionError(f"unreachable verb {verb!r}")

    def answer(self, verb: str, doc: object) -> Dict[str, object]:
        """Validate + answer one verb; the core all routes share.

        Returns the result envelope dict.  Raises :class:`ServeError`
        (400) on validation failures and :class:`ServeError` (422)
        wrapping the shared error envelope on infeasible configurations.
        """
        scenario = self._scenario(doc, verb)
        session = self.pool.session(scenario)
        try:
            result = self._run_verb(verb, session)
        except ScenarioValidationError as exc:
            raise ServeError(
                400, "validation", str(exc), field=exc.field) from exc
        except (StrategyError, ValueError) as exc:
            raise _Infeasible(scenario, verb, exc) from exc
        return result.to_dict()

    def _make_verb_handler(self, verb: str):
        def handler(body: bytes, match) -> _Response:
            doc = self._parse_json(body)
            try:
                blob = self.answer(verb, doc)
            except _Infeasible as exc:
                # CLI parity: `repro <verb> --json` prints this envelope
                # compact (no indent) on infeasible configurations.
                return _Response(422, _render(exc.envelope, indent=None))
            return _Response(200, _render(blob))

        return handler

    # ----------------------------------------------------------- batch route
    def _handle_batch(self, body: bytes, match) -> _Response:
        doc = self._parse_json(body)
        if not isinstance(doc, dict):
            raise ServeError(
                400, "bad-request",
                f"batch body must be a mapping, got "
                f"{type(doc).__name__}")
        unknown = sorted(set(doc) - {"scenario", "questions"})
        if unknown:
            raise ServeError(
                400, "validation",
                f"{unknown[0]}: unknown key (known: questions, scenario)",
                field=unknown[0])
        base = doc.get("scenario", {})
        questions = doc.get("questions")
        if not isinstance(questions, list) or not questions:
            raise ServeError(
                400, "validation",
                "questions: expected a non-empty list",
                field="questions")
        # Validate the shared document once, up front.
        try:
            base_spec = ScenarioSpec.from_dict(base)
        except ScenarioValidationError as exc:
            raise ServeError(
                400, "validation", f"scenario.{exc.field}: {exc}",
                field=f"scenario.{exc.field}") from exc
        results = []
        for i, question in enumerate(questions):
            results.append(self._answer_question(base_spec, question, i))
        blob = {
            "schema_version": SCHEMA_VERSION,
            "kind": "batch",
            "scenario": base_spec.to_dict(),
            "count": len(results),
            "results": results,
        }
        return _Response(200, _render(blob))

    def _answer_question(self, base_spec: ScenarioSpec, question: object,
                         i: int) -> Dict[str, object]:
        """One batch entry: overrides merged onto the shared document.

        Shape errors in the question itself are 400s (the request is
        malformed); a *feasibility* failure is answered inline with the
        error envelope so sibling questions still get their results.
        """
        path = f"questions[{i}]"
        if not isinstance(question, dict):
            raise ServeError(
                400, "validation",
                f"{path}: expected a mapping, got "
                f"{type(question).__name__}", field=path)
        unknown = sorted(set(question) - {"verb", "overrides"})
        if unknown:
            raise ServeError(
                400, "validation",
                f"{path}.{unknown[0]}: unknown key (known: overrides, "
                f"verb)", field=f"{path}.{unknown[0]}")
        verb = question.get("verb")
        if verb not in VERBS:
            raise ServeError(
                400, "validation",
                f"{path}.verb: unknown verb {verb!r}; choose from "
                f"{', '.join(VERBS)}", field=f"{path}.verb")
        overrides = question.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ServeError(
                400, "validation",
                f"{path}.overrides: expected a mapping, got "
                f"{type(overrides).__name__}", field=f"{path}.overrides")
        try:
            merged = (base_spec.merged(overrides)
                      if overrides else base_spec)
        except ScenarioValidationError as exc:
            raise ServeError(
                400, "validation", f"{path}.overrides: {exc}",
                field=f"{path}.overrides.{exc.field}") from exc
        try:
            return self.answer(verb, merged.to_dict())
        except _Infeasible as exc:
            return exc.envelope

    # ------------------------------------------------------------ job routes
    def _handle_job_submit(self, body: bytes, match) -> _Response:
        doc = self._parse_json(body)
        if not isinstance(doc, dict):
            raise ServeError(
                400, "bad-request",
                f"job body must be a mapping, got {type(doc).__name__}")
        verb = doc.get("verb")
        if verb not in JOB_VERBS:
            raise ServeError(
                400, "validation",
                f"verb: unknown verb {verb!r}; choose from "
                f"{', '.join(JOB_VERBS)}", field="verb")
        scenario_doc = doc.get("scenario", {})
        # Validate *before* accepting the job: a bad document is the
        # submitter's error and deserves an immediate 400, not a handle
        # that resolves to failure later.
        self._scenario(scenario_doc, verb)

        def run() -> dict:
            try:
                return self.answer(verb, scenario_doc)
            except _Infeasible as exc:
                return exc.envelope

        job = self.jobs.submit(verb, run)
        blob = dict(
            {"schema_version": SCHEMA_VERSION, "kind": "job"},
            **job.snapshot(include_result=False))
        blob["poll"] = f"/v1/jobs/{job.id}"
        return _Response(202, _render(blob))

    def _handle_job_get(self, body: bytes, match) -> _Response:
        job_id = match.group("job_id")
        job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(
                404, "not-found", f"no such job: {job_id}")
        blob = dict(
            {"schema_version": SCHEMA_VERSION, "kind": "job"},
            **job.snapshot())
        return _Response(200, _render(blob))

    def _handle_job_list(self, body: bytes, match) -> _Response:
        blob = {
            "schema_version": SCHEMA_VERSION,
            "kind": "jobs",
            "jobs": [
                job.snapshot(include_result=False)
                for job in self.jobs.jobs()
            ],
        }
        return _Response(200, _render(blob))

    # ------------------------------------------------------- health/metrics
    def _handle_health(self, body: bytes, match) -> _Response:
        blob = {
            "schema_version": SCHEMA_VERSION,
            "kind": "health",
            "status": "ok",
            "uptime_s": time.time() - self.started_unix,
            "pool": self.pool.stats(),
            "jobs": self.jobs.stats(),
        }
        return _Response(200, _render(blob))

    def _handle_metrics(self, body: bytes, match) -> _Response:
        blob = {
            "schema_version": SCHEMA_VERSION,
            "kind": "metrics",
            "metrics": self.metrics.snapshot(),
            "pool": self.pool.stats(),
            "jobs": self.jobs.stats(),
        }
        return _Response(200, _render(blob))


class _Infeasible(Exception):
    """Internal signal: a verb ran but the configuration is infeasible."""

    def __init__(self, scenario: ScenarioSpec, verb: str,
                 exc: Exception) -> None:
        super().__init__(str(exc))
        self.envelope = error_envelope(scenario, verb, exc)


class _Handler(BaseHTTPRequestHandler):
    """Transport adapter: HTTP request -> ``_App.handle`` -> response."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _app(self) -> _App:
        return self.server.app  # type: ignore[attr-defined]

    def _read_body(self) -> Optional[bytes]:
        """The request body, or ``None`` after replying 413 inline."""
        app = self._app()
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length > app.max_body_bytes:
            # Refuse without reading: reply, then drop the connection so
            # the unread body can't be misparsed as a next request.
            error = ServeError(
                413, "too-large",
                f"request body is {length} bytes; the server caps "
                f"bodies at {app.max_body_bytes}")
            self._reply(_Response(413, _render(error.payload())))
            self.close_connection = True
            app._observe("unrouted", 413, 0.0)
            return None
        return self.rfile.read(length) if length else b""

    def _reply(self, response: _Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _dispatch(self, method: str) -> None:
        body = self._read_body()
        if body is None:
            return
        self._reply(self._app().handle(
            method, self.path, body, headers=self.headers))

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("POST")

    # Routed so unsupported methods get a structured 405 (with an
    # Allow-style body) instead of http.server's bare 501.
    def do_PUT(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("DELETE")

    def do_PATCH(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("PATCH")

    def do_HEAD(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("HEAD")


class _HTTPServer(ThreadingHTTPServer):
    # socketserver's default listen backlog of 5 drops connections the
    # moment more clients connect simultaneously than the accept loop
    # has drained — fatal for a burst of closed-loop load clients.
    request_queue_size = 128


class PlanningServer:
    """The deployable unit: app + pool + jobs on a threaded HTTP server.

    >>> server = PlanningServer(port=0)       # ephemeral port
    >>> server.start()                        # background thread
    >>> server.url                            # doctest: +SKIP
    'http://127.0.0.1:41823'
    >>> server.close()

    ``serve_forever()`` runs in the foreground (the CLI path);
    ``start()``/``close()`` bracket a background instance for tests,
    examples, and the in-process load harness.  The instance is also a
    context manager (``with PlanningServer(port=0) as server:``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 pool_size: int = 32, cache_dir: Optional[str] = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 job_workers: int = 2,
                 job_max_pending: Optional[int] = None,
                 job_max_results: int = 64,
                 request_deadline_s: Optional[float] = None,
                 tracer=None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pool = SessionPool(
            pool_size, cache_dir=cache_dir,
            tracer=self.tracer, metrics=self.metrics)
        self.jobs = JobManager(
            workers=job_workers, max_pending=job_max_pending,
            max_results=job_max_results, metrics=self.metrics)
        self.app = _App(
            pool=self.pool, jobs=self.jobs, metrics=self.metrics,
            tracer=self.tracer, max_body_bytes=max_body_bytes,
            request_deadline_s=request_deadline_s)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self.app  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------- identity
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "PlanningServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Unblock :meth:`serve_forever` after in-flight requests finish.

        Safe from any thread *except* the serving one (the CLI's signal
        path calls it from a helper thread); :meth:`close` still tears
        the sockets and job pool down afterwards.
        """
        self._httpd.shutdown()

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()
        self.jobs.shutdown(wait=False)

    def __enter__(self) -> "PlanningServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
