"""Closed-loop load harness: N client threads, a scenario mix, a clock.

The serving counterpart of the search perf harness: measure what the
planning server actually sustains, machine-readably.  Each worker
thread owns one :class:`~repro.serve.client.PlanningClient` and loops
over the scenario mix until the deadline — closed-loop, so offered
load adapts to service rate and the percentiles describe the server,
not a queue.  Latencies aggregate into p50/p90/p99 (the
:func:`repro.obs.metrics.percentile` estimator, numpy-compatible) plus
sustained RPS, per verb and overall.

``benchmarks/test_bench_serve.py`` runs this against an in-process
server and writes ``benchmarks/results/BENCH_serve.json`` through the
standard ``_util.write_report`` harness; ``repro bench-serve`` is the
CLI wrapper, and :func:`write_bench_json` emits the same envelope for
ad-hoc runs so ``scripts/check_perf_regression.py`` can diff either.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import percentile
from .client import PlanningClient, ServerError

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "default_mix",
    "write_bench_json",
]

#: Percentiles every latency summary reports (the SPEChpc-style trio).
REPORT_PERCENTILES = (50.0, 90.0, 99.0)


def default_mix(pes: int = 8,
                samples_per_pe: int = 4) -> List[Tuple[str, dict]]:
    """The canonical small scenario mix: project-heavy, some ranking.

    Mirrors real planning traffic: point projections dominate, with
    periodic suggest/hybrid ranking sweeps.  Small operating points so
    the harness measures transport + session overhead, not model size.
    """
    base = {
        "model": {"name": "alexnet"},
        "cluster": {"pes": pes},
        "training": {"samples_per_pe": samples_per_pe},
    }
    resnet = dict(base, model={"name": "resnet50"})
    return [
        ("project", dict(base, strategy={"id": "d"})),
        ("project", dict(base, strategy={"id": "z"})),
        ("project", dict(resnet, strategy={"id": "d"})),
        ("suggest", base),
        ("project", dict(base, strategy={"id": "f"})),
        ("hybrid", base),
    ]


def _summary(latencies: Sequence[float]) -> Dict[str, float]:
    """Latency stats in milliseconds for one sample set."""
    if not latencies:
        return {"requests": 0.0}
    ms = sorted(x * 1e3 for x in latencies)
    out = {
        "requests": float(len(ms)),
        "mean_ms": sum(ms) / len(ms),
        "min_ms": ms[0],
        "max_ms": ms[-1],
    }
    for q in REPORT_PERCENTILES:
        out[f"p{q:g}_ms"] = percentile(ms, q)
    return out


@dataclass
class LoadReport:
    """What a load run measured: latency distribution + throughput."""

    clients: int
    duration_s: float
    requests: int
    errors: int
    rps: float
    latency: Dict[str, float]
    per_verb: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def asdict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "errors": self.errors,
            "rps": self.rps,
            "latency": dict(self.latency),
            "per_verb": {v: dict(s) for v, s in self.per_verb.items()},
        }

    def bench_metrics(self) -> Dict[str, float]:
        """The flat metric dict for ``BENCH_serve.json``."""
        metrics: Dict[str, float] = {
            "clients": float(self.clients),
            "duration_s": self.duration_s,
            "requests": float(self.requests),
            "errors": float(self.errors),
            "rps": self.rps,
        }
        for key, value in self.latency.items():
            metrics[f"latency_{key}"] = value
        return metrics

    #: Metric names where a *drop* is a serving regression.
    HIGHER_IS_BETTER = ("rps",)

    def lines(self) -> List[str]:
        """Human-readable report rows (CLI + benchmark output)."""
        rows = [
            f"serve load: {self.clients} clients x "
            f"{self.duration_s:.1f}s closed loop",
            f"  requests: {self.requests} ({self.errors} errors), "
            f"sustained {self.rps:.0f} req/s",
        ]
        lat = self.latency
        if lat.get("requests"):
            rows.append(
                "  latency : "
                f"p50={lat['p50_ms']:.2f}ms "
                f"p90={lat['p90_ms']:.2f}ms "
                f"p99={lat['p99_ms']:.2f}ms "
                f"(mean {lat['mean_ms']:.2f}ms, max {lat['max_ms']:.2f}ms)")
        for verb in sorted(self.per_verb):
            s = self.per_verb[verb]
            if s.get("requests"):
                rows.append(
                    f"  {verb:8s}: {int(s['requests'])} reqs, "
                    f"p50={s['p50_ms']:.2f}ms p99={s['p99_ms']:.2f}ms")
        return rows


class LoadGenerator:
    """Closed-loop generator over a fixed scenario mix.

    Parameters
    ----------
    base_url:
        The planning server to load.
    mix:
        ``(verb, scenario_document)`` pairs cycled by every worker;
        default :func:`default_mix`.
    clients:
        Concurrent worker threads (each a closed loop).
    duration_s:
        Wall-clock run length; workers stop at the shared deadline.
    timeout:
        Per-request client timeout.
    """

    def __init__(self, base_url: str, *,
                 mix: Optional[Sequence[Tuple[str, dict]]] = None,
                 clients: int = 4, duration_s: float = 2.0,
                 timeout: float = 30.0) -> None:
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {duration_s}")
        self.base_url = base_url
        self.mix = list(mix) if mix is not None else default_mix()
        if not self.mix:
            raise ValueError("need a non-empty scenario mix")
        self.clients = clients
        self.duration_s = duration_s
        self.timeout = timeout

    def _worker(self, worker_id: int, deadline: float,
                out: List[Tuple[str, float]], errors: List[str]) -> None:
        client = PlanningClient(self.base_url, timeout=self.timeout)
        verbs = {
            "project": client.project,
            "suggest": client.suggest,
            "hybrid": client.hybrid,
            "search": client.search,
        }
        # Stagger starting offsets so workers don't phase-lock on one
        # scenario and the mix shares load evenly.
        i = worker_id
        while time.perf_counter() < deadline:
            verb, doc = self.mix[i % len(self.mix)]
            i += 1
            t0 = time.perf_counter()
            try:
                verbs[verb](doc)
            except (ServerError, OSError) as exc:
                errors.append(f"{verb}: {exc}")
                continue
            out.append((verb, time.perf_counter() - t0))

    def run(self) -> LoadReport:
        """Drive the load and aggregate the percentile report."""
        started = time.perf_counter()
        deadline = started + self.duration_s
        samples: List[List[Tuple[str, float]]] = [
            [] for _ in range(self.clients)]
        errors: List[List[str]] = [[] for _ in range(self.clients)]
        threads = [
            threading.Thread(
                target=self._worker,
                args=(i, deadline, samples[i], errors[i]),
                name=f"loadgen-{i}", daemon=True)
            for i in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        flat = [pair for chunk in samples for pair in chunk]
        all_errors = [e for chunk in errors for e in chunk]
        by_verb: Dict[str, List[float]] = {}
        for verb, seconds in flat:
            by_verb.setdefault(verb, []).append(seconds)
        return LoadReport(
            clients=self.clients,
            duration_s=elapsed,
            requests=len(flat),
            errors=len(all_errors),
            rps=len(flat) / elapsed if elapsed > 0 else 0.0,
            latency=_summary([seconds for _, seconds in flat]),
            per_verb={v: _summary(s) for v, s in sorted(by_verb.items())},
        )


def write_bench_json(path: str, report: LoadReport,
                     name: str = "serve") -> str:
    """Write a ``BENCH_<name>.json``-compatible envelope for ``report``.

    Same schema as ``benchmarks/_util.write_bench_json`` (version 1:
    ``schema_version``/``name``/``machine``/``metrics``/
    ``higher_is_better``), so ``scripts/check_perf_regression.py``
    consumes CLI-emitted reports and benchmark-suite reports alike.
    """
    payload = {
        "schema_version": 1,
        "name": name,
        "created_unix": time.time(),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "processor": platform.processor(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "metrics": report.bench_metrics(),
        "higher_is_better": sorted(LoadReport.HIGHER_IS_BETTER),
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
