"""Oracle-as-a-service: the planning oracle behind an HTTP wire.

``repro.serve`` turns the in-process :class:`~repro.api.session.Session`
verbs into a small threaded HTTP service speaking the exact PR 4 wire
contract — scenario documents in, schema-versioned result envelopes
out, byte-identical to ``repro <verb> --json``.  Stdlib only
(:mod:`http.server`, :mod:`urllib.request`): no new dependencies.

Pieces:

- :class:`PlanningServer` — ``ThreadingHTTPServer`` wrapper exposing
  ``POST /v1/{project,suggest,hybrid,search}``, ``POST /v1/batch``,
  async ``/v1/jobs``, ``GET /healthz`` and ``GET /metricsz``.
- :class:`PlanningClient` — urllib client for the same contract.
- :class:`SessionPool` — memoized per-fingerprint Sessions with LRU
  eviction and a shared projection-cache directory.
- :class:`JobManager` — submit/poll handles for long verbs.
- :class:`LoadGenerator` — closed-loop load harness emitting
  p50/p90/p99 latency + RPS reports (``BENCH_serve.json``).

CLI: ``repro serve`` runs the server, ``repro bench-serve`` runs the
load harness against an in-process instance.
"""

from .client import PlanningClient, ServerError
from .jobs import Job, JobManager, JobQueueFull
from .loadgen import LoadGenerator, LoadReport, default_mix, write_bench_json
from .pool import SessionPool, scenario_fingerprint
from .server import PlanningServer, ServeError

__all__ = [
    "Job",
    "JobManager",
    "JobQueueFull",
    "LoadGenerator",
    "LoadReport",
    "PlanningClient",
    "PlanningServer",
    "ServeError",
    "ServerError",
    "SessionPool",
    "default_mix",
    "scenario_fingerprint",
    "write_bench_json",
]
