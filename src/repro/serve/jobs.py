"""Async job handles for long-running planning verbs.

A full search or zoo sweep can run for seconds to minutes — too long to
hold an HTTP connection open under load.  ``POST /v1/jobs`` submits the
verb to a small worker pool and returns a handle immediately;
``GET /v1/jobs/<id>`` polls it until the result envelope is ready.

Lifecycle::

    pending -> running -> done
                       -> error     (the verb raised; message recorded)

Finished jobs are retained so results can be fetched after completion,
bounded by ``max_jobs``: once the table exceeds it, the oldest
*finished* jobs are dropped (in-flight jobs are never evicted), so a
poller that comes back late gets a clean 404 instead of unbounded
server memory.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional

__all__ = ["Job", "JobManager"]

#: Job states on the wire.
PENDING, RUNNING, DONE, ERROR = "pending", "running", "done", "error"


class Job:
    """One submitted verb: identity, state, and (eventually) a result."""

    __slots__ = ("id", "verb", "status", "created", "started", "finished",
                 "result", "error")

    def __init__(self, verb: str) -> None:
        self.id = uuid.uuid4().hex[:12]
        self.verb = verb
        self.status = PENDING
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[dict] = None
        self.error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.status in (DONE, ERROR)

    def snapshot(self, *, include_result: bool = True) -> Dict[str, object]:
        """The JSON-ready wire view of this job."""
        blob: Dict[str, object] = {
            "job_id": self.id,
            "verb": self.verb,
            "status": self.status,
            "created_unix": self.created,
        }
        if self.started is not None:
            blob["started_unix"] = self.started
        if self.finished is not None:
            blob["finished_unix"] = self.finished
            blob["seconds"] = self.finished - (self.started or self.created)
        if self.error is not None:
            blob["error"] = self.error
        if include_result and self.result is not None:
            blob["result"] = self.result
        return blob


class JobManager:
    """Submit/poll registry over a bounded worker pool.

    ``submit`` accepts a zero-argument callable returning the JSON-ready
    result payload; exceptions become the job's ``error`` state rather
    than escaping into the pool.
    """

    def __init__(self, workers: int = 2, max_jobs: int = 256) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve-job")
        self.max_jobs = max_jobs

    def submit(self, verb: str, fn: Callable[[], dict]) -> Job:
        job = Job(verb)
        with self._lock:
            self._jobs[job.id] = job
            self._evict_finished_locked()
        self._pool.submit(self._run, job, fn)
        return job

    def _run(self, job: Job, fn: Callable[[], dict]) -> None:
        job.started = time.time()
        job.status = RUNNING
        try:
            job.result = fn()
            job.status = DONE
        except Exception as exc:  # job errors are data, not crashes
            job.error = str(exc) or type(exc).__name__
            job.status = ERROR
        finally:
            job.finished = time.time()

    def _evict_finished_locked(self) -> None:
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in [
            j.id for j in self._jobs.values() if j.terminal
        ][: len(self._jobs) - self.max_jobs]:
            del self._jobs[job_id]

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float = 30.0,
             poll_s: float = 0.02) -> Optional[Job]:
        """Block until the job finishes (test/smoke convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job is None or job.terminal:
                return job
            time.sleep(poll_s)
        return self.get(job_id)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            states = [j.status for j in self._jobs.values()]
        return {
            "jobs": float(len(states)),
            "pending": float(states.count(PENDING)),
            "running": float(states.count(RUNNING)),
            "done": float(states.count(DONE)),
            "error": float(states.count(ERROR)),
        }

    def shutdown(self, wait: bool = False) -> None:
        self._pool.shutdown(wait=wait)
