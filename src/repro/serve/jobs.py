"""Async job handles for long-running planning verbs.

A full search or zoo sweep can run for seconds to minutes — too long to
hold an HTTP connection open under load.  ``POST /v1/jobs`` submits the
verb to a small worker pool and returns a handle immediately;
``GET /v1/jobs/<id>`` polls it until the result envelope is ready.

Lifecycle::

    pending -> running -> done
                       -> error     (the verb raised; message recorded)

Memory bounds (a long-lived server must not grow without limit):

* ``max_jobs`` — once the table exceeds it, the oldest *finished* jobs
  are dropped entirely (in-flight jobs are never evicted); a poller
  that comes back late gets a clean 404.
* ``max_results`` — independent of the table bound, only this many
  finished jobs keep their full result payload pinned; older results
  are released (the job row survives with ``result_evicted: true``, so
  the poller learns the result aged out rather than seeing a 404).
* ``max_pending`` — admission control: submits beyond this many
  not-yet-finished jobs raise :class:`JobQueueFull`, which the server
  maps to 503 + ``Retry-After``.

Evictions count into ``stats()`` (and the server's metrics registry as
``serve.jobs.evicted`` / ``serve.jobs.results_evicted``).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional

__all__ = ["Job", "JobManager", "JobQueueFull"]

#: Job states on the wire.
PENDING, RUNNING, DONE, ERROR = "pending", "running", "done", "error"


class JobQueueFull(RuntimeError):
    """Admission control rejected a submit: too many jobs in flight."""

    def __init__(self, pending: int, limit: int,
                 retry_after_s: float) -> None:
        super().__init__(
            f"job queue saturated: {pending} jobs in flight "
            f"(limit {limit}); retry in {retry_after_s:g}s")
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


class Job:
    """One submitted verb: identity, state, and (eventually) a result."""

    __slots__ = ("id", "verb", "status", "created", "started", "finished",
                 "result", "error", "result_evicted")

    def __init__(self, verb: str) -> None:
        self.id = uuid.uuid4().hex[:12]
        self.verb = verb
        self.status = PENDING
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.result_evicted = False

    @property
    def terminal(self) -> bool:
        return self.status in (DONE, ERROR)

    def snapshot(self, *, include_result: bool = True) -> Dict[str, object]:
        """The JSON-ready wire view of this job."""
        blob: Dict[str, object] = {
            "job_id": self.id,
            "verb": self.verb,
            "status": self.status,
            "created_unix": self.created,
        }
        if self.started is not None:
            blob["started_unix"] = self.started
        if self.finished is not None:
            blob["finished_unix"] = self.finished
            blob["seconds"] = self.finished - (self.started or self.created)
        if self.error is not None:
            blob["error"] = self.error
        if include_result and self.result is not None:
            blob["result"] = self.result
        if self.result_evicted:
            blob["result_evicted"] = True
        return blob


class JobManager:
    """Submit/poll registry over a bounded worker pool.

    ``submit`` accepts a zero-argument callable returning the JSON-ready
    result payload; exceptions become the job's ``error`` state rather
    than escaping into the pool.

    Parameters
    ----------
    workers:
        Pool threads actually executing verbs.
    max_jobs:
        Table bound — oldest finished jobs are dropped beyond it.
    max_results:
        How many finished jobs keep their result payload in memory
        (older payloads are released, rows kept).
    max_pending:
        Admission bound on not-yet-finished jobs; ``None`` disables.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; evictions
        increment ``serve.jobs.evicted`` / ``serve.jobs.results_evicted``.
    """

    #: Retry-After hint handed to rejected submitters: long enough for a
    #: typical verb to drain, short enough to keep clients responsive.
    RETRY_AFTER_S = 1.0

    def __init__(self, workers: int = 2, max_jobs: int = 256, *,
                 max_results: int = 64,
                 max_pending: Optional[int] = None,
                 metrics=None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_results < 0:
            raise ValueError(
                f"max_results must be >= 0, got {max_results}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve-job")
        self.max_jobs = max_jobs
        self.max_results = max_results
        self.max_pending = max_pending
        self.metrics = metrics
        self.evicted = 0
        self.results_evicted = 0
        self.rejected = 0

    def submit(self, verb: str, fn: Callable[[], dict]) -> Job:
        job = Job(verb)
        with self._lock:
            if self.max_pending is not None:
                in_flight = sum(
                    1 for j in self._jobs.values() if not j.terminal)
                if in_flight >= self.max_pending:
                    self.rejected += 1
                    if self.metrics is not None:
                        self.metrics.counter("serve.jobs.rejected").add(1)
                    raise JobQueueFull(
                        in_flight, self.max_pending, self.RETRY_AFTER_S)
            self._jobs[job.id] = job
            self._evict_finished_locked()
        self._pool.submit(self._run, job, fn)
        return job

    def _run(self, job: Job, fn: Callable[[], dict]) -> None:
        job.started = time.time()
        job.status = RUNNING
        try:
            job.result = fn()
            job.status = DONE
        except Exception as exc:  # job errors are data, not crashes
            job.error = str(exc) or type(exc).__name__
            job.status = ERROR
        finally:
            job.finished = time.time()
            with self._lock:
                self._evict_results_locked()

    def _evict_finished_locked(self) -> None:
        if len(self._jobs) > self.max_jobs:
            for job_id in [
                j.id for j in self._jobs.values() if j.terminal
            ][: len(self._jobs) - self.max_jobs]:
                del self._jobs[job_id]
                self.evicted += 1
                if self.metrics is not None:
                    self.metrics.counter("serve.jobs.evicted").add(1)
        self._evict_results_locked()

    def _evict_results_locked(self) -> None:
        """Release result payloads beyond ``max_results``, oldest first
        (insertion order approximates completion order closely enough
        for a bound whose purpose is memory, not fairness)."""
        holders = [
            j for j in self._jobs.values()
            if j.terminal and j.result is not None
        ]
        excess = len(holders) - self.max_results
        for job in holders[:max(0, excess)]:
            job.result = None
            job.result_evicted = True
            self.results_evicted += 1
            if self.metrics is not None:
                self.metrics.counter("serve.jobs.results_evicted").add(1)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float = 30.0,
             poll_s: float = 0.02) -> Optional[Job]:
        """Block until the job finishes (test/smoke convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job is None or job.terminal:
                return job
            time.sleep(poll_s)
        return self.get(job_id)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            states = [j.status for j in self._jobs.values()]
        return {
            "jobs": float(len(states)),
            "pending": float(states.count(PENDING)),
            "running": float(states.count(RUNNING)),
            "done": float(states.count(DONE)),
            "error": float(states.count(ERROR)),
            "evicted": float(self.evicted),
            "results_evicted": float(self.results_evicted),
            "rejected": float(self.rejected),
        }

    def shutdown(self, wait: bool = False) -> None:
        self._pool.shutdown(wait=wait)
