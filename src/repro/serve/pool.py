"""Memoized per-scenario Sessions with LRU eviction — the serving heart.

An HTTP planning server answers many requests against few distinct
scenarios: the same model/cluster/training document arrives again and
again with the same (or near-identical) fields.  A
:class:`SessionPool` memoizes one :class:`~repro.api.session.Session`
per scenario *fingerprint* (the canonical JSON of the validated spec),
so repeated requests reuse the lazily-built model graph, compute
profile, oracle, compiled kernel, and projection cache instead of
re-deriving them — this is what keeps per-request cost in the
microseconds the PR 5/7 fast path made possible.

Capacity is bounded: least-recently-used sessions are evicted once the
pool exceeds ``capacity`` distinct fingerprints, so a scenario-diverse
traffic mix cannot grow memory without bound.  Eviction only drops the
in-memory Session — with a shared ``cache_dir`` its persisted
projections survive on disk and the next session for that fingerprint
re-loads them warm.

Thread safety: one lock guards the table; Session construction itself
is cheap (everything inside is lazy) and the Session's own memo lock
makes first-touch construction of heavy components single-shot even
when many request threads share one session.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..api.session import Session
from ..api.spec import ScenarioSpec
from ..faults import FaultError
from ..faults import fire as _fire_fault

__all__ = ["SessionPool", "scenario_fingerprint"]

#: Default number of distinct scenarios kept live.
DEFAULT_CAPACITY = 32


def scenario_fingerprint(scenario: ScenarioSpec) -> str:
    """Stable identity of a validated scenario (the pool key).

    The canonical sorted-key JSON of ``to_dict()`` hashed down to 16 hex
    chars: two documents that validate to the same spec — regardless of
    key order or formatting on the wire — share a fingerprint, and any
    field difference separates them.
    """
    blob = json.dumps(scenario.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class SessionPool:
    """LRU-bounded ``fingerprint -> Session`` memo.

    Parameters
    ----------
    capacity:
        Maximum distinct scenarios kept live; least-recently-used
        sessions are evicted beyond it.
    cache_dir:
        Shared cross-model projection-cache directory handed to every
        Session (see ``Session(cache_dir=...)``): searches for
        different models/clusters persist side by side in
        fingerprint-named files, and evicted sessions re-warm from it.
    tracer / metrics:
        Observability sinks shared by every pooled session, so one
        registry aggregates counters across the whole serving surface.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 cache_dir: Optional[str] = None,
                 tracer=None, metrics=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.cache_dir = cache_dir
        self.tracer = tracer
        self.metrics = metrics
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def session(self, scenario: ScenarioSpec) -> Session:
        """The pooled Session for ``scenario`` (built on first use).

        Fault site ``serve.pool.session``: ``error`` fails the lookup
        (exercising the server's 500 path); ``delay`` stalls it.
        """
        action = _fire_fault("serve.pool.session")
        if action is not None and action.kind == "error":
            raise FaultError(action.describe())
        key = scenario_fingerprint(scenario)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self.hits += 1
                self._sessions.move_to_end(key)
                return session
            self.misses += 1
            session = Session(
                scenario,
                tracer=self.tracer,
                metrics=self.metrics,
                cache_dir=self.cache_dir,
            )
            self._sessions[key] = session
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
                self.evictions += 1
            return session

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, scenario: ScenarioSpec) -> bool:
        with self._lock:
            return scenario_fingerprint(scenario) in self._sessions

    def clear(self) -> None:
        with self._lock:
            self._sessions.clear()

    def stats(self) -> Dict[str, float]:
        """JSON-ready counters (scraped into ``/metricsz``)."""
        with self._lock:
            return {
                "sessions": float(len(self._sessions)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
            }
