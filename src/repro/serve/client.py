"""Stdlib HTTP client for the planning server.

A thin :mod:`http.client` wrapper speaking the ``/v1`` wire contract:
scenario documents out, schema-versioned result envelopes back.  No
third-party dependencies, so anything that can import ``repro`` can
drive a remote oracle.

>>> from repro.serve import PlanningClient, PlanningServer
>>> with PlanningServer(port=0) as server:          # doctest: +SKIP
...     client = PlanningClient(server.url)
...     envelope = client.project({"model": {"name": "alexnet"}})
...     envelope["kind"]
'project'

Error mapping: non-2xx responses raise :class:`ServerError`, carrying
the HTTP ``status``, the parsed error ``payload``, and — for 400
validation failures — the dotted scenario ``field`` the server named.
Transport-level failures (connection refused, timeouts, malformed
responses) propagate as :class:`OSError` subclasses, so one
``except (ServerError, OSError)`` covers every failure mode.

Resilience: every request carries a ``(connect, read)`` timeout pair
(default 30 s each — a hung server can never wedge a client thread
forever), and an optional :class:`~repro.faults.RetryPolicy` retries
transport failures and 502/503/504 responses with exponential backoff,
honoring the server's ``Retry-After`` hint on queue-full 503s.  Job
submission (``POST /v1/jobs``) is deliberately never retried — a blind
resubmit could enqueue duplicate jobs.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from repro.faults import RetryPolicy
from repro.faults import fire as _fire_fault

__all__ = ["PlanningClient", "ServerError", "RETRYABLE_STATUSES"]

#: Response codes a retry policy is allowed to retry: the transient
#: server-side trio (bad gateway, queue saturated, deadline exceeded).
RETRYABLE_STATUSES = (502, 503, 504)


class ServerError(RuntimeError):
    """A non-2xx response from the planning server."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        error = payload.get("error")
        message = (
            error.get("message") if isinstance(error, dict)
            else payload.get("error")
        ) or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload

    @property
    def field(self) -> str:
        """Dotted scenario field path for validation errors ('' else)."""
        error = self.payload.get("error")
        if isinstance(error, dict):
            return str(error.get("field", ""))
        return ""

    @property
    def retry_after(self) -> Optional[float]:
        """The server's ``Retry-After`` hint in seconds (503 envelopes
        carry it as ``error.retry_after_s``), or ``None``."""
        error = self.payload.get("error")
        if isinstance(error, dict) and "retry_after_s" in error:
            try:
                return float(error["retry_after_s"])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return None
        return None


ScenarioDoc = Dict[str, object]


class PlanningClient:
    """Client half of the oracle-as-a-service wire contract.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``"http://127.0.0.1:8177"`` (a trailing
        slash is tolerated).
    timeout:
        Either one number applied to both phases, or a ``(connect,
        read)`` pair in seconds.  Default 30 s each.
    retries:
        Optional :class:`~repro.faults.RetryPolicy` applied to
        transport errors and :data:`RETRYABLE_STATUSES` responses.
        ``None`` (the default) fails fast, matching the historical
        behavior byte-for-byte.
    deadline_s:
        When set, every request carries an ``X-Repro-Deadline-S``
        header and the server aborts work past the budget with a 504
        envelope.
    """

    def __init__(self, base_url: str, *,
                 timeout: Union[float, Tuple[float, float]] = 30.0,
                 retries: Optional[RetryPolicy] = None,
                 deadline_s: Optional[float] = None) -> None:
        self.base_url = base_url.rstrip("/")
        if isinstance(timeout, (tuple, list)):
            connect_t, read_t = timeout
        else:
            connect_t = read_t = timeout
        self.connect_timeout = float(connect_t)
        self.read_timeout = float(read_t)
        self.retries = retries
        self.deadline_s = deadline_s
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(
                f"PlanningClient speaks plain http, got {self.base_url!r}")
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80

    @property
    def timeout(self) -> float:
        """The read timeout (back-compat single-number view)."""
        return self.read_timeout

    # ------------------------------------------------------------ transport
    def request_raw(self, method: str, path: str,
                    body: Optional[bytes] = None) -> Tuple[int, bytes]:
        """One HTTP exchange, bytes in/bytes out (parity-test friendly).

        Returns ``(status, body)`` for *any* status — no exception
        mapping, no retries — so tests can assert on exact wire bytes.
        """
        status, raw, _headers = self._exchange(method, path, body)
        return status, raw

    def _exchange(self, method: str, path: str, body: Optional[bytes]
                  ) -> Tuple[int, bytes, Dict[str, str]]:
        """One exchange with a split (connect, read) timeout.

        Fault site ``serve.client.request``: ``drop`` fails like a
        connection that never got through; ``delay`` stalls the call.
        """
        action = _fire_fault("serve.client.request")
        if action is not None and action.kind == "drop":
            raise ConnectionError(action.describe())
        headers = {"Content-Type": "application/json"}
        if self.deadline_s is not None:
            headers["X-Repro-Deadline-S"] = f"{self.deadline_s:g}"
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.connect_timeout)
        try:
            conn.connect()
            if conn.sock is not None:
                # Connect succeeded within the connect budget; the rest
                # of the exchange runs on the read budget.
                conn.sock.settimeout(self.read_timeout)
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, raw, dict(response.getheaders())
        except http.client.HTTPException as exc:
            raise ConnectionError(
                f"malformed HTTP exchange with {self.base_url}: {exc}"
            ) from exc
        finally:
            conn.close()

    def _request_once(self, method: str, path: str,
                      body: Optional[bytes]) -> Dict[str, object]:
        status, raw, _headers = self._exchange(method, path, body)
        try:
            blob = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            blob = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= status < 300:
            raise ServerError(status, blob)
        return blob

    def request(self, method: str, path: str,
                payload: Optional[object] = None) -> Dict[str, object]:
        """One JSON exchange; raises :class:`ServerError` on non-2xx.

        With :attr:`retries` set, transport errors and retryable
        statuses are retried under the policy; the server's
        ``Retry-After`` hint extends the backoff when present.
        """
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None else None
        )
        policy = self.retries
        if policy is None or (method == "POST" and path == "/v1/jobs"):
            return self._request_once(method, path, body)
        last: Optional[BaseException] = None
        for attempt, delay in enumerate(policy.delays()):
            if delay > 0:
                last_hint = (last.retry_after
                             if isinstance(last, ServerError) else None)
                if last_hint is not None:
                    delay = max(delay, last_hint)
                policy.sleep(delay)
            try:
                return self._request_once(method, path, body)
            except ServerError as exc:
                if exc.status not in RETRYABLE_STATUSES:
                    raise
                last = exc
            except OSError as exc:
                last = exc
        assert last is not None
        raise last

    # ----------------------------------------------------------- sync verbs
    def project(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/project`` — one strategy at one operating point."""
        return self.request("POST", "/v1/project", scenario)

    def suggest(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/suggest`` — every strategy ranked for the budget."""
        return self.request("POST", "/v1/suggest", scenario)

    def hybrid(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/hybrid`` — ranked (p1, p2) factorizations."""
        return self.request("POST", "/v1/hybrid", scenario)

    def search(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/search`` — the automated strategy search."""
        return self.request("POST", "/v1/search", scenario)

    def batch(self, scenario: ScenarioDoc,
              questions: Sequence[Union[str, Dict[str, object]]]
              ) -> Dict[str, object]:
        """``POST /v1/batch`` — one document, many questions.

        Each question is a ``{"verb": ..., "overrides": {...}}`` mapping
        (a bare verb string is shorthand for no overrides).
        """
        normalized: List[Dict[str, object]] = [
            {"verb": q} if isinstance(q, str) else dict(q)
            for q in questions
        ]
        return self.request(
            "POST", "/v1/batch",
            {"scenario": scenario, "questions": normalized})

    # ----------------------------------------------------------------- jobs
    def submit(self, verb: str, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/jobs`` — async handle for a long-running verb.

        Never retried even with a policy configured (a duplicate submit
        would enqueue duplicate work); queue-full 503s surface to the
        caller with :attr:`ServerError.retry_after` set.
        """
        return self.request(
            "POST", "/v1/jobs", {"verb": verb, "scenario": scenario})

    def job(self, job_id: str) -> Dict[str, object]:
        """``GET /v1/jobs/<id>`` — current state (+ result when done)."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, object]:
        """``GET /v1/jobs`` — every known job, summarized."""
        return self.request("GET", "/v1/jobs")

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll_s: float = 0.05) -> Dict[str, object]:
        """Poll a job until it finishes; returns its final state.

        Raises ``TimeoutError`` if the job is still running at the
        deadline; the job itself keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            state = self.job(job_id)
            if state.get("status") in ("done", "error"):
                return state
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state.get('status')!r} after "
                    f"{timeout}s")
            time.sleep(poll_s)

    def run_job(self, verb: str, scenario: ScenarioDoc, *,
                timeout: float = 60.0) -> Dict[str, object]:
        """Submit + wait + unwrap: the blocking convenience path."""
        handle = self.submit(verb, scenario)
        state = self.wait(str(handle["job_id"]), timeout=timeout)
        if state.get("status") == "error":
            raise ServerError(500, {"error": state.get("error")})
        return state["result"]  # type: ignore[return-value]

    # ------------------------------------------------------------- plumbing
    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        """``GET /metricsz`` — the server's observability snapshot."""
        return self.request("GET", "/metricsz")
