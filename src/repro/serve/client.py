"""Stdlib HTTP client for the planning server.

A thin :mod:`urllib.request` wrapper speaking the ``/v1`` wire
contract: scenario documents out, schema-versioned result envelopes
back.  No third-party dependencies, so anything that can import
``repro`` can drive a remote oracle.

>>> from repro.serve import PlanningClient, PlanningServer
>>> with PlanningServer(port=0) as server:          # doctest: +SKIP
...     client = PlanningClient(server.url)
...     envelope = client.project({"model": {"name": "alexnet"}})
...     envelope["kind"]
'project'

Error mapping: non-2xx responses raise :class:`ServerError`, carrying
the HTTP ``status``, the parsed error ``payload``, and — for 400
validation failures — the dotted scenario ``field`` the server named.
Transport-level failures (connection refused, timeouts) propagate as
the underlying :class:`urllib.error.URLError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["PlanningClient", "ServerError"]


class ServerError(RuntimeError):
    """A non-2xx response from the planning server."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        error = payload.get("error")
        message = (
            error.get("message") if isinstance(error, dict)
            else payload.get("error")
        ) or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload

    @property
    def field(self) -> str:
        """Dotted scenario field path for validation errors ('' else)."""
        error = self.payload.get("error")
        if isinstance(error, dict):
            return str(error.get("field", ""))
        return ""


ScenarioDoc = Dict[str, object]


class PlanningClient:
    """Client half of the oracle-as-a-service wire contract.

    Parameters
    ----------
    base_url:
        The server root, e.g. ``"http://127.0.0.1:8177"`` (a trailing
        slash is tolerated).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def request_raw(self, method: str, path: str,
                    body: Optional[bytes] = None) -> Tuple[int, bytes]:
        """One HTTP exchange, bytes in/bytes out (parity-test friendly).

        Returns ``(status, body)`` for *any* status — no exception
        mapping — so tests can assert on exact wire bytes.
        """
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, exc.read()

    def request(self, method: str, path: str,
                payload: Optional[object] = None) -> Dict[str, object]:
        """One JSON exchange; raises :class:`ServerError` on non-2xx."""
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None else None
        )
        status, raw = self.request_raw(method, path, body)
        try:
            blob = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            blob = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= status < 300:
            raise ServerError(status, blob)
        return blob

    # ----------------------------------------------------------- sync verbs
    def project(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/project`` — one strategy at one operating point."""
        return self.request("POST", "/v1/project", scenario)

    def suggest(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/suggest`` — every strategy ranked for the budget."""
        return self.request("POST", "/v1/suggest", scenario)

    def hybrid(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/hybrid`` — ranked (p1, p2) factorizations."""
        return self.request("POST", "/v1/hybrid", scenario)

    def search(self, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/search`` — the automated strategy search."""
        return self.request("POST", "/v1/search", scenario)

    def batch(self, scenario: ScenarioDoc,
              questions: Sequence[Union[str, Dict[str, object]]]
              ) -> Dict[str, object]:
        """``POST /v1/batch`` — one document, many questions.

        Each question is a ``{"verb": ..., "overrides": {...}}`` mapping
        (a bare verb string is shorthand for no overrides).
        """
        normalized: List[Dict[str, object]] = [
            {"verb": q} if isinstance(q, str) else dict(q)
            for q in questions
        ]
        return self.request(
            "POST", "/v1/batch",
            {"scenario": scenario, "questions": normalized})

    # ----------------------------------------------------------------- jobs
    def submit(self, verb: str, scenario: ScenarioDoc) -> Dict[str, object]:
        """``POST /v1/jobs`` — async handle for a long-running verb."""
        return self.request(
            "POST", "/v1/jobs", {"verb": verb, "scenario": scenario})

    def job(self, job_id: str) -> Dict[str, object]:
        """``GET /v1/jobs/<id>`` — current state (+ result when done)."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, object]:
        """``GET /v1/jobs`` — every known job, summarized."""
        return self.request("GET", "/v1/jobs")

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll_s: float = 0.05) -> Dict[str, object]:
        """Poll a job until it finishes; returns its final state.

        Raises ``TimeoutError`` if the job is still running at the
        deadline; the job itself keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            state = self.job(job_id)
            if state.get("status") in ("done", "error"):
                return state
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state.get('status')!r} after "
                    f"{timeout}s")
            time.sleep(poll_s)

    def run_job(self, verb: str, scenario: ScenarioDoc, *,
                timeout: float = 60.0) -> Dict[str, object]:
        """Submit + wait + unwrap: the blocking convenience path."""
        handle = self.submit(verb, scenario)
        state = self.wait(str(handle["job_id"]), timeout=timeout)
        if state.get("status") == "error":
            raise ServerError(500, {"error": state.get("error")})
        return state["result"]  # type: ignore[return-value]

    # ------------------------------------------------------------- plumbing
    def health(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        """``GET /metricsz`` — the server's observability snapshot."""
        return self.request("GET", "/metricsz")
