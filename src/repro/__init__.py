"""repro — reproduction of "An Oracle for Guiding Large-Scale Model/Hybrid
Parallel Training of Convolutional Neural Networks" (HPDC 2021).

Public API tour
---------------
Write the planning question down once — a declarative *scenario* — and
ask a session for the answer (every CLI subcommand, the harness, and
the sweep orchestrator consume the same documents):

>>> from repro import Scenario, Session
>>> spec = Scenario.from_dict({
...     "model": {"name": "resnet50"},
...     "cluster": {"pes": 64},
...     "strategy": {"id": "d"},
... })
>>> Session(spec).project().exit_code  # typed, schema-versioned result
0

Or drive the oracle facade directly (the legacy construction path —
it records the equivalent scenario on ``oracle.scenario``):

>>> from repro import models, ParaDL, profile_model, abci_like_cluster
>>> from repro.data import IMAGENET
>>> model = models.resnet50()
>>> cluster = abci_like_cluster(64)
>>> oracle = ParaDL(model, cluster, profile_model(model, samples_per_pe=32))
>>> proj = oracle.project_id("d", p=64, batch=32 * 64, dataset=IMAGENET)
>>> proj.per_iteration.total  # seconds per training iteration  # doctest: +SKIP

Instead of projecting one hand-picked configuration, let the search
subsystem sweep the whole space (strategies x hybrid factorizations x PE
budgets x batches x micro-batches x comm policies) with pruning, a
persistent projection cache, and multi-objective ranking:

>>> report = oracle.search(64, IMAGENET, cache="plan.json")  # doctest: +SKIP
>>> report.best.describe(), [e.describe() for e in report.frontier]  # doctest: +SKIP

Or plan a whole model zoo at once — one process-pool search per model,
per-model projection caches in a shared directory, consolidated
frontier reports:

>>> report = ParaDL.sweep(["resnet50", "vgg16"], IMAGENET, pes=64,
...                       cache_dir="plan-cache", report_dir="reports")  # doctest: +SKIP

Packages
--------
``repro.api``
    The declarative scenario layer: validated, serializable
    ``ScenarioSpec`` documents (YAML/JSON), the lazily-caching
    ``Session`` facade, and the schema-versioned result objects every
    ``--json`` payload is generated from.
``repro.core``
    Tensor/layer IR, Table-3 analytical model, the ParaDL oracle,
    calibration, limitation detection.
``repro.search``
    Automated strategy search: declarative candidate spaces, feasibility
    pruning, cached thread-/process-pool evaluation, Pareto frontiers,
    and the multi-model sweep orchestrator (``python -m repro search`` /
    ``python -m repro sweep`` on the command line).
``repro.models``
    ResNet-50/152, VGG16, CosmoFlow, AlexNet, toy test CNNs.
``repro.network``
    Fat-tree cluster topology, Hockney parameters, congestion.
``repro.collectives``
    Analytic collective costs behind a pluggable algorithm registry and
    the policy-driven ``CommModel`` selector (paper / auto / nccl-like).
``repro.simulator``
    Discrete-event "measured" runs: roofline GPU, link-level collectives,
    framework overheads.
``repro.tensorparallel``
    NumPy execution substrate: real data/spatial/filter/channel/pipeline
    decompositions with value-by-value validation.
``repro.harness``
    Experiment registry regenerating every table/figure of the paper.
"""

from . import collectives, core, data, models, network, search
from . import api
from .api import Scenario, ScenarioSpec, ScenarioValidationError, Session
from .core import (
    AnalyticalModel,
    ComputeProfile,
    ModelGraph,
    ParaDL,
    PhaseBreakdown,
    Projection,
    TensorSpec,
    accuracy,
    detect_findings,
    profile_model,
    strategy_from_id,
)
from .network import ClusterSpec, abci_like_cluster

__version__ = "1.0.0"

__all__ = [
    "api",
    "core",
    "models",
    "network",
    "collectives",
    "data",
    "search",
    "Scenario",
    "ScenarioSpec",
    "ScenarioValidationError",
    "Session",
    "AnalyticalModel",
    "ComputeProfile",
    "ModelGraph",
    "ParaDL",
    "PhaseBreakdown",
    "Projection",
    "TensorSpec",
    "accuracy",
    "detect_findings",
    "profile_model",
    "strategy_from_id",
    "ClusterSpec",
    "abci_like_cluster",
    "__version__",
]
