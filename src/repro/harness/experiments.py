"""Experiment runners: regenerate every table and figure of the paper.

Each ``run_*`` function returns structured rows (dataclasses / dicts) and is
wrapped by a benchmark in ``benchmarks/`` that prints the paper-shaped
output.  ``quick=True`` (the default used by tests) trims the sweep sizes;
``quick=False`` runs the full grids of the paper (up to 1024 simulated
GPUs).

Experiment-to-paper map (see DESIGN.md for the full index):

* Figure 3  — oracle vs measured time breakdown per model x strategy x p
* Figure 4  — CosmoFlow Data+Spatial projection accuracy
* Figure 5  — CosmoFlow Data+Spatial scaling vs pure spatial
* Figure 6  — congestion scatter for the GE-Allreduce / FB-Allgather
* Figure 7  — computation-per-epoch breakdown; weight-update share
* Figure 8  — filter-parallel compute scaling and split/concat overhead
* Table 3   — closed-form vs primitive-composed costs (consistency)
* Table 5   — models and datasets inventory
* Table 6   — limitation/bottleneck detection matrix
* Section 5.2 — the headline accuracy summary (86.74% average in the paper)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import npcompat

np = npcompat.np  # soft: only fig6 (simulator-backed) truly needs it

from ..core.analytical import AnalyticalModel, PhaseBreakdown, Projection
from ..core.calibration import profile_model
from ..core.limits import detect_findings
from ..core.oracle import ParaDL, accuracy
from ..core.strategies import (
    DataParallel,
    DataSpatialParallel,
    FilterParallel,
    SpatialParallel,
    Strategy,
    StrategyError,
    strategy_from_id,
)
from ..data.datasets import COSMOFLOW_512, DATASETS, IMAGENET, DatasetSpec
from ..models import build_model, cosmoflow
from ..core.tensors import TensorSpec
from ..network.congestion import CongestionModel
from ..network.topology import ClusterSpec, abci_like_cluster
from ..simulator.compute import GpuComputeModel, V100
from ..simulator.training import MeasuredRun, SimulationOptions, TrainingSimulator

__all__ = [
    "Fig3Cell",
    "FIG3_CONFIG",
    "make_environment",
    "run_scenario",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_table3",
    "run_table5",
    "run_table6",
    "run_accuracy_summary",
    "run_search_best",
    "run_sweep",
]

#: ImageNet CNN models of Figure 3.
FIG3_MODELS = ("resnet50", "resnet152", "vgg16")

#: Per-(strategy) sweep configuration.  ``b`` = samples/GPU (weak scaling);
#: ``B`` = fixed global batch (strong scaling, as the Figure 3 caption
#: notes for filter/channel).  The paper tunes b per model/strategy for
#: device occupancy; we tune it for 16 GB feasibility the same way.
FIG3_CONFIG: Dict[str, Dict] = {
    "d": dict(ps=(16, 64, 256, 1024), b=32),
    "f": dict(ps=(4, 16, 64), B=32),
    "c": dict(ps=(4, 16, 64), B=32),
    "p": dict(ps=(2, 4), B=64, segments=8),
    "df": dict(ps=(16, 64, 256, 1024), b=8),
    "ds": dict(ps=(16, 64, 256, 1024), b=32),
}

#: Per-model overrides of the per-GPU batch, mirroring the paper's
#: occupancy/memory tuning ("we conducted a series of test runs ... to
#: identify the optimal number of samples per GPU").  ResNet-152's
#: activations are ~2x ResNet-50's, so it runs at half the batch.
FIG3_MODEL_OVERRIDES: Dict[str, Dict[str, Dict]] = {
    "resnet152": {
        "d": dict(b=16),
        "f": dict(B=16),
        "c": dict(B=16),
        "p": dict(B=32, segments=8),
        "df": dict(b=4),
        "ds": dict(b=16),
    },
}

#: Reduced grids for quick (CI) runs.
FIG3_QUICK_PS: Dict[str, Tuple[int, ...]] = {
    "d": (16, 64),
    "f": (4, 16),
    "c": (4, 16),
    "p": (2, 4),
    "df": (16, 64),
    "ds": (16, 64),
}


def run_scenario(scenario, *, on_result=None):
    """Execute one declarative scenario end-to-end.

    ``scenario`` may be a :class:`~repro.api.spec.ScenarioSpec`, a plain
    mapping, or a YAML/JSON file path.  The scenario's optional
    sections select the workload — a ``sweep`` section runs the zoo
    sweep, a ``search`` section the automated search, and otherwise the
    (defaulted) ``strategy`` section is projected — and the matching
    typed result object (:mod:`repro.api.results`) is returned, exactly
    as the CLI's ``--scenario`` path produces it.

    ``on_result(evaluation)`` streams individual evaluations for
    search/sweep workloads (ignored for plain projections) — one
    argument for both, so a callback keeps working when a document
    gains a sweep section; use :meth:`Session.sweep` directly if you
    need the per-model callback signature.
    """
    from ..api.session import Session

    session = Session(scenario)
    spec = session.scenario
    if spec.sweep is not None:
        adapted = (
            (lambda model, evaluation: on_result(evaluation))
            if on_result is not None else None
        )
        return session.sweep(on_result=adapted)
    if spec.search is not None:
        return session.search(on_result=on_result)
    return session.project()


def make_environment(
    num_gpus: int,
    model_name: str = "resnet50",
    samples_per_pe: int = 32,
    optimizer: str = "sgd",
    iterations: int = 50,
    congestion: Optional[CongestionModel] = None,
    input_spec: Optional[TensorSpec] = None,
) -> Tuple[ParaDL, TrainingSimulator, ClusterSpec]:
    """Build a matched (oracle, simulator, cluster) triple.

    Both sides consume the *same* compute profile, mirroring the paper's
    methodology (profiled layer times feed ParaDL; the measured runs use
    the same hardware).
    """
    model = build_model(model_name, input_spec)
    cluster = abci_like_cluster(num_gpus)
    profile = profile_model(model, samples_per_pe, optimizer=optimizer)
    oracle = ParaDL(model, cluster, profile)
    sim = TrainingSimulator(
        model,
        cluster,
        options=SimulationOptions(
            iterations=iterations, optimizer=optimizer, congestion=congestion
        ),
    )
    return oracle, sim, cluster


# --------------------------------------------------------------------------
# Figure 3
# --------------------------------------------------------------------------

@dataclass
class Fig3Cell:
    """One (model, strategy, p) cell of Figure 3."""

    model: str
    sid: str
    p: int
    batch: int
    oracle: PhaseBreakdown          # per-iteration
    measured: PhaseBreakdown        # per-iteration
    accuracy: float
    memory_GB: float
    oom: bool

    @property
    def label(self) -> str:
        return f"{self.model}/{self.sid}/p{self.p}"


def _fig3_batch(sid: str, p: int, cfg: Dict) -> int:
    if "b" in cfg:
        return cfg["b"] * p
    return cfg["B"]


def _profile_batch(sid: str, batch: int, p: int, segments: int = 4,
                   intra: int = 4) -> int:
    """Per-PE batch at which the layer profile is taken.

    The paper profiles at the operating point of each strategy: data-style
    strategies process ``B/p`` samples per PE, pipelines run micro-batches
    of ``B/S``, filter/channel/spatial keep the full batch on every PE, and
    Data+Spatial groups process ``B/p1`` samples.
    """
    if sid in ("d", "df"):
        return max(1, batch // p)
    if sid == "p":
        return max(1, batch // segments)
    if sid == "ds":
        return max(1, batch // max(1, p // intra))
    # f, c, s, serial: full batch per PE.
    return batch


def run_fig3(
    models: Sequence[str] = FIG3_MODELS,
    strategies: Sequence[str] = ("d", "f", "c", "p", "df", "ds"),
    quick: bool = True,
    dataset: DatasetSpec = IMAGENET,
    iterations: int = 30,
) -> List[Fig3Cell]:
    """Oracle vs simulated-measured breakdown for every cell of Figure 3."""
    cells: List[Fig3Cell] = []
    for model_name in models:
        for sid in strategies:
            cfg = dict(FIG3_CONFIG[sid])
            cfg.update(FIG3_MODEL_OVERRIDES.get(model_name, {}).get(sid, {}))
            if "b" in FIG3_MODEL_OVERRIDES.get(model_name, {}).get(sid, {}):
                cfg.pop("B", None)
            ps = FIG3_QUICK_PS[sid] if quick else cfg["ps"]
            for p in ps:
                batch = _fig3_batch(sid, p, cfg)
                spp = _profile_batch(
                    sid, batch, p, segments=cfg.get("segments", 4)
                )
                oracle, sim, cluster = make_environment(
                    max(p, 4), model_name,
                    samples_per_pe=spp, iterations=iterations,
                )
                try:
                    strategy = strategy_from_id(
                        sid, p, oracle.model, batch,
                        segments=cfg.get("segments", 4),
                        intra=cluster.node.gpus,
                    )
                    strategy.check(oracle.model, batch)
                except StrategyError:
                    continue
                proj = oracle.project(strategy, batch, dataset)
                run = sim.run(strategy, batch, dataset.num_samples)
                acc = accuracy(proj.per_iteration.total, run.mean_iteration)
                cells.append(Fig3Cell(
                    model=model_name,
                    sid=sid,
                    p=p,
                    batch=batch,
                    oracle=proj.per_iteration,
                    measured=run.breakdown,
                    accuracy=acc,
                    memory_GB=run.memory_bytes / 1e9,
                    oom=run.oom,
                ))
    return cells


# --------------------------------------------------------------------------
# Figure 4 / Figure 5 — CosmoFlow
# --------------------------------------------------------------------------

def _cosmoflow_setup(p: int, p1: int, iterations: int):
    """CosmoFlow at 512^3 (where only spatial strategies fit in memory)."""
    spec = COSMOFLOW_512.sample
    model = cosmoflow(spec)
    cluster = abci_like_cluster(max(p, 4))
    # The paper could not profile 512^3 serially; it profiled 256^3 and
    # multiplied by 8.  We reproduce that procedure.
    small = cosmoflow(TensorSpec(spec.channels, tuple(s // 2 for s in spec.spatial)))
    prof_small = profile_model(small, samples_per_pe=1)
    profile = profile_model(model, samples_per_pe=1)  # ground truth
    extrapolated = _extrapolate_profile(prof_small, profile)
    oracle = ParaDL(model, cluster, extrapolated)
    sim = TrainingSimulator(
        model, cluster, options=SimulationOptions(iterations=iterations)
    )
    return model, cluster, oracle, sim


def _extrapolate_profile(small_profile, full_profile):
    """The paper's x8 extrapolation: scale the 256^3 per-layer times by the
    volume ratio; layers absent at the small size keep the full-profile
    values (FC head extents differ)."""
    from ..core.profiles import ComputeProfile, LayerTimes

    times = {}
    for name, full_t in full_profile.items():
        if name in small_profile:
            st = small_profile.layer(name)
            times[name] = LayerTimes(
                forward=st.forward * 8,
                backward=st.backward * 8,
                weight_update=full_t.weight_update,
            )
        else:
            times[name] = full_t
    return ComputeProfile(full_profile.model_name, times)


@dataclass
class Fig4Row:
    p: int
    p1: int
    oracle_iter: float
    measured_iter: float
    accuracy: float


def run_fig4(
    ps: Sequence[int] = (16, 64),
    iterations: int = 20,
) -> List[Fig4Row]:
    """ParaDL accuracy for CosmoFlow under Data+Spatial (Figure 4)."""
    rows: List[Fig4Row] = []
    for p in ps:
        p2 = 4
        p1 = p // p2
        model, cluster, oracle, sim = _cosmoflow_setup(p, p1, iterations)
        strategy = DataSpatialParallel(groups=p1, grid=(2, 2, 1))
        batch = p1  # one sample per spatial group (0.25 samples/GPU)
        proj = oracle.project(strategy, batch, COSMOFLOW_512)
        run = sim.run(strategy, batch, COSMOFLOW_512.num_samples)
        rows.append(Fig4Row(
            p=p,
            p1=p1,
            oracle_iter=proj.per_iteration.total,
            measured_iter=run.mean_iteration,
            accuracy=accuracy(proj.per_iteration.total, run.mean_iteration),
        ))
    return rows


@dataclass
class Fig5Row:
    strategy: str
    p: int
    epoch_time: float
    speedup_vs_spatial: float
    memory_GB: float
    feasible: bool


def run_fig5(
    ps: Sequence[int] = (4, 16, 64),
    iterations: int = 10,
) -> List[Fig5Row]:
    """CosmoFlow scaling: pure spatial vs Data+Spatial (Figure 5).

    Also demonstrates *why* the hybrid is needed: data parallelism and
    pipeline are memory-infeasible at 512^3 (Section 5.3.2), while
    spatial+data keeps scaling by growing the data-parallel pool.
    """
    model, cluster, oracle, sim = _cosmoflow_setup(max(ps), max(ps) // 4,
                                                   iterations)
    rows: List[Fig5Row] = []
    # Pure spatial baseline at p = 4 (one node).
    base = SpatialParallel(grid=(2, 2, 1))
    base_run = sim.run(base, 1, COSMOFLOW_512.num_samples)
    base_epoch = base_run.epoch_time
    rows.append(Fig5Row(
        strategy="s", p=4, epoch_time=base_epoch, speedup_vs_spatial=1.0,
        memory_GB=base_run.memory_bytes / 1e9, feasible=not base_run.oom,
    ))
    for p in ps:
        if p <= 4:
            continue
        p1 = p // 4
        strat = DataSpatialParallel(groups=p1, grid=(2, 2, 1))
        run = sim.run(strat, p1, COSMOFLOW_512.num_samples)
        rows.append(Fig5Row(
            strategy="ds", p=p, epoch_time=run.epoch_time,
            speedup_vs_spatial=base_epoch / run.epoch_time,
            memory_GB=run.memory_bytes / 1e9, feasible=not run.oom,
        ))
    # Infeasible alternatives, for the record.
    proj_d = oracle.analytical.project(DataParallel(4), 4,
                                       COSMOFLOW_512.num_samples)
    rows.append(Fig5Row(
        strategy="d", p=4, epoch_time=float("nan"), speedup_vs_spatial=0.0,
        memory_GB=proj_d.memory_bytes / 1e9,
        feasible=proj_d.feasible_memory,
    ))
    return rows


# --------------------------------------------------------------------------
# Figure 6 — congestion scatter
# --------------------------------------------------------------------------

@dataclass
class Fig6Series:
    label: str
    expected: float               # analytic (congestion-free) time
    samples: np.ndarray           # per-iteration measured times
    outlier_fraction: float
    max_slowdown: float


def run_fig6(
    iterations: int = 200,
    seed: int = 7,
) -> List[Fig6Series]:
    """Per-iteration collective times under external congestion (Figure 6).

    Two series, as in the paper: the GE-Allreduce of ResNet-50 data
    parallelism on 512 GPUs, and the FB-Allgather of VGG16 filter
    parallelism on 64 GPUs.
    """
    out: List[Fig6Series] = []
    congestion = CongestionModel(outlier_rate=0.10, max_slowdown=4.0, seed=seed)
    for model_name, sid, p, batch in (
        ("resnet50", "d", 512, 32 * 512),
        ("vgg16", "f", 64, 32),
    ):
        oracle, sim, cluster = make_environment(
            p, model_name, samples_per_pe=max(1, batch // p),
            iterations=iterations, congestion=congestion,
        )
        strategy = strategy_from_id(sid, p, oracle.model, batch,
                                    intra=cluster.node.gpus)
        proj = oracle.project(strategy, batch, IMAGENET)
        run = sim.run(strategy, batch, IMAGENET.num_samples)
        key = "comm_ge" if sid == "d" else "comm_fb"
        samples = run.comm_samples[key]
        expected = getattr(proj.per_iteration, key)
        ratio = samples / max(expected, 1e-30)
        out.append(Fig6Series(
            label=f"{model_name}/{sid}/p{p}",
            expected=expected,
            samples=samples,
            outlier_fraction=float(np.mean(ratio > 1.5)),
            max_slowdown=float(ratio.max()),
        ))
    return out


# --------------------------------------------------------------------------
# Figure 7 — computation breakdown / weight-update share
# --------------------------------------------------------------------------

@dataclass
class Fig7Row:
    model: str
    optimizer: str
    fw_s: float
    bw_s: float
    wu_s: float
    wu_share: float


def run_fig7(
    models: Sequence[str] = FIG3_MODELS,
    optimizers: Sequence[str] = ("sgd", "adam"),
    batch: int = 32,
) -> List[Fig7Row]:
    """Per-epoch computation split (Figure 7): WU grows with model size and
    optimizer state (the paper measured up to 15% for VGG16; Transformer
    models with Adam reach 45%)."""
    rows: List[Fig7Row] = []
    for model_name in models:
        model = build_model(model_name)
        for opt in optimizers:
            profile = profile_model(model, batch, optimizer=opt)
            iters = IMAGENET.num_samples // batch
            fw = IMAGENET.num_samples * profile.total_fw()
            bw = IMAGENET.num_samples * profile.total_bw()
            wu = iters * profile.total_wu()
            rows.append(Fig7Row(
                model=model_name, optimizer=opt,
                fw_s=fw, bw_s=bw, wu_s=wu,
                wu_share=wu / (fw + bw + wu),
            ))
    return rows


# --------------------------------------------------------------------------
# Figure 8 — filter-parallel compute scaling
# --------------------------------------------------------------------------

@dataclass
class Fig8Row:
    p: int
    ideal_conv_s: float       # profile / p (what the oracle assumes)
    simulated_conv_s: float   # partitioned roofline (loses efficiency)
    split_concat_s: float
    scaling_efficiency: float


def run_fig8(
    model_name: str = "resnet50",
    ps: Sequence[int] = (1, 4, 16, 64),
    batch: int = 32,
) -> List[Fig8Row]:
    """Filter-parallel convolution scaling (Figure 8): the conv kernels do
    not scale by 1/p (occupancy loss) and split/concat is non-trivial."""
    model = build_model(model_name)
    gpu = GpuComputeModel(V100)
    rows: List[Fig8Row] = []
    base = sum(
        gpu.forward_time(l, batch) + gpu.backward_time(l, batch)
        for l in model if l.has_weights
    )
    for p in ps:
        simulated = 0.0
        split = 0.0
        for l in model:
            if not l.has_weights:
                continue
            if l.out_channels >= p and l.out_channels % p == 0 and p > 1:
                simulated += gpu.partitioned_forward_time(l, batch, out_div=p)
                simulated += gpu.partitioned_backward_time(l, batch, out_div=p)
                split += gpu.split_concat_time(l, batch)
            else:
                simulated += gpu.forward_time(l, batch)
                simulated += gpu.backward_time(l, batch)
        ideal = base / p
        rows.append(Fig8Row(
            p=p,
            ideal_conv_s=ideal,
            simulated_conv_s=simulated,
            split_concat_s=split,
            scaling_efficiency=ideal / (simulated + split) if p > 1 else 1.0,
        ))
    return rows


# --------------------------------------------------------------------------
# Table 3 — formula consistency
# --------------------------------------------------------------------------

def run_table3(
    model_name: str = "resnet50",
    p: int = 16,
    batch: int = 512,
) -> List[Dict]:
    """Render a Table-3-like summary: per-strategy comp/comm/mem and the PE
    ceiling, all from the analytical model."""
    model = build_model(model_name)
    cluster = abci_like_cluster(max(p, 4))
    profile = profile_model(model, samples_per_pe=max(1, batch // p))
    analytical = AnalyticalModel(model, cluster, profile)
    rows: List[Dict] = []
    limits = {
        "serial": 1,
        "d": batch,
        "s": model.min_spatial(),
        "p": len(model.layers),
        "f": model.min_filters(),
        "c": model.min_channels(),
        "df": batch * model.min_filters(),
        "ds": batch * model.min_spatial(),
    }
    for sid in ("serial", "d", "s", "p", "f", "c", "df", "ds"):
        try:
            strategy = strategy_from_id(
                sid, 1 if sid == "serial" else p, model, batch,
                intra=cluster.node.gpus,
            )
            proj = analytical.project(strategy, batch, IMAGENET.num_samples)
        except StrategyError as exc:
            rows.append(dict(strategy=sid, error=str(exc)))
            continue
        it = proj.per_iteration
        rows.append(dict(
            strategy=sid,
            p=strategy.p,
            comp_s=it.computation,
            comm_s=it.communication,
            memory_GB=proj.memory_bytes / 1e9,
            pe_limit=limits[sid],
        ))
    return rows


# --------------------------------------------------------------------------
# Table 5 — models and datasets
# --------------------------------------------------------------------------

def run_table5() -> List[Dict]:
    """Model/dataset inventory (Table 5), computed from our builders."""
    entries = (
        ("resnet50", IMAGENET),
        ("resnet152", IMAGENET),
        ("vgg16", IMAGENET),
        ("cosmoflow", DATASETS["cosmoflow256"]),
    )
    rows: List[Dict] = []
    for name, ds in entries:
        model = build_model(
            name, ds.sample if name == "cosmoflow" else None
        )
        rows.append(dict(
            model=name,
            dataset=ds.name,
            num_samples=ds.num_samples,
            sample_shape=str(ds.sample),
            parameters_M=model.parameters / 1e6,
            weighted_layers=len(model.weighted_layers),
            total_layers=len(model.layers),
        ))
    return rows


# --------------------------------------------------------------------------
# Table 6 — limitation/bottleneck matrix
# --------------------------------------------------------------------------

def run_table6(quick: bool = True) -> Dict[str, List]:
    """Detect limitations/bottlenecks per strategy (Table 6).

    Returns {strategy id: [Finding, ...]} for representative configs.
    """
    configs = [
        ("d", "vgg16", 256, 32 * 256),       # GE-bound at scale
        ("s", "resnet50", 16, 16),           # halo P2P
        ("p", "vgg16", 4, 64),               # workload balance
        ("f", "resnet50", 16, 32),           # layer-wise comm
        ("c", "resnet50", 16, 32),
        ("df", "vgg16", 64, 8 * 64),
        ("ds", "cosmoflow", 16, 4),
    ]
    if quick:
        configs = configs[:5] + configs[6:]
    out: Dict[str, List] = {}
    for sid, model_name, p, batch in configs:
        input_spec = COSMOFLOW_512.sample if model_name == "cosmoflow" else None
        model = build_model(model_name, input_spec)
        cluster = abci_like_cluster(max(p, 4))
        profile = profile_model(model, samples_per_pe=max(1, batch // p))
        analytical = AnalyticalModel(model, cluster, profile)
        strategy = strategy_from_id(sid, p, model, batch,
                                    intra=cluster.node.gpus)
        dataset_size = (
            COSMOFLOW_512.num_samples if model_name == "cosmoflow"
            else IMAGENET.num_samples
        )
        proj = analytical.project(strategy, batch, dataset_size)
        out[sid] = detect_findings(model, proj, profile=profile)
    return out


# --------------------------------------------------------------------------
# Section 5.2 — accuracy summary
# --------------------------------------------------------------------------

@dataclass
class AccuracySummary:
    per_strategy: Dict[str, float]
    per_model: Dict[str, float]
    overall: float
    best: Tuple[str, float]


def run_accuracy_summary(
    quick: bool = True,
    iterations: int = 30,
) -> AccuracySummary:
    """The paper's headline metric: mean oracle accuracy per strategy and
    overall (86.74% average, up to 97.57% for data parallelism there)."""
    cells = run_fig3(quick=quick, iterations=iterations)
    by_sid: Dict[str, List[float]] = {}
    by_model: Dict[str, List[float]] = {}
    for c in cells:
        by_sid.setdefault(c.sid, []).append(c.accuracy)
        by_model.setdefault(c.model, []).append(c.accuracy)
    def _mean(vals):
        return sum(vals) / len(vals)

    per_strategy = {k: float(_mean(v)) for k, v in by_sid.items()}
    per_model = {k: float(_mean(v)) for k, v in by_model.items()}
    overall = float(_mean([c.accuracy for c in cells]))
    best_cell = max(cells, key=lambda c: c.accuracy)
    return AccuracySummary(
        per_strategy=per_strategy,
        per_model=per_model,
        overall=overall,
        best=(best_cell.label, best_cell.accuracy),
    )


# --------------------------------------------------------------------------
# Search oracle — best-strategy claims via automated search
# --------------------------------------------------------------------------

@dataclass
class SearchBestRow:
    """Suggest-vs-search comparison for one (model, p) planning problem."""

    model: str
    p: int
    suggest_best: str
    suggest_epoch_s: float
    search_best: str
    search_epoch_s: float
    frontier_size: int
    candidates: int
    pruned: int

    @property
    def improvement(self) -> float:
        """Relative epoch-time gain of search over plain suggest."""
        return 1.0 - self.search_epoch_s / self.suggest_epoch_s


def run_search_best(
    quick: bool = True,
    samples_per_pe: int = 32,
    workers: Optional[int] = None,
) -> List[SearchBestRow]:
    """Reproduce the paper's best-strategy claims through the automated
    search subsystem instead of enumeration by hand.

    For every (model, PE budget) planning problem, compare the best
    feasible :meth:`ParaDL.suggest` entry (the paper's fixed eight-entry
    ranking) against the scalarized best of :meth:`ParaDL.search` over
    the opened-up configuration space — every hybrid factorization and
    micro-batch count.  Search must match or beat suggest on every row
    (its candidate set is a superset); rows where it strictly wins are
    configurations the paper's fixed ranking misses.
    """
    cases = [("resnet50", 64), ("vgg16", 64)]
    if not quick:
        cases += [("resnet50", 256), ("vgg16", 256), ("alexnet", 64)]
    rows: List[SearchBestRow] = []
    for model_name, p in cases:
        model = build_model(model_name, None)
        cluster = abci_like_cluster(max(p, 4))
        profile = profile_model(model, samples_per_pe=samples_per_pe)
        oracle = ParaDL(model, cluster, profile)
        dataset = IMAGENET
        feasible = [
            s for s in oracle.suggest(p, dataset,
                                      samples_per_pe=samples_per_pe)
            if s.feasible
        ]
        if not feasible:
            continue
        sug = min(feasible, key=lambda s: s.epoch_time)
        report = oracle.search(p, dataset, samples_per_pe=samples_per_pe,
                               workers=workers)
        if report.best is None:
            continue
        rows.append(SearchBestRow(
            model=model_name,
            p=p,
            suggest_best=sug.strategy.describe(),
            suggest_epoch_s=sug.epoch_time,
            search_best=report.best.describe(),
            search_epoch_s=report.best.epoch_time,
            frontier_size=len(report.frontier),
            candidates=report.stats["candidates"],
            pruned=report.stats["pruned"],
        ))
    return rows


# --------------------------------------------------------------------------
# Multi-model sweep — the zoo-at-once planning workflow
# --------------------------------------------------------------------------

def run_sweep(
    models: Sequence[str] = ("resnet50", "vgg16"),
    quick: bool = True,
    pes: int = 64,
    samples_per_pe: int = 32,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    report_dir: Optional[str] = None,
):
    """Run a consolidated multi-model sweep over the zoo.

    ``quick=True`` (the CI default) trims the space to the weak-scaling
    strategies at a single micro-batch count and keeps the GIL-bound
    thread backend; the full run opens the whole space, adds ResNet-152
    (if absent), and fans out over the process pool.  An explicit
    ``executor`` overrides either default.  ``cache_dir``
    persists per-model projection caches so a re-run projects nothing;
    ``report_dir`` receives per-model frontier CSVs + the cross-model
    summary.  Returns a :class:`~repro.search.sweep.SweepReport`.
    """
    from ..search.sweep import SweepRunner

    if not quick and "resnet152" not in models:
        models = tuple(models) + ("resnet152",)
    if executor is None:
        executor = "thread" if quick else "process"
    runner = SweepRunner(
        models,
        IMAGENET,
        pes=pes,
        samples_per_pe=samples_per_pe,
        strategies=("d", "z", "df") if quick else None,
        segments=(4,) if quick else (2, 4, 8),
        executor=executor,
        workers=workers,
        cache_dir=cache_dir,
    )
    report = runner.run()
    if report_dir is not None:
        report.write_report(report_dir)
    return report
