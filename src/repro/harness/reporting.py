"""Plain-text table/series formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..core.analytical import PhaseBreakdown

__all__ = ["format_table", "format_breakdown", "pct", "fmt_time"]


def pct(x: float) -> str:
    """Format a ratio as a percentage with two decimals (paper style)."""
    return f"{100.0 * x:.2f}%"


def fmt_time(seconds: float) -> str:
    """Human-scaled time formatting."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width ASCII table."""
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_breakdown(b: PhaseBreakdown, per: str = "iteration") -> str:
    """One-line phase breakdown (comp fw/bw/wu + comm by pattern)."""
    parts = [
        f"fw={fmt_time(b.comp_fw)}",
        f"bw={fmt_time(b.comp_bw)}",
        f"wu={fmt_time(b.comp_wu)}",
    ]
    for key, label in (
        ("comm_ge", "ge"),
        ("comm_fb", "fb"),
        ("comm_halo", "halo"),
        ("comm_p2p", "p2p"),
    ):
        v = getattr(b, key)
        if v > 0:
            parts.append(f"{label}={fmt_time(v)}")
    return f"[{per}] " + " ".join(parts) + f" total={fmt_time(b.total)}"
