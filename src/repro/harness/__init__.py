"""Experiment harness: one runner per paper table/figure (see DESIGN.md)."""

from .reporting import format_table, format_breakdown, pct
from .experiments import (
    Fig3Cell,
    FIG3_CONFIG,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table3,
    run_table5,
    run_table6,
    run_accuracy_summary,
    run_search_best,
    run_sweep,
    SearchBestRow,
    make_environment,
)

__all__ = [
    "format_table",
    "format_breakdown",
    "pct",
    "Fig3Cell",
    "FIG3_CONFIG",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_table3",
    "run_table5",
    "run_table6",
    "run_accuracy_summary",
    "run_search_best",
    "run_sweep",
    "SearchBestRow",
    "make_environment",
]
