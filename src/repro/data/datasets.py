"""Dataset descriptors (Table 5) and synthetic batch generation.

The oracle and simulator consume only sample *shapes* and *counts*; the
NumPy execution substrate needs actual tensor values, for which random data
is statistically adequate (the paper's correctness validation compares
parallel vs sequential outputs on the same inputs — any inputs).

Substitution note (see DESIGN.md): the paper trains on ImageNet (1.28M
3 x 226^2 samples) and the NERSC CosmoFlow volumes (1584 4 x 256^3
samples).  We mirror their shapes and cardinalities exactly; pixel values
are synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import npcompat

from ..core.tensors import TensorSpec

__all__ = [
    "DatasetSpec",
    "IMAGENET",
    "COSMOFLOW_256",
    "COSMOFLOW_512",
    "DATASETS",
    "synthetic_batch",
]


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset: per-sample tensor spec, cardinality, label arity."""

    name: str
    sample: TensorSpec
    num_samples: int
    num_classes: int = 1000
    #: Bytes per stored element (uint8 images vs fp32 volumes).
    storage_itemsize: int = 1

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if self.num_classes < 1:
            raise ValueError("num_classes must be >= 1")

    @property
    def sample_bytes(self) -> int:
        return self.sample.elements * self.storage_itemsize

    @property
    def total_bytes(self) -> int:
        return self.sample_bytes * self.num_samples

    def iterations_per_epoch(self, batch: int) -> int:
        """``I = D / B``."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return max(1, self.num_samples // batch)


#: ImageNet-1k as used in the paper (Table 5 quotes 3 x 226^2; the standard
#: crop is 224^2 and we keep the standard so model FLOP counts match the
#: literature).
IMAGENET = DatasetSpec(
    name="imagenet",
    sample=TensorSpec(3, (224, 224)),
    num_samples=1_281_167,
    num_classes=1000,
    storage_itemsize=1,
)

#: CosmoFlow volumes at 256^3 (the paper's Table 5: 1584 samples, 4 channels).
COSMOFLOW_256 = DatasetSpec(
    name="cosmoflow256",
    sample=TensorSpec(4, (256, 256, 256)),
    num_samples=1584,
    num_classes=4,
    storage_itemsize=4,
)

#: CosmoFlow at 512^3 (the spatial experiments; first-layer activations
#: exceed 10 GB -- Section 5.3.2).
COSMOFLOW_512 = DatasetSpec(
    name="cosmoflow512",
    sample=TensorSpec(4, (512, 512, 512)),
    num_samples=1584,
    num_classes=4,
    storage_itemsize=4,
)

DATASETS: Dict[str, DatasetSpec] = {
    d.name: d for d in (IMAGENET, COSMOFLOW_256, COSMOFLOW_512)
}


def synthetic_batch(
    spec: TensorSpec,
    batch: int,
    seed: Optional[int] = None,
    dtype=None,
) -> "np.ndarray":
    """Generate a random batch ``[batch, channels, *spatial]``.

    Values are drawn from N(0, 1); deterministic given ``seed``.
    ``dtype`` defaults to ``numpy.float32``.  Requires numpy (a soft
    dependency elsewhere — dataset *specs* work without it).
    """
    np = npcompat.np
    if np is None:
        raise RuntimeError("synthetic_batch requires numpy")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if dtype is None:
        dtype = np.float32
    rng = np.random.default_rng(seed)
    shape = (batch, spec.channels) + spec.spatial
    return rng.standard_normal(shape).astype(dtype)
