"""Dataset descriptors and synthetic sample generators."""

from .datasets import (
    DatasetSpec,
    IMAGENET,
    COSMOFLOW_256,
    COSMOFLOW_512,
    synthetic_batch,
    DATASETS,
)

__all__ = [
    "DatasetSpec",
    "IMAGENET",
    "COSMOFLOW_256",
    "COSMOFLOW_512",
    "synthetic_batch",
    "DATASETS",
]
