"""Feasibility pre-filters: reject candidates *before* paying for a
projection.

Each pruner is a cheap pure function ``(candidate, ctx) -> Optional[str]``
returning a human-readable rejection reason, or ``None`` to keep the
candidate.  Pruners must be conservative: they may only reject candidates
the full analytical model would also reject (structural Table-3 limits, or
a memory *lower bound* already above capacity) — never a maybe.  The
engine runs them in order and stops at the first rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..core.caching import cached_property
from typing import Callable, List, Optional, Tuple

from .. import npcompat
from ..core.analytical import DEFAULT_DELTA, DEFAULT_GAMMA
from ..core.graph import ModelGraph
from ..network.topology import ClusterSpec
from .space import Candidate

__all__ = [
    "PruningContext",
    "Pruner",
    "prune_structure",
    "prune_memory_lower_bound",
    "DEFAULT_PRUNERS",
    "apply_pruners",
    "apply_pruners_batch",
]


@dataclass(frozen=True)
class PruningContext:
    """Everything a pruner may consult.

    The Table-3 parallelism limits are cached on first use — pruners run
    once per candidate, and re-walking the layer list each time would cost
    more than the pruning saves.
    """

    model: ModelGraph
    cluster: ClusterSpec
    gamma: float = DEFAULT_GAMMA
    delta: int = DEFAULT_DELTA

    @cached_property
    def min_filters(self) -> int:
        return self.model.min_filters()

    @cached_property
    def min_channels(self) -> int:
        return self.model.min_channels(skip_first=True)

    @cached_property
    def min_spatial(self) -> int:
        return self.model.min_spatial()

    @cached_property
    def num_layers(self) -> int:
        return len(self.model.layers)

    @cached_property
    def weight_elements(self) -> float:
        return float(self.model.weight_elements)

    @cached_property
    def input_elements(self) -> float:
        return float(self.model.input_spec.elements)

    @cached_property
    def activation_io_elements(self) -> float:
        """``sum_l (|x_l| + |y_l|)`` — the per-sample activation traffic
        term of ``AnalyticalModel._memory_terms``."""
        return float(sum(
            l.input.elements + l.output.elements for l in self.model.layers
        ))


Pruner = Callable[[Candidate, PruningContext], Optional[str]]


def prune_structure(cand: Candidate, ctx: PruningContext) -> Optional[str]:
    """Structural Table-3 limits: divisibility, min-shard sizes, PE caps.

    Mirrors :meth:`Strategy.check` without building the strategy (or the
    spatial grid) — rejections here are exact, not heuristic.
    """
    if cand.p < 1 or cand.batch < 1:
        return "p and batch must be >= 1"
    if cand.sid in ("d", "z") and cand.p > cand.batch:
        return f"needs p <= B ({cand.p} > {cand.batch})"
    if cand.sid == "s" and cand.p > ctx.min_spatial:
        return (f"spatial limit p <= min(W*H) = {ctx.min_spatial}, "
                f"got {cand.p}")
    if cand.sid == "p":
        if cand.p > ctx.num_layers:
            return f"pipeline limit p <= G = {ctx.num_layers} layers"
        if cand.segments and cand.segments > cand.batch:
            return f"segments S={cand.segments} > B={cand.batch}"
    if cand.sid == "f" and cand.p > ctx.min_filters:
        return f"filter limit p <= min F_l = {ctx.min_filters}"
    if cand.sid == "c" and cand.p > ctx.min_channels:
        return f"channel limit p <= min C_l = {ctx.min_channels}"
    if cand.sid in ("df", "ds"):
        if cand.p1 * cand.p2 != cand.p:
            return f"p1*p2 = {cand.p1 * cand.p2} != p = {cand.p}"
        if cand.p1 > cand.batch:
            return f"data dimension needs p1 <= B ({cand.p1} > {cand.batch})"
        if cand.sid == "df" and cand.p2 > ctx.min_filters:
            return f"filter dimension limit p2 <= {ctx.min_filters}"
        if cand.sid == "ds" and cand.p2 > ctx.min_spatial:
            return f"spatial dimension limit p2 <= {ctx.min_spatial}"
    return None


def _memory_lower_bound(cand: Candidate, ctx: PruningContext) -> float:
    """A provable *lower* bound (bytes/PE) on the analytical memory model.

    Uses only the weight-state term plus the first layer's input
    activations, with the most favourable sharding each strategy can
    achieve — every term here appears (at least this large) in the
    corresponding ``AnalyticalModel._memory_terms`` sum, so a candidate
    whose bound exceeds capacity is genuinely out of memory.
    """
    weights = ctx.weight_elements
    io = ctx.activation_io_elements
    B = float(cand.batch)
    sid = cand.sid
    # Weight state (weights + gradients), divided by whatever dimension
    # shards weights under this strategy.  Pipeline stages partition the
    # layers, so the largest stage holds at least W/p.
    if sid in ("z", "f", "c", "p"):
        w_term = 2.0 * weights / cand.p
    elif sid == "df":
        w_term = 2.0 * weights / max(cand.p2, 1)
    else:  # d, s, ds replicate weights on every PE
        w_term = 2.0 * weights
    # Activations and their gradients, at the finest decomposition the
    # strategy allows (spatial strategies only split the leading layers,
    # so dividing the whole sum by the grid underestimates — which is the
    # side we must err on).
    if sid in ("d", "z"):
        a_term = 2.0 * (B / cand.p) * io
    elif sid == "s":
        a_term = 2.0 * B * io / cand.p
    elif sid in ("ds", "df"):
        a_term = 2.0 * B * io / (max(cand.p1, 1) * max(cand.p2, 1))
    elif sid == "p":
        # Checkpointed pipelines can shrink activations to one micro-batch
        # of one stage; claim nothing and rely on the weight term.
        a_term = 0.0
    else:  # f, c keep the full batch on every PE
        a_term = 2.0 * B * io
    return ctx.gamma * ctx.delta * (w_term + a_term)


def prune_memory_lower_bound(
    cand: Candidate, ctx: PruningContext
) -> Optional[str]:
    """Reject when even the memory lower bound exceeds GPU capacity."""
    bound = _memory_lower_bound(cand, ctx)
    cap = ctx.cluster.gpu_memory_bytes
    if bound > cap:
        return (f"memory lower bound {bound / 1e9:.1f} GB exceeds "
                f"{cap / 1e9:.0f} GB/PE")
    return None


DEFAULT_PRUNERS: Tuple[Pruner, ...] = (
    prune_structure,
    prune_memory_lower_bound,
)


def apply_pruners(
    cand: Candidate,
    ctx: PruningContext,
    pruners: Optional[List[Pruner]] = None,
) -> Optional[str]:
    """Run ``pruners`` in order; first rejection wins."""
    for pruner in (DEFAULT_PRUNERS if pruners is None else pruners):
        reason = pruner(cand, ctx)
        if reason is not None:
            return reason
    return None


def apply_pruners_batch(
    cands: List[Candidate],
    ctx: PruningContext,
    pruners: Optional[List[Pruner]] = None,
) -> List[Optional[str]]:
    """:func:`apply_pruners` over many candidates at once.

    With numpy and the default pruner stack, boolean masks decide *which*
    candidates are rejected (the comparisons and the memory lower bound
    are mirrored as array expressions); the reason strings themselves are
    then regenerated by the scalar pruners on the flagged minority, so
    text and first-rejection-wins ordering are identical by construction.
    Custom pruner stacks (or no numpy) fall back to the scalar loop.
    """
    if pruners is not None and tuple(pruners) != DEFAULT_PRUNERS:
        return [apply_pruners(c, ctx, pruners) for c in cands]
    np = npcompat.np
    if np is None or len(cands) < 8:
        return [apply_pruners(c, ctx) for c in cands]
    n = len(cands)
    p = np.fromiter((c.p for c in cands), dtype=np.int64, count=n)
    B = np.fromiter((c.batch for c in cands), dtype=np.int64, count=n)
    p1 = np.fromiter((c.p1 for c in cands), dtype=np.int64, count=n)
    p2 = np.fromiter((c.p2 for c in cands), dtype=np.int64, count=n)
    seg = np.fromiter((c.segments for c in cands), dtype=np.int64, count=n)
    sids = [c.sid for c in cands]
    is_ = {
        sid: np.fromiter(
            (s == sid for s in sids), dtype=np.bool_, count=n)
        for sid in ("d", "z", "s", "p", "f", "c", "df", "ds")
    }
    hybrid = is_["df"] | is_["ds"]
    # prune_structure, as masks (same comparisons, same candidates).
    bad = (p < 1) | (B < 1)
    bad |= (is_["d"] | is_["z"]) & (p > B)
    bad |= is_["s"] & (p > ctx.min_spatial)
    bad |= is_["p"] & ((p > ctx.num_layers) | ((seg > 0) & (seg > B)))
    bad |= is_["f"] & (p > ctx.min_filters)
    bad |= is_["c"] & (p > ctx.min_channels)
    bad |= hybrid & (
        (p1 * p2 != p)
        | (p1 > B)
        | (is_["df"] & (p2 > ctx.min_filters))
        | (is_["ds"] & (p2 > ctx.min_spatial))
    )
    # _memory_lower_bound, vectorized (identical expression order per
    # family; structurally-bad candidates may divide by clamped values,
    # but their verdict is already decided above).
    weights = ctx.weight_elements
    io = ctx.activation_io_elements
    Bf = B.astype(np.float64)
    pf = np.maximum(p, 1).astype(np.float64)
    p1f = np.maximum(p1, 1).astype(np.float64)
    p2f = np.maximum(p2, 1).astype(np.float64)
    shard_w = is_["z"] | is_["f"] | is_["c"] | is_["p"]
    w_term = np.where(
        shard_w, 2.0 * weights / pf,
        np.where(is_["df"], 2.0 * weights / p2f, 2.0 * weights),
    )
    a_term = np.where(
        is_["d"] | is_["z"], 2.0 * (Bf / pf) * io,
        np.where(
            is_["s"], 2.0 * Bf * io / pf,
            np.where(
                hybrid, 2.0 * Bf * io / (p1f * p2f),
                np.where(is_["p"], 0.0, 2.0 * Bf * io),
            ),
        ),
    )
    bound = ctx.gamma * ctx.delta * (w_term + a_term)
    bad |= bound > ctx.cluster.gpu_memory_bytes
    flagged = bad.tolist()
    return [
        apply_pruners(c, ctx) if hit else None
        for c, hit in zip(cands, flagged)
    ]
