"""Keyed, thread-safe projection memo with on-disk JSON persistence.

Repeated planning sessions evaluate largely the same (model, cluster,
candidate) grid; projections are deterministic, so they memoize perfectly.

File format (version 2)
-----------------------
A single JSON object::

    {
      "version": 2,
      "context": {"model": ..., "layers": ..., "parameters": ...,
                  "cluster": ..., "profile_fw_s": ..., "profile_bw_s": ...,
                  "profile_wu_s": ..., "gamma": ..., "delta": ...,
                  "comm": "<CommModel fingerprint>"},
      "entries": {
        "<candidate key>@D=<dataset size>": {
          "projection": {
            "model_name": str, "batch": int, "dataset_size": int,
            "per_epoch": {"comp_fw": float, ..., "comm_p2p": float},
            "memory_bytes": float, "memory_capacity": float,
            "gamma": float, "delta": int, "notes": [str, ...],
            "comm_policy": str,
            "comm_algorithms": [[phase, "collective:algo"], ...]
          }
        }, ...
      }
    }

Version 2 added the communication-policy dimension: the context carries
the oracle's :meth:`CommModel.fingerprint`, candidate keys carry their
per-candidate policy, and projections persist which algorithm each phase
chose.  Version-1 files are discarded wholesale on load (the standing
invalidation rule below).

Candidates whose projection *raised* (structurally infeasible for this
model) memoize negatively as ``{"error": "<reason>"}`` so a warm cache
never re-projects anything, successful or not.

Invalidation rule: entries are only trusted when the stored ``context``
matches the live oracle's fingerprint **exactly** (same model shape, same
cluster, same compute profile totals, same gamma/delta).  On any mismatch
— or an unreadable/wrong-version file — the whole cache is discarded and
rebuilt; there is no per-entry invalidation.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
import re
import threading
from typing import Dict, Mapping, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

from ..core.analytical import PhaseBreakdown, Projection
from ..core.strategies import Strategy
from ..faults import fire as _fire_fault

__all__ = [
    "ProjectionCache",
    "CachedFailure",
    "context_fingerprint",
    "fingerprint_digest",
    "cache_file_for",
    "CACHE_VERSION",
]

CACHE_VERSION = 2


def context_fingerprint(oracle) -> Dict[str, object]:
    """Fingerprint of everything a projection depends on besides the
    candidate itself: model shape, cluster, profile, gamma/delta, and
    the oracle's communication policy."""
    model = oracle.model
    profile = oracle.profile
    return {
        "model": model.name,
        "layers": len(model.layers),
        "parameters": int(model.parameters),
        "input": list((model.input_spec.channels,) + model.input_spec.spatial),
        "cluster": str(oracle.cluster),
        "profile_fw_s": profile.total_fw(),
        "profile_bw_s": profile.total_bw(),
        "profile_wu_s": profile.total_wu(),
        "gamma": oracle.analytical.gamma,
        "delta": oracle.analytical.delta,
        "halo_transport": oracle.analytical.halo_transport,
        "contention": bool(oracle.analytical.contention),
        "comm": oracle.analytical.comm.fingerprint(),
    }


def fingerprint_digest(context: Mapping[str, object]) -> str:
    """Short stable hash of a context fingerprint (cache-file naming)."""
    blob = json.dumps(dict(context), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def cache_file_for(cache_dir: str, context: Mapping[str, object]) -> str:
    """Path of the cache file for ``context`` inside a shared directory.

    One versioned file per (model, cluster, profile, comm) fingerprint:
    the file name embeds both the model name (human-orientation) and the
    full fingerprint digest, so different models — or the *same* model
    under a different cluster / profile / gamma / comm policy — land in
    different files and can never invalidate each other.  A fingerprint
    change therefore starts a fresh file while leaving sibling caches
    untouched; loading still verifies the stored context exactly (the
    standing invalidation rule), so a renamed or stale file degrades to
    a cold cache rather than serving wrong projections.
    """
    model = re.sub(r"[^A-Za-z0-9._-]+", "_", str(context.get("model", "model")))
    return os.path.join(
        cache_dir, f"{model}-{fingerprint_digest(context)}.json")


class CachedFailure:
    """A memoized projection *failure* (structural infeasibility)."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachedFailure({self.reason!r})"


def _projection_to_jsonable(proj: Projection) -> Dict[str, object]:
    return {
        "model_name": proj.model_name,
        "batch": proj.batch,
        "dataset_size": proj.dataset_size,
        "per_epoch": proj.per_epoch.asdict(),
        "memory_bytes": proj.memory_bytes,
        "memory_capacity": proj.memory_capacity,
        "gamma": proj.gamma,
        "delta": proj.delta,
        "notes": list(proj.notes),
        "comm_policy": proj.comm_policy,
        "comm_algorithms": [list(pair) for pair in proj.comm_algorithms],
    }


def _projection_from_jsonable(
    entry: Mapping[str, object], strategy: Strategy
) -> Projection:
    return Projection(
        model_name=entry["model_name"],
        strategy=strategy,
        batch=int(entry["batch"]),
        dataset_size=int(entry["dataset_size"]),
        per_epoch=PhaseBreakdown(**entry["per_epoch"]),
        memory_bytes=float(entry["memory_bytes"]),
        memory_capacity=float(entry["memory_capacity"]),
        gamma=float(entry["gamma"]),
        delta=int(entry["delta"]),
        notes=tuple(entry.get("notes", ())),
        comm_policy=str(entry.get("comm_policy", "paper")),
        comm_algorithms=tuple(
            (str(phase), str(label))
            for phase, label in entry.get("comm_algorithms", ())
        ),
    )


class ProjectionCache:
    """Thread-safe projection memo, optionally persisted to a JSON file.

    Parameters
    ----------
    path:
        Where to persist (``None`` keeps the cache in-memory only).
    context:
        The live fingerprint (see :func:`context_fingerprint`).  A
        persisted cache whose stored context differs is discarded on load.

    For multi-model sweeps, :meth:`for_oracle` places one cache file per
    (model, cluster) fingerprint inside a shared directory, so every
    model in a zoo keeps an isolated, individually-invalidated memo.
    Persistence is concurrent-safe: :meth:`save` writes to a
    pid-qualified temporary file and atomically replaces the target, so
    parallel sweeps sharing a directory can only ever observe complete
    cache files.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        context: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.path = path
        self.context: Dict[str, object] = dict(context or {})
        self._entries: Dict[str, Dict[str, object]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Hits that answered with a memoized *failure* (observability:
        #: a subset of ``hits``).
        self.negative_hits = 0
        #: Completed file writes (saves skipped as clean don't count).
        self.saves = 0
        #: Writes that failed (disk full, permissions): the cache stays
        #: dirty and serves from memory; the next save retries.
        self.save_errors = 0
        self.invalidated = False
        # Dirty until proven in sync with the file: a fresh (or
        # discarded) cache wants its first save, a cleanly-loaded one
        # only re-serializes after a put/put_failure/clear.  The
        # monotonic mutation counter lets `save` detect writes that
        # raced its (unlocked) file write and stay dirty for them.
        self._dirty = True
        self._mutations = 0
        if path is not None and os.path.exists(path):
            self._load(path)

    @classmethod
    def for_oracle(cls, cache_dir: str, oracle) -> "ProjectionCache":
        """Open the cross-model cache for ``oracle`` under ``cache_dir``.

        The file is named by :func:`cache_file_for` from the oracle's
        :func:`context_fingerprint`, giving per-(model, cluster)
        isolation inside one shared directory; the directory is created
        on first save, not here.
        """
        context = context_fingerprint(oracle)
        return cls(cache_file_for(cache_dir, context), context=context)

    # ----------------------------------------------------------------- load
    def _load(self, path: str) -> None:
        try:
            with open(path) as fh:
                blob = json.load(fh)
        except (OSError, ValueError) as exc:
            # Truncated / corrupt JSON is a real hazard once several
            # hosts share a cache dir: warn (not raise) and rebuild.
            logger.warning(
                "cache: %s unreadable (%s); rebuilding from cold",
                path, exc)
            self.invalidated = True
            return
        if (
            not isinstance(blob, dict)
            or blob.get("version") != CACHE_VERSION
            or blob.get("context") != self.context
        ):
            logger.info(
                "cache: %s context/version mismatch; discarding", path)
            self.invalidated = True
            return
        entries = blob.get("entries", {})
        if not isinstance(entries, dict):
            logger.warning(
                "cache: %s entries malformed; rebuilding from cold", path)
            self.invalidated = True
            return
        for key, entry in entries.items():
            # Every entry must be a dict carrying either an error reason
            # or a projection mapping; anything else means the file was
            # hand-edited or torn mid-write — safer to rebuild it all
            # than to trust the survivors.
            if not isinstance(entry, dict) or not (
                "error" in entry
                or isinstance(entry.get("projection"), dict)
            ):
                logger.warning(
                    "cache: %s entry %r malformed; rebuilding from cold",
                    path, key)
                self.invalidated = True
                return
        self._entries = entries
        self._dirty = False
        logger.debug(
            "cache: loaded %d entries from %s", len(entries), path)

    # ------------------------------------------------------------------ api
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str, strategy: Strategy):
        """Return the memoized result under ``key``: a
        :class:`~repro.core.analytical.Projection`, a
        :class:`CachedFailure` for a memoized raise, or ``None`` on a
        miss.  Entries memoized this session return the stored object
        directly; entries loaded from disk are rebound to ``strategy``
        (strategies are not persisted; the candidate that produced the
        key reconstructs an identical one)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            if "error" in entry:
                self.negative_hits += 1
        live = entry.get("live")
        if live is not None:
            return live
        if "error" in entry:
            return CachedFailure(str(entry["error"]))
        try:
            return _projection_from_jsonable(entry["projection"], strategy)
        except (KeyError, TypeError, ValueError) as exc:
            # A dict-shaped entry with fields missing (hand-edited file,
            # torn write another host half-finished): drop it and treat
            # the lookup as a miss, so the candidate just re-projects.
            logger.warning(
                "cache: entry %r undecodable (%s); dropping", key, exc)
            with self._lock:
                self._entries.pop(key, None)
                self.hits -= 1
                self.misses += 1
                self._dirty = True
                self._mutations += 1
            return None

    def put(self, key: str, projection: Projection) -> None:
        """Memoize a successful projection under ``key``.

        The projection is stored live and serialized lazily by
        :meth:`save` — a put that is superseded or never saved never
        pays for JSON conversion, and same-session hits skip the
        round-trip entirely."""
        with self._lock:
            self._entries[key] = {"live": projection}
            self._dirty = True
            self._mutations += 1

    def put_failure(self, key: str, reason: str) -> None:
        """Memoize a projection *raise* so warm runs never re-project a
        structurally infeasible candidate."""
        with self._lock:
            self._entries[key] = {"error": reason}
            self._dirty = True
            self._mutations += 1

    def put_many(
        self,
        projections: Sequence[Tuple[str, Projection]] = (),
        failures: Sequence[Tuple[str, str]] = (),
    ) -> None:
        """Batched :meth:`put` / :meth:`put_failure`: one lock
        acquisition covers the whole batch (the array path lands
        hundreds of projections at once)."""
        if not projections and not failures:
            return
        with self._lock:
            for key, projection in projections:
                self._entries[key] = {"live": projection}
            for key, reason in failures:
                self._entries[key] = {"error": reason}
            self._dirty = True
            self._mutations += 1

    def save(self, path: Optional[str] = None) -> Optional[str]:
        """Persist to ``path`` (default: the construction path).

        Clean caches skip the write: when no ``put``/``put_failure``/
        ``clear`` happened since the last load or save, re-serializing
        would rewrite an identical blob (warm sweeps used to do exactly
        that, once per model per run).  An explicit ``path`` different
        from the construction path always writes.
        """
        target = path or self.path
        if target is None:
            return None
        with self._lock:
            if (
                not self._dirty
                and target == self.path
                and os.path.exists(target)
            ):
                return target
            snapshot = self._mutations
            entries: Dict[str, Dict[str, object]] = {}
            for key, entry in self._entries.items():
                live = entry.get("live")
                if live is not None:
                    entry = {"projection": _projection_to_jsonable(live)}
                entries[key] = entry
            blob = {
                "version": CACHE_VERSION,
                "context": self.context,
                "entries": entries,
            }
        tmp = f"{target}.tmp.{os.getpid()}"
        data = json.dumps(blob)
        # Fault site ``cache.save``: ``partial`` persists a torn file
        # (truncated mid-blob — the loader's corrupt-file path must
        # recover); ``full`` fails the write like a disk that ran out
        # of space.
        action = _fire_fault("cache.save")
        if action is not None and action.kind == "partial":
            data = data[: len(data) // 2]
        try:
            if action is not None and action.kind == "full":
                raise OSError(errno.ENOSPC, action.describe())
            os.makedirs(
                os.path.dirname(os.path.abspath(target)), exist_ok=True)
            with open(tmp, "w") as fh:
                # dumps + write, not dump: json.dump streams through the
                # pure-python iterencode loop, while dumps takes the
                # one-shot C encoder — ~10x faster on a few hundred
                # entries, and the save sits inside the timed
                # persistence stage of every cold search.
                fh.write(data)
            os.replace(tmp, target)
        except OSError as exc:
            # A failed save must never sink the search that produced
            # the projections: stay dirty (the next save retries), drop
            # the temp file, report through stats.
            logger.warning("cache: save to %s failed: %s", target, exc)
            with self._lock:
                self.save_errors += 1
            try:
                os.remove(tmp)
            except OSError:
                pass
            return None
        logger.debug(
            "cache: saved %d entries to %s", len(blob["entries"]), target)
        with self._lock:
            self.saves += 1
            # Only mark clean if nothing was written behind the
            # (unlocked) file write; a racing put stays pending for
            # the next save instead of being silently dropped.
            if target == self.path and self._mutations == snapshot:
                self._dirty = False
        return target

    def stats(self) -> Dict[str, float]:
        """Observability snapshot: entry count plus every counter.

        The search engine scrapes this into its
        :class:`~repro.obs.metrics.MetricsRegistry` after each run; the
        keys are stable (``entries`` / ``hits`` / ``misses`` /
        ``negative_hits`` / ``saves`` / ``invalidated``).
        """
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "negative_hits": float(self.negative_hits),
                "saves": float(self.saves),
                "save_errors": float(self.save_errors),
                "invalidated": float(self.invalidated),
            }

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self._dirty = True
            self._mutations += 1
