"""Keyed, thread-safe projection memo with on-disk JSON persistence.

Repeated planning sessions evaluate largely the same (model, cluster,
candidate) grid; projections are deterministic, so they memoize perfectly.

File format (version 2)
-----------------------
A single JSON object::

    {
      "version": 2,
      "context": {"model": ..., "layers": ..., "parameters": ...,
                  "cluster": ..., "profile_fw_s": ..., "profile_bw_s": ...,
                  "profile_wu_s": ..., "gamma": ..., "delta": ...,
                  "comm": "<CommModel fingerprint>"},
      "entries": {
        "<candidate key>@D=<dataset size>": {
          "projection": {
            "model_name": str, "batch": int, "dataset_size": int,
            "per_epoch": {"comp_fw": float, ..., "comm_p2p": float},
            "memory_bytes": float, "memory_capacity": float,
            "gamma": float, "delta": int, "notes": [str, ...],
            "comm_policy": str,
            "comm_algorithms": [[phase, "collective:algo"], ...]
          }
        }, ...
      }
    }

Version 2 added the communication-policy dimension: the context carries
the oracle's :meth:`CommModel.fingerprint`, candidate keys carry their
per-candidate policy, and projections persist which algorithm each phase
chose.  Version-1 files are discarded wholesale on load (the standing
invalidation rule below).

Candidates whose projection *raised* (structurally infeasible for this
model) memoize negatively as ``{"error": "<reason>"}`` so a warm cache
never re-projects anything, successful or not.

Invalidation rule: entries are only trusted when the stored ``context``
matches the live oracle's fingerprint **exactly** (same model shape, same
cluster, same compute profile totals, same gamma/delta).  On any mismatch
— or an unreadable/wrong-version file — the whole cache is discarded and
rebuilt; there is no per-entry invalidation.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Mapping, Optional

from ..core.analytical import PhaseBreakdown, Projection
from ..core.strategies import Strategy

__all__ = [
    "ProjectionCache",
    "CachedFailure",
    "context_fingerprint",
    "CACHE_VERSION",
]

CACHE_VERSION = 2


def context_fingerprint(oracle) -> Dict[str, object]:
    """Fingerprint of everything a projection depends on besides the
    candidate itself: model shape, cluster, profile, gamma/delta, and
    the oracle's communication policy."""
    model = oracle.model
    profile = oracle.profile
    return {
        "model": model.name,
        "layers": len(model.layers),
        "parameters": int(model.parameters),
        "input": list((model.input_spec.channels,) + model.input_spec.spatial),
        "cluster": str(oracle.cluster),
        "profile_fw_s": profile.total_fw(),
        "profile_bw_s": profile.total_bw(),
        "profile_wu_s": profile.total_wu(),
        "gamma": oracle.analytical.gamma,
        "delta": oracle.analytical.delta,
        "halo_transport": oracle.analytical.halo_transport,
        "contention": bool(oracle.analytical.contention),
        "comm": oracle.analytical.comm.fingerprint(),
    }


class CachedFailure:
    """A memoized projection *failure* (structural infeasibility)."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachedFailure({self.reason!r})"


def _projection_to_jsonable(proj: Projection) -> Dict[str, object]:
    return {
        "model_name": proj.model_name,
        "batch": proj.batch,
        "dataset_size": proj.dataset_size,
        "per_epoch": proj.per_epoch.asdict(),
        "memory_bytes": proj.memory_bytes,
        "memory_capacity": proj.memory_capacity,
        "gamma": proj.gamma,
        "delta": proj.delta,
        "notes": list(proj.notes),
        "comm_policy": proj.comm_policy,
        "comm_algorithms": [list(pair) for pair in proj.comm_algorithms],
    }


def _projection_from_jsonable(
    entry: Mapping[str, object], strategy: Strategy
) -> Projection:
    return Projection(
        model_name=entry["model_name"],
        strategy=strategy,
        batch=int(entry["batch"]),
        dataset_size=int(entry["dataset_size"]),
        per_epoch=PhaseBreakdown(**entry["per_epoch"]),
        memory_bytes=float(entry["memory_bytes"]),
        memory_capacity=float(entry["memory_capacity"]),
        gamma=float(entry["gamma"]),
        delta=int(entry["delta"]),
        notes=tuple(entry.get("notes", ())),
        comm_policy=str(entry.get("comm_policy", "paper")),
        comm_algorithms=tuple(
            (str(phase), str(label))
            for phase, label in entry.get("comm_algorithms", ())
        ),
    )


class ProjectionCache:
    """Thread-safe projection memo, optionally persisted to a JSON file.

    Parameters
    ----------
    path:
        Where to persist (``None`` keeps the cache in-memory only).
    context:
        The live fingerprint (see :func:`context_fingerprint`).  A
        persisted cache whose stored context differs is discarded on load.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        context: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.path = path
        self.context: Dict[str, object] = dict(context or {})
        self._entries: Dict[str, Dict[str, object]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidated = False
        if path is not None and os.path.exists(path):
            self._load(path)

    # ----------------------------------------------------------------- load
    def _load(self, path: str) -> None:
        try:
            with open(path) as fh:
                blob = json.load(fh)
        except (OSError, ValueError):
            self.invalidated = True
            return
        if (
            not isinstance(blob, dict)
            or blob.get("version") != CACHE_VERSION
            or blob.get("context") != self.context
        ):
            self.invalidated = True
            return
        entries = blob.get("entries", {})
        if isinstance(entries, dict):
            self._entries = entries

    # ------------------------------------------------------------------ api
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str, strategy: Strategy):
        """Return the memoized result under ``key``: a
        :class:`~repro.core.analytical.Projection` rebound to ``strategy``
        (strategies are not persisted; the candidate that produced the key
        reconstructs an identical one), a :class:`CachedFailure` for a
        memoized raise, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
        if "error" in entry:
            return CachedFailure(str(entry["error"]))
        return _projection_from_jsonable(entry["projection"], strategy)

    def put(self, key: str, projection: Projection) -> None:
        entry = {"projection": _projection_to_jsonable(projection)}
        with self._lock:
            self._entries[key] = entry

    def put_failure(self, key: str, reason: str) -> None:
        with self._lock:
            self._entries[key] = {"error": reason}

    def save(self, path: Optional[str] = None) -> Optional[str]:
        """Persist to ``path`` (default: the construction path)."""
        path = path or self.path
        if path is None:
            return None
        with self._lock:
            blob = {
                "version": CACHE_VERSION,
                "context": self.context,
                "entries": dict(self._entries),
            }
        tmp = f"{path}.tmp.{os.getpid()}"
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(tmp, "w") as fh:
            json.dump(blob, fh)
        os.replace(tmp, path)
        return path

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
