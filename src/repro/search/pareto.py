"""Multi-objective ranking: Pareto frontier + scalarized best pick.

Objectives are *minimized*.  The default objective tuple is epoch time,
iteration time, per-PE memory, and PE count: epoch time rides along with
the issue's (iteration time, memory, PEs) triple because weak- and
strong-scaling candidates run different global batches, so a tiny fixed
batch can "win" on raw iteration time while losing an epoch — keeping
epoch time as an objective keeps the throughput-optimal point on the
frontier.

The scalarizer min-max normalizes each objective over the frontier and
takes a weighted sum.  The default weights are ``{"epoch_time": 1.0}`` —
a pure-throughput pick, guaranteed to match-or-beat a plain
:meth:`ParaDL.suggest` ranking over the same candidates — and callers
trade memory or PE count in by supplying their own weights.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import npcompat

__all__ = [
    "OBJECTIVES",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_WEIGHTS",
    "dominates",
    "pareto_frontier",
    "scalarized_best",
]

#: Named objective accessors over :class:`~repro.search.engine.Evaluation`
#: (anything exposing ``.projection`` works).  All are minimized.
OBJECTIVES: Dict[str, Callable[[object], float]] = {
    "epoch_time": lambda e: e.projection.per_epoch.total,
    "iteration_time": lambda e: e.projection.per_iteration.total,
    "memory": lambda e: e.projection.memory_bytes,
    "pes": lambda e: float(e.projection.strategy.p),
}

DEFAULT_OBJECTIVES: Tuple[str, ...] = (
    "epoch_time", "iteration_time", "memory", "pes",
)

DEFAULT_WEIGHTS: Dict[str, float] = {"epoch_time": 1.0}


def _vector(e: object, objectives: Sequence[str]) -> Tuple[float, ...]:
    try:
        return tuple(OBJECTIVES[name](e) for name in objectives)
    except KeyError as exc:
        raise KeyError(
            f"unknown objective {exc.args[0]!r}; "
            f"choose from {sorted(OBJECTIVES)}"
        ) from None


def dominates(
    a: Sequence[float], b: Sequence[float]
) -> bool:
    """True when ``a`` is no worse on every objective and better on one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def _dominated_mask(vectors: List[Tuple[float, ...]]) -> List[bool]:
    """Per-vector "is dominated by any other" flags.

    With numpy and enough vectors this is a chunked ``(others, mine,
    objectives)`` comparison — the same ``all(<=) and any(<)`` test as
    :func:`dominates`, just evaluated as one boolean tensor — so the
    surviving set is identical to the scalar scan.
    """
    n = len(vectors)
    np = npcompat.np
    if np is None or n < 32:
        return [
            any(dominates(other, v) for other in vectors) for v in vectors
        ]
    V = np.asarray(vectors, dtype=np.float64)
    # Archive sweep instead of the full n^2 broadcast: process blocks in
    # ascending objective-sum order.  A dominator's sum is *strictly*
    # below its dominatee's (all(<=) plus any(<)), so every dominator of
    # a point sits in an earlier block or the same block — comparing each
    # block against the archive of earlier non-dominated points plus
    # itself is exhaustive.  (Dominated dominators need no archive slot:
    # domination is transitive, so whatever they dominate their own
    # dominator dominates too.)  Each comparison applies the same
    # ``all(<=) and any(<)`` test as :func:`dominates`, so the surviving
    # set is identical to the scalar scan, duplicates included.
    order = np.argsort(V.sum(axis=1), kind="stable")
    S = V[order]
    k = S.shape[1]

    def _dominated_by(dominators: "np.ndarray", targets: "np.ndarray"):
        """Per-target "some dominator row dominates it" flags.

        Built objective-by-objective from 2-D comparisons: reducing a
        ``(targets, dominators, objectives)`` tensor over the tiny
        trailing axis is an order of magnitude slower in numpy than
        ``k`` full-size 2-D ops.
        """
        le = lt = None
        for j in range(k):
            d = dominators[:, j][None, :]
            t = targets[:, j][:, None]
            le = (d <= t) if le is None else (le & (d <= t))
            lt = (d < t) if lt is None else (lt | (d < t))
        return (le & lt).any(axis=1)

    out = np.zeros(n, dtype=bool)
    archive = S[:0]
    block = 256
    for lo in range(0, n, block):
        B = S[lo:lo + block]
        dom = _dominated_by(B, B)
        if len(archive):
            dom |= _dominated_by(archive, B)
        out[order[lo:lo + block]] = dom
        archive = np.concatenate([archive, B[~dom]])
    return out.tolist()


def pareto_frontier(
    evaluations: Sequence[object],
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> List[object]:
    """Non-dominated subset of ``evaluations``, sorted by epoch time.

    Only feasible evaluations (with a projection) may be passed.  Exact
    duplicates in objective space keep their first representative.
    """
    vectors = [_vector(e, objectives) for e in evaluations]
    # Collapse exact objective-space duplicates *before* the domination
    # test: equal vectors share a fate (nothing dominates its own equal),
    # so one representative per distinct vector — the first, to keep the
    # documented tie-break — is enough, and the mask runs on the smaller
    # deduplicated set.
    first_index: Dict[Tuple[float, ...], int] = {}
    for i, v in enumerate(vectors):
        first_index.setdefault(v, i)
    unique = list(first_index)
    dominated = _dominated_mask(unique)
    kept = sorted(
        v for v, dom in zip(unique, dominated) if not dom
    )
    return [evaluations[first_index[v]] for v in kept]


def scalarized_best(
    frontier: Sequence[object],
    weights: Optional[Mapping[str, float]] = None,
) -> Optional[object]:
    """Weighted min-max-normalized pick from a frontier (``None`` if empty).

    ``weights`` maps objective names to non-negative weights; omitted
    objectives weigh 0.  Ties break toward lower epoch time, then lower
    memory, then fewer PEs.
    """
    if not frontier:
        return None
    weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be >= 0")
    if not any(w > 0 for w in weights.values()):
        raise ValueError("at least one weight must be > 0")
    names = [n for n, w in sorted(weights.items()) if w > 0]
    unknown = [n for n in names if n not in OBJECTIVES]
    if unknown:
        raise KeyError(
            f"unknown objective {unknown[0]!r}; "
            f"choose from {sorted(OBJECTIVES)}"
        )
    columns = {n: [OBJECTIVES[n](e) for e in frontier] for n in names}
    spans = {
        n: (min(col), max(col) - min(col)) for n, col in columns.items()
    }

    def score(i: int) -> float:
        total = 0.0
        for n in names:
            lo, span = spans[n]
            norm = 0.0 if span == 0 else (columns[n][i] - lo) / span
            total += weights[n] * norm
        return total

    def tiebreak(i: int) -> Tuple[float, ...]:
        e = frontier[i]
        return (
            score(i),
            OBJECTIVES["epoch_time"](e),
            OBJECTIVES["memory"](e),
            OBJECTIVES["pes"](e),
        )

    best_index = min(range(len(frontier)), key=tiebreak)
    return frontier[best_index]
