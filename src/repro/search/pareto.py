"""Multi-objective ranking: Pareto frontier + scalarized best pick.

Objectives are *minimized*.  The default objective tuple is epoch time,
iteration time, per-PE memory, and PE count: epoch time rides along with
the issue's (iteration time, memory, PEs) triple because weak- and
strong-scaling candidates run different global batches, so a tiny fixed
batch can "win" on raw iteration time while losing an epoch — keeping
epoch time as an objective keeps the throughput-optimal point on the
frontier.

The scalarizer min-max normalizes each objective over the frontier and
takes a weighted sum.  The default weights are ``{"epoch_time": 1.0}`` —
a pure-throughput pick, guaranteed to match-or-beat a plain
:meth:`ParaDL.suggest` ranking over the same candidates — and callers
trade memory or PE count in by supplying their own weights.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "OBJECTIVES",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_WEIGHTS",
    "dominates",
    "pareto_frontier",
    "scalarized_best",
]

#: Named objective accessors over :class:`~repro.search.engine.Evaluation`
#: (anything exposing ``.projection`` works).  All are minimized.
OBJECTIVES: Dict[str, Callable[[object], float]] = {
    "epoch_time": lambda e: e.projection.per_epoch.total,
    "iteration_time": lambda e: e.projection.per_iteration.total,
    "memory": lambda e: e.projection.memory_bytes,
    "pes": lambda e: float(e.projection.strategy.p),
}

DEFAULT_OBJECTIVES: Tuple[str, ...] = (
    "epoch_time", "iteration_time", "memory", "pes",
)

DEFAULT_WEIGHTS: Dict[str, float] = {"epoch_time": 1.0}


def _vector(e: object, objectives: Sequence[str]) -> Tuple[float, ...]:
    try:
        return tuple(OBJECTIVES[name](e) for name in objectives)
    except KeyError as exc:
        raise KeyError(
            f"unknown objective {exc.args[0]!r}; "
            f"choose from {sorted(OBJECTIVES)}"
        ) from None


def dominates(
    a: Sequence[float], b: Sequence[float]
) -> bool:
    """True when ``a`` is no worse on every objective and better on one."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_frontier(
    evaluations: Sequence[object],
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> List[object]:
    """Non-dominated subset of ``evaluations``, sorted by epoch time.

    Only feasible evaluations (with a projection) may be passed.  Exact
    duplicates in objective space keep their first representative.
    """
    vectors = [_vector(e, objectives) for e in evaluations]
    frontier: List[object] = []
    kept_vectors: List[Tuple[float, ...]] = []
    for e, v in zip(evaluations, vectors):
        if any(dominates(other, v) for other in vectors):
            continue
        if v in kept_vectors:  # collapse exact objective-space duplicates
            continue
        frontier.append(e)
        kept_vectors.append(v)
    order = sorted(
        range(len(frontier)),
        key=lambda i: kept_vectors[i],
    )
    return [frontier[i] for i in order]


def scalarized_best(
    frontier: Sequence[object],
    weights: Optional[Mapping[str, float]] = None,
) -> Optional[object]:
    """Weighted min-max-normalized pick from a frontier (``None`` if empty).

    ``weights`` maps objective names to non-negative weights; omitted
    objectives weigh 0.  Ties break toward lower epoch time, then lower
    memory, then fewer PEs.
    """
    if not frontier:
        return None
    weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be >= 0")
    if not any(w > 0 for w in weights.values()):
        raise ValueError("at least one weight must be > 0")
    names = [n for n, w in sorted(weights.items()) if w > 0]
    unknown = [n for n in names if n not in OBJECTIVES]
    if unknown:
        raise KeyError(
            f"unknown objective {unknown[0]!r}; "
            f"choose from {sorted(OBJECTIVES)}"
        )
    columns = {n: [OBJECTIVES[n](e) for e in frontier] for n in names}
    spans = {
        n: (min(col), max(col) - min(col)) for n, col in columns.items()
    }

    def score(i: int) -> float:
        total = 0.0
        for n in names:
            lo, span = spans[n]
            norm = 0.0 if span == 0 else (columns[n][i] - lo) / span
            total += weights[n] * norm
        return total

    def tiebreak(i: int) -> Tuple[float, ...]:
        e = frontier[i]
        return (
            score(i),
            OBJECTIVES["epoch_time"](e),
            OBJECTIVES["memory"](e),
            OBJECTIVES["pes"](e),
        )

    best_index = min(range(len(frontier)), key=tiebreak)
    return frontier[best_index]
