"""The search engine: prune -> memoize -> project, fanned out over a
worker pool, folded into a Pareto frontier.

The engine owns no policy of its own: the :class:`~repro.search.space.
SearchSpace` says what to try, :mod:`~repro.search.pruning` says what is
not worth projecting, the :class:`~repro.search.cache.ProjectionCache`
remembers past answers, and :mod:`~repro.search.pareto` ranks the
survivors.  Evaluation order is irrelevant to the result — a search with
one worker returns exactly what a search with N workers returns, and a
process-pool search returns exactly what a thread-pool search returns.

Three executor backends are available (``executor="thread"`` /
``"process"`` / ``"remote"``).  Projections are pure-Python CPU work, so
the thread pool is GIL-bound and only pays off when evaluation blocks;
the process pool ships the oracle context to worker processes once
(pickled, via an initializer) and then streams candidate chunks, scaling
large sweeps across cores; the remote backend (:mod:`repro.dist`) does
the same over sockets to ``repro worker`` processes on other machines,
with heartbeat-based failure detection and straggler re-dispatch.  The
parent keeps sole ownership of the :class:`ProjectionCache`: cache hits
are answered inline before anything reaches the pool, and worker
projections are folded back in, so a warm cache never re-projects under
any backend.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import npcompat
from ..core.analytical import Projection
from ..core.strategies import Strategy, StrategyError
from ..data.datasets import DatasetSpec
from ..faults import check_deadline
from ..obs.tracer import NULL_TRACER, Tracer
from .cache import (
    CachedFailure,
    ProjectionCache,
    context_fingerprint,
    fingerprint_digest,
)
from .pareto import (
    DEFAULT_OBJECTIVES,
    pareto_frontier,
    scalarized_best,
)
from .pruning import Pruner, PruningContext, apply_pruners, apply_pruners_batch
from .space import Candidate, SearchSpace

__all__ = [
    "Evaluation",
    "SearchReport",
    "SearchEngine",
    "EXECUTORS",
    "TIMING_STAGES",
]

#: Supported evaluation backends.
EXECUTORS = ("thread", "process", "remote")

#: Candidates per process-pool task; amortizes IPC without starving
#: workers at the tail of a sweep.
_PROCESS_CHUNK = 16

#: Candidates per remote-worker chunk: larger than the process chunk
#: (each frame crosses a network round-trip, not a pipe) but small
#: enough that straggler re-dispatch has useful granularity.
_REMOTE_CHUNK = 32

#: Candidates per thread-backend evaluation batch: one
#: :meth:`SearchEngine.evaluate_many` call amortizes cache-key assembly
#: and timing bookkeeping across the chunk — and feeds the vectorized
#: projection path, whose per-candidate cost falls with chunk size.
_THREAD_CHUNK = 256

#: Single-worker chunk: with no pool to keep busy, larger chunks only
#: help — the array path groups candidates by strategy family, so an
#: 8x larger chunk means 8x fewer per-family assembly passes.  Still
#: bounded so ``iter_results`` keeps yielding incrementally.
_SERIAL_CHUNK = 2048

#: Minimum cache-miss survivors per chunk before the vectorized
#: projection path pays for its array assembly.
_MIN_VECTOR_BATCH = 4

#: Stage keys of :attr:`SearchReport.timings` (the ``--profile`` table).
TIMING_STAGES = (
    "expansion_s", "pruning_s", "projection_s", "ranking_s",
    "persistence_s", "total_s",
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate."""

    candidate: Candidate
    strategy: Optional[Strategy] = None
    projection: Optional[Projection] = None
    feasible: bool = False
    reason: str = ""
    pruned: bool = False
    cached: bool = False

    @property
    def epoch_time(self) -> float:
        return self.projection.per_epoch.total

    @property
    def iteration_time(self) -> float:
        return self.projection.per_iteration.total

    @property
    def memory_gb(self) -> float:
        return self.projection.memory_bytes / 1e9

    def describe(self) -> str:
        if self.strategy is not None:
            desc = f"{self.strategy.describe()} B={self.candidate.batch}"
            if self.candidate.comm:
                desc += f" comm={self.candidate.comm}"
            return desc
        return self.candidate.describe()

    def asdict(self) -> Dict[str, object]:
        """JSON-ready summary (for ``--json`` CLI output)."""
        row: Dict[str, object] = {
            "candidate": self.candidate.describe(),
            "strategy": self.strategy.describe() if self.strategy else None,
            "p": self.candidate.p,
            "batch": self.candidate.batch,
            "feasible": self.feasible,
            "pruned": self.pruned,
            "cached": self.cached,
        }
        if self.projection is not None:
            row.update(
                epoch_s=self.epoch_time,
                iteration_s=self.iteration_time,
                memory_gb=self.memory_gb,
                comm_policy=self.projection.comm_policy,
                comm_algorithms=dict(self.projection.comm_algorithms),
            )
        if self.reason:
            row["reason"] = self.reason
        return row


@dataclass
class SearchReport:
    """Everything a search produced, plus bookkeeping counters.

    ``timings`` breaks the wall time into stages (see
    :data:`TIMING_STAGES`): space expansion, pruning (the pre-projection
    fast path, including cache lookups), projection, ranking, and cache
    persistence.  Pruning/projection are *busy* times summed across
    workers (cProfile-``cumtime``-style), so with several threads they
    can legitimately exceed the wall-clock ``total_s``; stages measured
    inside worker processes are not visible to the parent, so under
    ``executor="process"`` the split only covers parent-side work.
    """

    evaluations: List[Evaluation]
    frontier: List[Evaluation]
    best: Optional[Evaluation]
    objectives: Sequence[str] = DEFAULT_OBJECTIVES
    stats: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def feasible(self) -> List[Evaluation]:
        return [e for e in self.evaluations if e.feasible]

    def asdict(self) -> Dict[str, object]:
        # ``timings`` stay off the JSON document deliberately: the
        # envelope is a stable, reproducible contract (scenario-built ==
        # flag-built bit-for-bit) and wall-clock noise would break it.
        # The CLI renders timings via ``--profile`` instead.
        return {
            "objectives": list(self.objectives),
            "stats": dict(self.stats),
            "best": self.best.asdict() if self.best else None,
            "frontier": [e.asdict() for e in self.frontier],
            "evaluated": len(self.evaluations),
        }


# ---------------------------------------------------------------------------
# Process-pool plumbing.  A worker process receives the pickled oracle
# context once (initializer), rebuilds a single-worker engine around it,
# and then evaluates candidate chunks; only candidates that survived the
# parent's prune + cache fast path ever reach a worker.
# ---------------------------------------------------------------------------

_WORKER_ENGINE: Optional["SearchEngine"] = None


def _process_worker_init(payload: bytes) -> None:
    """Pool initializer: rebuild the evaluation context in this process.

    Forces the oracle's projection kernel here, so every worker compiles
    the model invariants exactly once instead of lazily inside its first
    candidate chunk.  When the parent traces, the worker gets its own
    recording :class:`~repro.obs.tracer.Tracer`; its spans ship back
    with each result chunk (see :func:`_process_evaluate_chunk`).
    """
    global _WORKER_ENGINE
    oracle, dataset, pruners, traced, vectorize = pickle.loads(payload)
    _WORKER_ENGINE = SearchEngine(
        oracle, dataset, pruners=pruners, workers=1,
        tracer=Tracer() if traced else None, vectorize=vectorize)
    analytical = getattr(oracle, "analytical", None)
    if analytical is not None and hasattr(analytical, "kernel"):
        analytical.kernel  # noqa: B018 - warm the lazy kernel build


def _process_evaluate_chunk(
    candidates: List[Candidate],
) -> Tuple[List[Evaluation], list, Dict[str, int]]:
    """Evaluate one candidate chunk in the worker's rebuilt engine.

    Returns ``(evaluations, spans, vec_counts)``: the worker drains its
    tracer into the result payload, and the parent re-parents those
    spans under its own active span (:meth:`Tracer.adopt`) — so a traced
    process-pool search renders worker lanes in the same Chrome trace.
    ``vec_counts`` carries this chunk's vectorized / scalar-fallback
    candidate counts for the parent's run counters.
    """
    before = dict(_WORKER_ENGINE._vec_counts)
    evaluations = _WORKER_ENGINE.evaluate_many(candidates)
    counts = {
        key: value - before.get(key, 0)
        for key, value in _WORKER_ENGINE._vec_counts.items()
    }
    return evaluations, _WORKER_ENGINE.tracer.drain(), counts


class SearchEngine:
    """Evaluates candidate spaces against one oracle + dataset.

    Parameters
    ----------
    oracle:
        A :class:`~repro.core.oracle.ParaDL` instance.
    dataset:
        Training set (its cardinality fixes iterations per epoch).
    cache:
        A :class:`ProjectionCache`, a path string (the engine opens a
        persistent cache there, keyed to this oracle's fingerprint), or
        ``None`` for a fresh in-memory memo.
    cache_dir:
        Alternative to ``cache``: a *directory* of per-(model, cluster)
        cache files shared across sweeps (see
        :meth:`ProjectionCache.for_oracle`).  Mutually exclusive with
        ``cache``.
    pruners:
        Pre-projection filters; default :data:`DEFAULT_PRUNERS`.
    workers:
        Worker-pool width for :meth:`iter_results`.  Defaults to 1 for
        the thread backend (projections are GIL-bound pure Python, so
        threads only pay off when evaluation blocks — e.g. a future
        oracle backed by real profiling runs or RPC) and to the CPU
        count for the process backend.  Results are identical at any
        width.
    executor:
        ``"thread"`` (default), ``"process"``, or ``"remote"``.  The
        process backend pickles the oracle context into worker processes
        and evaluates candidate chunks there, side-stepping the GIL for
        large sweeps; when the context cannot pickle it warns and falls
        back to the thread backend, so results are never lost to a
        custom pruner or monkey-patched oracle.  The remote backend does
        the same across machines: it ships the context to each
        configured ``repro worker`` once, streams candidate chunks over
        sockets, and degrades to the thread backend (with a
        ``RuntimeWarning``) when no worker is reachable — see
        :mod:`repro.dist` and ``docs/distributed.md``.
    remote_workers:
        ``host:port`` worker addresses for ``executor="remote"``.  As a
        convenience, ``workers`` may also be passed a sequence of
        addresses (``SearchEngine(executor="remote",
        workers=["a:1234", "b:1234"])``) — the two spellings are
        equivalent and mutually exclusive.
    tracer:
        A recording :class:`~repro.obs.tracer.Tracer` to receive engine
        spans (stage phases, per-chunk evaluation, worker fold-ins).
        Default: the shared no-op tracer — near-zero overhead, gated by
        ``benchmarks/test_bench_obs_overhead.py``.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`; after each
        :meth:`search` the engine scrapes run counters into it (cache
        hit/miss/negative/save, ``CommModel`` memo efficiency and
        per-algorithm selections, stage times, epoch-time percentiles,
        vectorized vs. scalar-fallback candidate counts).
        ``None`` skips scraping.
    vectorize:
        Routing policy for the structure-of-arrays projection path
        (``oracle.project_batch``): ``None`` (default) uses it whenever
        numpy is importable, the oracle supports it, and a chunk has
        enough cache-miss survivors to amortize array assembly;
        ``False`` forces the scalar per-candidate path; ``True`` routes
        even tiny batches through the array path.  Results are identical
        either way — the array path mirrors the scalar fast path
        expression for expression (``docs/performance.md``).
    """

    def __init__(
        self,
        oracle,
        dataset: DatasetSpec,
        *,
        cache=None,
        cache_dir: Optional[str] = None,
        pruners: Optional[Sequence[Pruner]] = None,
        workers=None,
        executor: str = "thread",
        remote_workers: Optional[Sequence[str]] = None,
        tracer=None,
        metrics=None,
        vectorize: Optional[bool] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        if workers is not None and not isinstance(workers, int):
            # The ISSUE-blessed convenience spelling:
            # SearchEngine(executor="remote", workers=["a:1234", ...]).
            if remote_workers is not None:
                raise ValueError(
                    "pass worker addresses via workers=[...] or "
                    "remote_workers=[...], not both")
            remote_workers = workers
            workers = None
        self.remote_workers = tuple(
            str(a) for a in (remote_workers or ()))
        if self.remote_workers and executor != "remote":
            raise ValueError(
                "remote_workers is only meaningful with executor='remote'")
        if executor == "remote" and not self.remote_workers:
            raise ValueError(
                "executor 'remote' needs at least one host:port worker "
                "address (remote_workers=[...])")
        self.oracle = oracle
        self.dataset = dataset
        fingerprint = context_fingerprint(oracle)
        if cache_dir is not None:
            cache = ProjectionCache.for_oracle(cache_dir, oracle)
        elif cache is None:
            cache = ProjectionCache(context=fingerprint)
        elif isinstance(cache, (str, os.PathLike)):
            cache = ProjectionCache(str(cache), context=fingerprint)
        self.cache = cache
        self.pruners = list(pruners) if pruners is not None else None
        self.executor = executor
        if workers:
            self.workers = workers
        elif executor == "process":
            self.workers = os.cpu_count() or 1
        elif executor == "remote":
            self.workers = len(self.remote_workers)
        else:
            self.workers = 1
        self._ctx = PruningContext(
            model=oracle.model,
            cluster=oracle.cluster,
            gamma=oracle.analytical.gamma,
            delta=oracle.analytical.delta,
        )
        # Cache keys share one precomputed dataset suffix; candidates
        # memoize their own key component (see Candidate.key), so per-
        # candidate key building is a single concatenation.
        self._key_suffix = f"@D={dataset.num_samples}"
        self._timings: Dict[str, float] = {}
        self._timings_lock = threading.Lock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.vectorize = vectorize
        #: Candidates projected via the array path vs. the scalar
        #: fallback, lifetime totals (snapshotted per search run).
        self._vec_counts: Dict[str, int] = {"vectorized": 0, "scalar": 0}
        # (sid, p, p1, p2, segments) -> Strategy | (exc_type, message).
        # Candidates differing only in batch / comm policy bind to the
        # same (frozen, shareable) strategy object.
        self._build_memo: Dict[Tuple, object] = {}

    # ------------------------------------------------------------- evaluate
    def _cache_key(self, candidate: Candidate) -> str:
        return candidate.key + self._key_suffix

    def _add_timings(self, pruning: float = 0.0, projection: float = 0.0
                     ) -> None:
        with self._timings_lock:
            t = self._timings
            t["pruning_s"] = t.get("pruning_s", 0.0) + pruning
            t["projection_s"] = t.get("projection_s", 0.0) + projection

    def _build_strategy(self, candidate: Candidate) -> Strategy:
        """Memoized :meth:`Candidate.build` — candidates that differ only
        in batch or comm policy share one frozen strategy instance (and
        one construction error)."""
        key = (candidate.sid, candidate.p, candidate.p1, candidate.p2,
               candidate.segments)
        hit = self._build_memo.get(key)
        if hit is None:
            try:
                hit = candidate.build(self.oracle.model)
            except (StrategyError, ValueError) as exc:
                hit = (type(exc), str(exc))
            self._build_memo[key] = hit
        if isinstance(hit, tuple):
            raise hit[0](hit[1])
        return hit

    def _fast_path(
        self, candidate: Candidate
    ) -> Tuple[Optional[Evaluation], Optional[Strategy]]:
        """Prune + build + cache lookup — everything short of projecting.

        Returns ``(evaluation, strategy)``; ``evaluation`` is ``None``
        exactly when the candidate still needs a projection (in which
        case ``strategy`` is the bound strategy to project).
        """
        reason = apply_pruners(candidate, self._ctx, self.pruners)
        if reason is not None:
            return Evaluation(candidate, reason=reason, pruned=True), None
        evaluation, strategy, _ = self._fast_path_tail(candidate)
        return evaluation, strategy

    def _fast_path_tail(
        self, candidate: Candidate
    ) -> Tuple[Optional[Evaluation], Optional[Strategy], Optional[str]]:
        """The post-pruning half of :meth:`_fast_path` (build + cache).

        Also returns the cache key on a miss so projection-side memo
        writes don't rebuild it."""
        try:
            strategy = self._build_strategy(candidate)
        except (StrategyError, ValueError) as exc:
            return Evaluation(candidate, reason=str(exc)), None, None
        key = self._cache_key(candidate)
        hit = self.cache.get(key, strategy)
        if isinstance(hit, CachedFailure):
            return (
                Evaluation(candidate, strategy, reason=hit.reason, cached=True),
                strategy,
                key,
            )
        if hit is not None:
            return (
                self._finish(candidate, strategy, hit, cached=True),
                strategy,
                key,
            )
        return None, strategy, key

    def _fast_path_many(
        self, candidates: Sequence[Candidate]
    ) -> Tuple[List[Optional[Evaluation]],
               List[Tuple[int, Candidate, Strategy, str]]]:
        """Batched :meth:`_fast_path`: pruning runs vectorized over the
        whole chunk, then build + cache lookup per survivor.  Returns the
        (partially filled) output slots and the cache-miss survivors as
        ``(index, candidate, strategy, cache_key)`` rows."""
        cands = list(candidates)
        reasons = apply_pruners_batch(cands, self._ctx, self.pruners)
        out: List[Optional[Evaluation]] = [None] * len(cands)
        pending: List[Tuple[int, Candidate, Strategy, str]] = []
        for i, (cand, reason) in enumerate(zip(cands, reasons)):
            if reason is not None:
                out[i] = Evaluation(cand, reason=reason, pruned=True)
                continue
            evaluation, strategy, key = self._fast_path_tail(cand)
            if evaluation is not None:
                out[i] = evaluation
            else:
                pending.append((i, cand, strategy, key))
        return out, pending

    def _finish(
        self,
        candidate: Candidate,
        strategy: Strategy,
        projection: Projection,
        *,
        cached: bool,
    ) -> Evaluation:
        """Memory-feasibility verdict for a successful projection."""
        if not projection.feasible_memory:
            return Evaluation(
                candidate, strategy, projection,
                feasible=False, cached=cached,
                reason=(f"memory {projection.memory_bytes / 1e9:.1f} GB "
                        f"exceeds "
                        f"{projection.memory_capacity / 1e9:.0f} GB/PE"),
            )
        return Evaluation(
            candidate, strategy, projection, feasible=True, cached=cached)

    def _project(self, candidate: Candidate, strategy: Strategy) -> Evaluation:
        """Pay for the projection and memoize the outcome (either way)."""
        key = self._cache_key(candidate)
        try:
            projection = self.oracle.project(
                strategy, candidate.batch, self.dataset,
                comm=candidate.comm or None)
        except (StrategyError, ValueError) as exc:
            self.cache.put_failure(key, str(exc))
            return Evaluation(candidate, strategy, reason=str(exc))
        self.cache.put(key, projection)
        return self._finish(candidate, strategy, projection, cached=False)

    def _can_vectorize(self, n_pending: int) -> bool:
        """Route ``n_pending`` cache-miss survivors through the array
        path?  Requires numpy, an oracle exposing ``project_batch``, and
        (unless forced) enough candidates to amortize array assembly."""
        if self.vectorize is False or n_pending < 1:
            return False
        if npcompat.np is None:
            return False
        if not hasattr(self.oracle, "project_batch"):
            return False
        return self.vectorize is True or n_pending >= _MIN_VECTOR_BATCH

    def _count_candidates(self, *, vectorized: int = 0, scalar: int = 0
                          ) -> None:
        with self._timings_lock:
            self._vec_counts["vectorized"] += vectorized
            self._vec_counts["scalar"] += scalar

    def _vec_snapshot(self) -> Dict[str, int]:
        with self._timings_lock:
            return dict(self._vec_counts)

    def _project_batch(
        self, items: Sequence[Tuple[Candidate, Strategy, str]]
    ) -> List[Evaluation]:
        """Batched :meth:`_project`: one ``oracle.project_batch`` call
        covers every item; per-candidate raises come back as aligned
        exception entries and memoize negatively, exactly as the scalar
        path would."""
        strategies = [s for _, s, _ in items]
        batches = [c.batch for c, _, _ in items]
        comms = [c.comm or None for c, _, _ in items]
        results = self.oracle.project_batch(
            strategies, batches, self.dataset, comms=comms)
        out: List[Evaluation] = []
        successes: List[Tuple[str, Projection]] = []
        failures: List[Tuple[str, str]] = []
        for (cand, strategy, key), result in zip(items, results):
            if isinstance(result, Exception):
                reason = str(result)
                failures.append((key, reason))
                out.append(Evaluation(cand, strategy, reason=reason))
            else:
                successes.append((key, result))
                out.append(
                    self._finish(cand, strategy, result, cached=False))
        self.cache.put_many(successes, failures)
        return out

    def _project_pending(
        self, pending: Sequence[Tuple[int, Candidate, Strategy, str]]
    ) -> List[Evaluation]:
        """Project cache-miss survivors — vectorized when it pays,
        scalar otherwise — and tally which path ran."""
        if not pending:
            return []
        if self._can_vectorize(len(pending)):
            with self.tracer.span(
                    "search.evaluate_batch", candidates=len(pending)):
                evaluations = self._project_batch(
                    [(cand, strategy, key)
                     for _, cand, strategy, key in pending])
            self._count_candidates(vectorized=len(pending))
            return evaluations
        evaluations = [
            self._project(cand, strategy)
            for _, cand, strategy, _ in pending
        ]
        self._count_candidates(scalar=len(pending))
        return evaluations

    def evaluate(self, candidate: Candidate) -> Evaluation:
        """Evaluate one candidate: prune, then memoized projection."""
        evaluation, strategy = self._fast_path(candidate)
        if evaluation is not None:
            return evaluation
        return self._project(candidate, strategy)

    def evaluate_many(
        self, candidates: Sequence[Candidate]
    ) -> List[Evaluation]:
        """Evaluate a chunk of candidates; results keep input order.

        The batched form of :meth:`evaluate`, shared by the thread and
        process backends: the pre-projection fast path (pruning,
        strategy construction, cache lookup) runs for the whole chunk
        first, then the surviving candidates are projected — amortizing
        key building and stage-timing bookkeeping across the chunk
        instead of paying them per candidate.

        Spans are emitted at *chunk* granularity (one
        ``search.evaluate_chunk`` per call, plus one nested
        ``search.evaluate_batch`` when the array path runs), so tracing
        detail scales with chunks, not candidates, and the no-op
        tracer's cost stays amortized across the whole chunk.
        """
        check_deadline("search.evaluate_chunk")
        with self.tracer.span(
                "search.evaluate_chunk", candidates=len(candidates)) as sp:
            t0 = time.perf_counter()
            out, pending = self._fast_path_many(candidates)
            t1 = time.perf_counter()
            for (i, _, _, _), evaluation in zip(
                    pending, self._project_pending(pending)):
                out[i] = evaluation
            self._add_timings(
                pruning=t1 - t0, projection=time.perf_counter() - t1)
            sp.attrs["projected"] = len(pending)
        return out

    def _absorb(self, evaluation: Evaluation) -> None:
        """Fold a worker-process evaluation into the parent cache.

        Mirrors what :meth:`_project` would have written locally: a
        successful projection memoizes positively, a projection raise
        memoizes negatively.  Pruned / build-failed / already-cached
        evaluations never reach the pool, so they need no folding.
        """
        key = self._cache_key(evaluation.candidate)
        if evaluation.projection is not None:
            self.cache.put(key, evaluation.projection)
        elif evaluation.strategy is not None:
            self.cache.put_failure(key, evaluation.reason)

    # --------------------------------------------------------------- search
    def _fallback_local(
        self, pending_rows: Sequence[Tuple[int, Candidate, Strategy, str]]
    ) -> Iterator[Evaluation]:
        """Project cache-miss survivors locally — the degradation path
        shared by the process backend (unpicklable context) and the
        remote backend (no reachable worker).  The fast path already
        ran, so stats and cache counters stay identical to the thread
        backend's."""
        if self.workers <= 1:
            yield from self._project_pending(pending_rows)
            return
        pending = [
            (cand, strategy) for _, cand, strategy, _ in pending_rows
        ]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(self._project, cand, strategy)
                for cand, strategy in pending
            ]
            self._count_candidates(scalar=len(pending))
            for future in as_completed(futures):
                yield future.result()

    def _iter_process(
        self, candidates: Iterable[Candidate]
    ) -> Iterator[Evaluation]:
        """Process-pool evaluation: fast path inline (pruning
        vectorized over the stream), projections fanned out in chunks,
        results folded back into the parent cache."""
        t0 = time.perf_counter()
        fast, pending_rows = self._fast_path_many(list(candidates))
        self._add_timings(pruning=time.perf_counter() - t0)
        for evaluation in fast:
            if evaluation is not None:
                yield evaluation
        pending = [
            (cand, strategy) for _, cand, strategy, _ in pending_rows
        ]
        if not pending:
            return
        try:
            payload = pickle.dumps(
                (self.oracle, self.dataset, self.pruners,
                 self.tracer.enabled, self.vectorize))
        except Exception as exc:  # noqa: BLE001 - any pickling failure
            warnings.warn(
                f"oracle context cannot be pickled ({exc}); falling back "
                f"to the thread executor",
                RuntimeWarning,
                stacklevel=3,
            )
            yield from self._fallback_local(pending_rows)
            return
        pending_candidates = [cand for cand, _ in pending]
        chunks = [
            pending_candidates[i:i + _PROCESS_CHUNK]
            for i in range(0, len(pending_candidates), _PROCESS_CHUNK)
        ]
        workers = min(self.workers, len(chunks))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_process_worker_init,
            initargs=(payload,),
        ) as pool:
            futures = [
                pool.submit(_process_evaluate_chunk, chunk)
                for chunk in chunks
            ]
            for future in as_completed(futures):
                evaluations, spans, vec_counts = future.result()
                # Worker spans fold in re-parented under the caller's
                # active span (the search root when run via `search`).
                self.tracer.adopt(spans)
                self._count_candidates(
                    vectorized=vec_counts.get("vectorized", 0),
                    scalar=vec_counts.get("scalar", 0))
                for evaluation in evaluations:
                    self._absorb(evaluation)
                    yield evaluation

    def _iter_remote(
        self, candidates: Iterable[Candidate]
    ) -> Iterator[Evaluation]:
        """Remote-fleet evaluation (:mod:`repro.dist`): fast path inline,
        cache-miss survivors chunked out to the configured workers,
        evaluations / tracer spans / worker counters folded back.

        Failure handling never loses a candidate: an unpicklable context
        or an unreachable fleet degrades to local threads with a
        ``RuntimeWarning``, and chunks the fleet failed to finish
        (every worker died) are projected locally after the fact.
        """
        t0 = time.perf_counter()
        fast, pending_rows = self._fast_path_many(list(candidates))
        self._add_timings(pruning=time.perf_counter() - t0)
        for evaluation in fast:
            if evaluation is not None:
                yield evaluation
        if not pending_rows:
            return
        try:
            payload = pickle.dumps(
                (self.oracle, self.dataset, self.pruners,
                 self.tracer.enabled, self.vectorize))
        except Exception as exc:  # noqa: BLE001 - any pickling failure
            warnings.warn(
                f"oracle context cannot be pickled ({exc}); falling back "
                f"to the thread executor",
                RuntimeWarning,
                stacklevel=3,
            )
            yield from self._fallback_local(pending_rows)
            return
        from ..dist.coordinator import RemoteCoordinator

        digest = fingerprint_digest(context_fingerprint(self.oracle))
        chunk_rows = [
            pending_rows[i:i + _REMOTE_CHUNK]
            for i in range(0, len(pending_rows), _REMOTE_CHUNK)
        ]
        chunks = [[cand for _, cand, _, _ in rows] for rows in chunk_rows]
        coordinator = RemoteCoordinator(
            self.remote_workers, payload, digest)
        try:
            if coordinator.connect() == 0:
                warnings.warn(
                    f"no remote worker reachable at "
                    f"{', '.join(self.remote_workers)}; falling back to "
                    f"the thread executor",
                    RuntimeWarning,
                    stacklevel=3,
                )
                yield from self._fallback_local(pending_rows)
                return
            for fields in coordinator.run(chunks):
                self.tracer.adopt(fields.get("spans") or [])
                counts = fields.get("counts") or {}
                self._count_candidates(
                    vectorized=counts.get("vectorized", 0),
                    scalar=counts.get("scalar", 0))
                if self.metrics is not None:
                    self.metrics.merge_counts(
                        fields.get("metrics") or {},
                        prefix="dist.worker.")
                for evaluation in fields["evaluations"]:
                    self._absorb(evaluation)
                    yield evaluation
            if coordinator.leftover:
                logger.warning(
                    "dist: fleet lost %d chunk(s); evaluating %d "
                    "candidates locally",
                    len(coordinator.leftover),
                    sum(len(chunk_rows[cid])
                        for cid in coordinator.leftover))
                for cid in coordinator.leftover:
                    yield from self._project_pending(chunk_rows[cid])
        finally:
            coordinator.close()
            if self.metrics is not None:
                self.metrics.merge_counts(
                    coordinator.stats, prefix="dist.")

    def _iter_thread(
        self, candidates: Iterable[Candidate]
    ) -> Iterator[Evaluation]:
        """Thread-backend evaluation in :data:`_THREAD_CHUNK` batches
        (:data:`_SERIAL_CHUNK` when single-worker — no pool to starve).

        Chunking amortizes per-candidate dispatch; anytime consumers
        (``--stream``) see results at chunk granularity, which does not
        change the evaluations themselves.  The single-worker default
        consumes the candidate stream lazily, one chunk at a time, so
        first-result latency stays independent of the space size.
        """
        from itertools import islice

        it = iter(candidates)
        if self.workers <= 1:
            chunks = iter(lambda: list(islice(it, _SERIAL_CHUNK)), [])
            for chunk in chunks:
                yield from self.evaluate_many(chunk)
            return
        chunks = iter(lambda: list(islice(it, _THREAD_CHUNK)), [])
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(self.evaluate_many, c) for c in chunks]
            for future in as_completed(futures):
                yield from future.result()

    def _iter_candidates(
        self, candidates: Iterable[Candidate]
    ) -> Iterator[Evaluation]:
        """Dispatch an expanded candidate stream to the active backend
        (the single executor-selection seam ``iter_results`` and
        ``search`` share)."""
        if self.executor == "process":
            yield from self._iter_process(candidates)
        elif self.executor == "remote":
            yield from self._iter_remote(candidates)
        else:
            yield from self._iter_thread(candidates)

    def iter_results(
        self,
        space: SearchSpace,
        *,
        intra: Optional[int] = None,
    ) -> Iterator[Evaluation]:
        """Yield evaluations incrementally as workers complete them.

        Yield *order* follows completion and is nondeterministic with
        multiple workers; the evaluations themselves are not.
        """
        intra = intra or self.oracle.cluster.node.gpus
        yield from self._iter_candidates(space.candidates(intra=intra))

    def search(
        self,
        space: SearchSpace,
        *,
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        weights: Optional[Mapping[str, float]] = None,
        intra: Optional[int] = None,
        on_result=None,
    ) -> SearchReport:
        """Full search: evaluate the space, return frontier + best.

        ``on_result`` is invoked with each :class:`Evaluation` as it
        completes (anytime consumption — streamed progress, early
        frontier display); it does not affect the returned report.

        The report's evaluation list is sorted by candidate key so the
        result is identical whatever the executor backend, worker count,
        or completion order.

        ``report.timings`` carries the per-stage wall-time breakdown the
        CLI's ``--profile`` renders (see :attr:`SearchReport.timings`).
        The dict is a *view over spans*: each stage key is the duration
        of the matching ``search.*`` span (expansion / ranking /
        persistence / the root), with the worker-summed pruning and
        projection busy times folded in from the chunk accumulators —
        so ``--profile`` and a ``--trace`` file can never disagree.
        When no recording tracer is installed a throwaway local tracer
        scopes the stage spans (a handful of allocations per *search*,
        not per candidate), keeping the timings contract identical
        whether or not anyone is tracing.
        """
        # Stage spans always record somewhere: the engine's tracer when
        # observability is on, a local scratch tracer otherwise.
        tracer = self.tracer if self.tracer.enabled else Tracer()
        with self._timings_lock:
            before = dict(self._timings)
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        comm_before = self._comm_stats()
        vec_before = self._vec_snapshot()
        intra = intra or self.oracle.cluster.node.gpus
        root_ctx = tracer.span(
            "search",
            model=getattr(self.oracle.model, "name", "?"),
            executor=self.executor,
            workers=self.workers,
        )
        root = root_ctx.__enter__()
        try:
            with tracer.span("search.expansion") as sp_expand:
                candidates = list(space.candidates(intra=intra))
                sp_expand.attrs["candidates"] = len(candidates)
            logger.info(
                "search: %d candidates expanded (model=%s, executor=%s)",
                len(candidates), root.attrs.get("model"), self.executor)
            evaluations = []
            for evaluation in self._iter_candidates(candidates):
                # Deadline budgets abort between results: bounded
                # latency on the serial path (chunks are checked in
                # evaluate_many too), bounded by chunk completion when
                # a worker pool is driving.
                check_deadline("search.results")
                if on_result is not None:
                    on_result(evaluation)
                evaluations.append(evaluation)
            with tracer.span("search.ranking") as sp_rank:
                evaluations.sort(key=lambda e: e.candidate.key)
                feasible = [e for e in evaluations if e.feasible]
                frontier = pareto_frontier(feasible, objectives)
                best = scalarized_best(frontier, weights)
            stats = {
                "candidates": len(evaluations),
                "feasible": len(feasible),
                "pruned": sum(1 for e in evaluations if e.pruned),
                "infeasible": sum(
                    1 for e in evaluations
                    if not e.feasible and not e.pruned),
                "cache_hits": self.cache.hits - hits_before,
                "cache_misses": self.cache.misses - misses_before,
                "frontier": len(frontier),
            }
            with tracer.span("search.persistence") as sp_persist:
                if self.cache.path is not None:
                    self.cache.save()
            root.attrs.update(stats)
        finally:
            root_ctx.__exit__(None, None, None)
        with self._timings_lock:
            after = dict(self._timings)
        # The timings dict IS the span view (stage durations), plus the
        # cross-worker busy sums the chunk accumulators collect.
        timings = {
            "expansion_s": sp_expand.duration,
            "pruning_s": after.get("pruning_s", 0.0)
            - before.get("pruning_s", 0.0),
            "projection_s": after.get("projection_s", 0.0)
            - before.get("projection_s", 0.0),
            "ranking_s": sp_rank.duration,
            "persistence_s": sp_persist.duration,
            "total_s": root.duration,
        }
        logger.info(
            "search: %d/%d feasible, %d pruned, frontier %d, "
            "%.1f ms wall",
            stats["feasible"], stats["candidates"], stats["pruned"],
            stats["frontier"], timings["total_s"] * 1e3)
        if self.metrics is not None:
            vec_after = self._vec_snapshot()
            vec_delta = {
                key: vec_after.get(key, 0) - vec_before.get(key, 0)
                for key in vec_after
            }
            self._scrape_metrics(
                stats, timings, feasible, comm_before, vec_delta)
        return SearchReport(
            evaluations=evaluations,
            frontier=frontier,
            best=best,
            objectives=tuple(objectives),
            stats=stats,
            timings=timings,
        )

    # ---------------------------------------------------------- observability
    def _comm_stats(self) -> Dict[str, float]:
        """Snapshot of the oracle CommModel's counters (may be absent on
        toy oracles injected by tests)."""
        comm = getattr(
            getattr(self.oracle, "analytical", None), "comm", None)
        if comm is None or not hasattr(comm, "stats"):
            return {}
        out = dict(comm.stats)
        for label, count in getattr(comm, "selections", {}).items():
            out[f"selected.{label}"] = count
        return out

    def _scrape_metrics(self, stats, timings, feasible, comm_before,
                        vec_delta=None) -> None:
        """Fold one search run's counters into the metrics registry.

        Off the hot path by design: the substrate (cache, ``CommModel``)
        keeps plain int counters; this turns their run deltas into
        registry counters / histograms once, after ranking.
        """
        m = self.metrics
        for key in ("candidates", "feasible", "pruned", "infeasible",
                    "frontier"):
            if stats[key]:
                m.counter(f"search.{key}").add(stats[key])
        if vec_delta:
            if vec_delta.get("vectorized"):
                m.counter("search.vectorized_candidates").add(
                    vec_delta["vectorized"])
            if vec_delta.get("scalar"):
                m.counter("search.scalar_fallback_candidates").add(
                    vec_delta["scalar"])
        m.counter("cache.hits").add(stats["cache_hits"])
        m.counter("cache.misses").add(stats["cache_misses"])
        for key, value in self.cache.stats().items():
            if key in ("hits", "misses"):
                continue  # run deltas above; lifetime values as gauges
            m.gauge(f"cache.{key}").set(value)
        comm_after = self._comm_stats()
        for key, value in comm_after.items():
            delta = value - comm_before.get(key, 0)
            if delta:
                m.counter(f"comm.{key}").add(delta)
        hits = comm_after.get("memo_hits", 0) - comm_before.get(
            "memo_hits", 0)
        misses = comm_after.get("memo_misses", 0) - comm_before.get(
            "memo_misses", 0)
        if hits + misses:
            m.gauge("comm.memo_hit_rate").set(hits / (hits + misses))
        for key, value in timings.items():
            m.histogram(f"search.stage.{key}").observe(value)
        epochs = m.histogram("search.epoch_s")
        iters = m.histogram("search.iteration_s")
        for evaluation in feasible:
            epochs.observe(evaluation.epoch_time)
            iters.observe(evaluation.iteration_time)
