"""The search engine: prune -> memoize -> project, fanned out over a
worker pool, folded into a Pareto frontier.

The engine owns no policy of its own: the :class:`~repro.search.space.
SearchSpace` says what to try, :mod:`~repro.search.pruning` says what is
not worth projecting, the :class:`~repro.search.cache.ProjectionCache`
remembers past answers, and :mod:`~repro.search.pareto` ranks the
survivors.  Evaluation order is irrelevant to the result — a search with
one worker returns exactly what a search with N workers returns.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..core.analytical import Projection
from ..core.strategies import Strategy, StrategyError
from ..data.datasets import DatasetSpec
from .cache import CachedFailure, ProjectionCache, context_fingerprint
from .pareto import (
    DEFAULT_OBJECTIVES,
    pareto_frontier,
    scalarized_best,
)
from .pruning import Pruner, PruningContext, apply_pruners
from .space import Candidate, SearchSpace

__all__ = ["Evaluation", "SearchReport", "SearchEngine"]


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate."""

    candidate: Candidate
    strategy: Optional[Strategy] = None
    projection: Optional[Projection] = None
    feasible: bool = False
    reason: str = ""
    pruned: bool = False
    cached: bool = False

    @property
    def epoch_time(self) -> float:
        return self.projection.per_epoch.total

    @property
    def iteration_time(self) -> float:
        return self.projection.per_iteration.total

    @property
    def memory_gb(self) -> float:
        return self.projection.memory_bytes / 1e9

    def describe(self) -> str:
        if self.strategy is not None:
            desc = f"{self.strategy.describe()} B={self.candidate.batch}"
            if self.candidate.comm:
                desc += f" comm={self.candidate.comm}"
            return desc
        return self.candidate.describe()

    def asdict(self) -> Dict[str, object]:
        """JSON-ready summary (for ``--json`` CLI output)."""
        row: Dict[str, object] = {
            "candidate": self.candidate.describe(),
            "strategy": self.strategy.describe() if self.strategy else None,
            "p": self.candidate.p,
            "batch": self.candidate.batch,
            "feasible": self.feasible,
            "pruned": self.pruned,
            "cached": self.cached,
        }
        if self.projection is not None:
            row.update(
                epoch_s=self.epoch_time,
                iteration_s=self.iteration_time,
                memory_gb=self.memory_gb,
                comm_policy=self.projection.comm_policy,
                comm_algorithms=dict(self.projection.comm_algorithms),
            )
        if self.reason:
            row["reason"] = self.reason
        return row


@dataclass
class SearchReport:
    """Everything a search produced, plus bookkeeping counters."""

    evaluations: List[Evaluation]
    frontier: List[Evaluation]
    best: Optional[Evaluation]
    objectives: Sequence[str] = DEFAULT_OBJECTIVES
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def feasible(self) -> List[Evaluation]:
        return [e for e in self.evaluations if e.feasible]

    def asdict(self) -> Dict[str, object]:
        return {
            "objectives": list(self.objectives),
            "stats": dict(self.stats),
            "best": self.best.asdict() if self.best else None,
            "frontier": [e.asdict() for e in self.frontier],
            "evaluated": len(self.evaluations),
        }


class SearchEngine:
    """Evaluates candidate spaces against one oracle + dataset.

    Parameters
    ----------
    oracle:
        A :class:`~repro.core.oracle.ParaDL` instance.
    dataset:
        Training set (its cardinality fixes iterations per epoch).
    cache:
        A :class:`ProjectionCache`, a path string (the engine opens a
        persistent cache there, keyed to this oracle's fingerprint), or
        ``None`` for a fresh in-memory memo.
    pruners:
        Pre-projection filters; default :data:`DEFAULT_PRUNERS`.
    workers:
        Worker-pool width for :meth:`iter_results`.  The default is 1
        (inline evaluation): projections are GIL-bound pure Python, so
        threads only pay off when evaluation blocks — e.g. a future
        oracle backed by real profiling runs or RPC.  Results are
        identical at any width.
    """

    def __init__(
        self,
        oracle,
        dataset: DatasetSpec,
        *,
        cache=None,
        pruners: Optional[Sequence[Pruner]] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.oracle = oracle
        self.dataset = dataset
        fingerprint = context_fingerprint(oracle)
        if cache is None:
            cache = ProjectionCache(context=fingerprint)
        elif isinstance(cache, (str, os.PathLike)):
            cache = ProjectionCache(str(cache), context=fingerprint)
        self.cache = cache
        self.pruners = list(pruners) if pruners is not None else None
        self.workers = workers or 1
        self._ctx = PruningContext(
            model=oracle.model,
            cluster=oracle.cluster,
            gamma=oracle.analytical.gamma,
            delta=oracle.analytical.delta,
        )

    # ------------------------------------------------------------- evaluate
    def _cache_key(self, candidate: Candidate) -> str:
        return f"{candidate.key}@D={self.dataset.num_samples}"

    def evaluate(self, candidate: Candidate) -> Evaluation:
        """Evaluate one candidate: prune, then memoized projection."""
        reason = apply_pruners(candidate, self._ctx, self.pruners)
        if reason is not None:
            return Evaluation(candidate, reason=reason, pruned=True)
        try:
            strategy = candidate.build(self.oracle.model)
        except (StrategyError, ValueError) as exc:
            return Evaluation(candidate, reason=str(exc))
        key = self._cache_key(candidate)
        hit = self.cache.get(key, strategy)
        if isinstance(hit, CachedFailure):
            return Evaluation(
                candidate, strategy, reason=hit.reason, cached=True)
        projection = hit
        cached = projection is not None
        if projection is None:
            try:
                projection = self.oracle.project(
                    strategy, candidate.batch, self.dataset,
                    comm=candidate.comm or None)
            except (StrategyError, ValueError) as exc:
                self.cache.put_failure(key, str(exc))
                return Evaluation(candidate, strategy, reason=str(exc))
            self.cache.put(key, projection)
        if not projection.feasible_memory:
            return Evaluation(
                candidate, strategy, projection,
                feasible=False, cached=cached,
                reason=(f"memory {projection.memory_bytes / 1e9:.1f} GB "
                        f"exceeds "
                        f"{projection.memory_capacity / 1e9:.0f} GB/PE"),
            )
        return Evaluation(
            candidate, strategy, projection, feasible=True, cached=cached)

    # --------------------------------------------------------------- search
    def iter_results(
        self,
        space: SearchSpace,
        *,
        intra: Optional[int] = None,
    ) -> Iterator[Evaluation]:
        """Yield evaluations incrementally as workers complete them.

        Yield *order* follows completion and is nondeterministic with
        multiple workers; the evaluations themselves are not.
        """
        intra = intra or self.oracle.cluster.node.gpus
        candidates: Iterable[Candidate] = space.candidates(intra=intra)
        if self.workers <= 1:
            for cand in candidates:
                yield self.evaluate(cand)
            return
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(self.evaluate, c) for c in candidates]
            for future in as_completed(futures):
                yield future.result()

    def search(
        self,
        space: SearchSpace,
        *,
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        weights: Optional[Mapping[str, float]] = None,
        intra: Optional[int] = None,
        on_result=None,
    ) -> SearchReport:
        """Full search: evaluate the space, return frontier + best.

        ``on_result`` is invoked with each :class:`Evaluation` as it
        completes (anytime consumption — streamed progress, early
        frontier display); it does not affect the returned report.

        The report's evaluation list is sorted by candidate key so the
        result is identical whatever the worker count or completion order.
        """
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        evaluations = []
        for evaluation in self.iter_results(space, intra=intra):
            if on_result is not None:
                on_result(evaluation)
            evaluations.append(evaluation)
        evaluations.sort(key=lambda e: e.candidate.key)
        feasible = [e for e in evaluations if e.feasible]
        frontier = pareto_frontier(feasible, objectives)
        best = scalarized_best(frontier, weights)
        stats = {
            "candidates": len(evaluations),
            "feasible": len(feasible),
            "pruned": sum(1 for e in evaluations if e.pruned),
            "infeasible": sum(
                1 for e in evaluations if not e.feasible and not e.pruned),
            "cache_hits": self.cache.hits - hits_before,
            "cache_misses": self.cache.misses - misses_before,
            "frontier": len(frontier),
        }
        if self.cache.path is not None:
            self.cache.save()
        return SearchReport(
            evaluations=evaluations,
            frontier=frontier,
            best=best,
            objectives=tuple(objectives),
            stats=stats,
        )
