"""The search engine: prune -> memoize -> project, fanned out over a
worker pool, folded into a Pareto frontier.

The engine owns no policy of its own: the :class:`~repro.search.space.
SearchSpace` says what to try, :mod:`~repro.search.pruning` says what is
not worth projecting, the :class:`~repro.search.cache.ProjectionCache`
remembers past answers, and :mod:`~repro.search.pareto` ranks the
survivors.  Evaluation order is irrelevant to the result — a search with
one worker returns exactly what a search with N workers returns, and a
process-pool search returns exactly what a thread-pool search returns.

Two executor backends are available (``executor="thread"`` /
``"process"``).  Projections are pure-Python CPU work, so the thread pool
is GIL-bound and only pays off when evaluation blocks; the process pool
ships the oracle context to worker processes once (pickled, via an
initializer) and then streams candidate chunks, scaling large sweeps
across cores.  The parent keeps sole ownership of the
:class:`ProjectionCache`: cache hits are answered inline before anything
reaches the pool, and worker projections are folded back in, so a warm
cache never re-projects under either backend.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.analytical import Projection
from ..core.strategies import Strategy, StrategyError
from ..data.datasets import DatasetSpec
from ..obs.tracer import NULL_TRACER, Tracer
from .cache import CachedFailure, ProjectionCache, context_fingerprint
from .pareto import (
    DEFAULT_OBJECTIVES,
    pareto_frontier,
    scalarized_best,
)
from .pruning import Pruner, PruningContext, apply_pruners
from .space import Candidate, SearchSpace

__all__ = [
    "Evaluation",
    "SearchReport",
    "SearchEngine",
    "EXECUTORS",
    "TIMING_STAGES",
]

#: Supported evaluation backends.
EXECUTORS = ("thread", "process")

#: Candidates per process-pool task; amortizes IPC without starving
#: workers at the tail of a sweep.
_PROCESS_CHUNK = 16

#: Candidates per thread-backend evaluation batch: one
#: :meth:`SearchEngine.evaluate_many` call amortizes cache-key assembly
#: and timing bookkeeping across the chunk.
_THREAD_CHUNK = 64

#: Stage keys of :attr:`SearchReport.timings` (the ``--profile`` table).
TIMING_STAGES = (
    "expansion_s", "pruning_s", "projection_s", "ranking_s",
    "persistence_s", "total_s",
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate."""

    candidate: Candidate
    strategy: Optional[Strategy] = None
    projection: Optional[Projection] = None
    feasible: bool = False
    reason: str = ""
    pruned: bool = False
    cached: bool = False

    @property
    def epoch_time(self) -> float:
        return self.projection.per_epoch.total

    @property
    def iteration_time(self) -> float:
        return self.projection.per_iteration.total

    @property
    def memory_gb(self) -> float:
        return self.projection.memory_bytes / 1e9

    def describe(self) -> str:
        if self.strategy is not None:
            desc = f"{self.strategy.describe()} B={self.candidate.batch}"
            if self.candidate.comm:
                desc += f" comm={self.candidate.comm}"
            return desc
        return self.candidate.describe()

    def asdict(self) -> Dict[str, object]:
        """JSON-ready summary (for ``--json`` CLI output)."""
        row: Dict[str, object] = {
            "candidate": self.candidate.describe(),
            "strategy": self.strategy.describe() if self.strategy else None,
            "p": self.candidate.p,
            "batch": self.candidate.batch,
            "feasible": self.feasible,
            "pruned": self.pruned,
            "cached": self.cached,
        }
        if self.projection is not None:
            row.update(
                epoch_s=self.epoch_time,
                iteration_s=self.iteration_time,
                memory_gb=self.memory_gb,
                comm_policy=self.projection.comm_policy,
                comm_algorithms=dict(self.projection.comm_algorithms),
            )
        if self.reason:
            row["reason"] = self.reason
        return row


@dataclass
class SearchReport:
    """Everything a search produced, plus bookkeeping counters.

    ``timings`` breaks the wall time into stages (see
    :data:`TIMING_STAGES`): space expansion, pruning (the pre-projection
    fast path, including cache lookups), projection, ranking, and cache
    persistence.  Pruning/projection are *busy* times summed across
    workers (cProfile-``cumtime``-style), so with several threads they
    can legitimately exceed the wall-clock ``total_s``; stages measured
    inside worker processes are not visible to the parent, so under
    ``executor="process"`` the split only covers parent-side work.
    """

    evaluations: List[Evaluation]
    frontier: List[Evaluation]
    best: Optional[Evaluation]
    objectives: Sequence[str] = DEFAULT_OBJECTIVES
    stats: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def feasible(self) -> List[Evaluation]:
        return [e for e in self.evaluations if e.feasible]

    def asdict(self) -> Dict[str, object]:
        # ``timings`` stay off the JSON document deliberately: the
        # envelope is a stable, reproducible contract (scenario-built ==
        # flag-built bit-for-bit) and wall-clock noise would break it.
        # The CLI renders timings via ``--profile`` instead.
        return {
            "objectives": list(self.objectives),
            "stats": dict(self.stats),
            "best": self.best.asdict() if self.best else None,
            "frontier": [e.asdict() for e in self.frontier],
            "evaluated": len(self.evaluations),
        }


# ---------------------------------------------------------------------------
# Process-pool plumbing.  A worker process receives the pickled oracle
# context once (initializer), rebuilds a single-worker engine around it,
# and then evaluates candidate chunks; only candidates that survived the
# parent's prune + cache fast path ever reach a worker.
# ---------------------------------------------------------------------------

_WORKER_ENGINE: Optional["SearchEngine"] = None


def _process_worker_init(payload: bytes) -> None:
    """Pool initializer: rebuild the evaluation context in this process.

    Forces the oracle's projection kernel here, so every worker compiles
    the model invariants exactly once instead of lazily inside its first
    candidate chunk.  When the parent traces, the worker gets its own
    recording :class:`~repro.obs.tracer.Tracer`; its spans ship back
    with each result chunk (see :func:`_process_evaluate_chunk`).
    """
    global _WORKER_ENGINE
    oracle, dataset, pruners, traced = pickle.loads(payload)
    _WORKER_ENGINE = SearchEngine(
        oracle, dataset, pruners=pruners, workers=1,
        tracer=Tracer() if traced else None)
    analytical = getattr(oracle, "analytical", None)
    if analytical is not None and hasattr(analytical, "kernel"):
        analytical.kernel  # noqa: B018 - warm the lazy kernel build


def _process_evaluate_chunk(
    candidates: List[Candidate],
) -> Tuple[List[Evaluation], list]:
    """Evaluate one candidate chunk in the worker's rebuilt engine.

    Returns ``(evaluations, spans)``: the worker drains its tracer into
    the result payload, and the parent re-parents those spans under its
    own active span (:meth:`Tracer.adopt`) — so a traced process-pool
    search renders worker lanes in the same Chrome trace.
    """
    evaluations = _WORKER_ENGINE.evaluate_many(candidates)
    return evaluations, _WORKER_ENGINE.tracer.drain()


class SearchEngine:
    """Evaluates candidate spaces against one oracle + dataset.

    Parameters
    ----------
    oracle:
        A :class:`~repro.core.oracle.ParaDL` instance.
    dataset:
        Training set (its cardinality fixes iterations per epoch).
    cache:
        A :class:`ProjectionCache`, a path string (the engine opens a
        persistent cache there, keyed to this oracle's fingerprint), or
        ``None`` for a fresh in-memory memo.
    cache_dir:
        Alternative to ``cache``: a *directory* of per-(model, cluster)
        cache files shared across sweeps (see
        :meth:`ProjectionCache.for_oracle`).  Mutually exclusive with
        ``cache``.
    pruners:
        Pre-projection filters; default :data:`DEFAULT_PRUNERS`.
    workers:
        Worker-pool width for :meth:`iter_results`.  Defaults to 1 for
        the thread backend (projections are GIL-bound pure Python, so
        threads only pay off when evaluation blocks — e.g. a future
        oracle backed by real profiling runs or RPC) and to the CPU
        count for the process backend.  Results are identical at any
        width.
    executor:
        ``"thread"`` (default) or ``"process"``.  The process backend
        pickles the oracle context into worker processes and evaluates
        candidate chunks there, side-stepping the GIL for large sweeps;
        when the context cannot pickle it warns and falls back to the
        thread backend, so results are never lost to a custom pruner or
        monkey-patched oracle.
    tracer:
        A recording :class:`~repro.obs.tracer.Tracer` to receive engine
        spans (stage phases, per-chunk evaluation, worker fold-ins).
        Default: the shared no-op tracer — near-zero overhead, gated by
        ``benchmarks/test_bench_obs_overhead.py``.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`; after each
        :meth:`search` the engine scrapes run counters into it (cache
        hit/miss/negative/save, ``CommModel`` memo efficiency and
        per-algorithm selections, stage times, epoch-time percentiles).
        ``None`` skips scraping.
    """

    def __init__(
        self,
        oracle,
        dataset: DatasetSpec,
        *,
        cache=None,
        cache_dir: Optional[str] = None,
        pruners: Optional[Sequence[Pruner]] = None,
        workers: Optional[int] = None,
        executor: str = "thread",
        tracer=None,
        metrics=None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.oracle = oracle
        self.dataset = dataset
        fingerprint = context_fingerprint(oracle)
        if cache_dir is not None:
            cache = ProjectionCache.for_oracle(cache_dir, oracle)
        elif cache is None:
            cache = ProjectionCache(context=fingerprint)
        elif isinstance(cache, (str, os.PathLike)):
            cache = ProjectionCache(str(cache), context=fingerprint)
        self.cache = cache
        self.pruners = list(pruners) if pruners is not None else None
        self.executor = executor
        if workers:
            self.workers = workers
        else:
            self.workers = (os.cpu_count() or 1) if executor == "process" else 1
        self._ctx = PruningContext(
            model=oracle.model,
            cluster=oracle.cluster,
            gamma=oracle.analytical.gamma,
            delta=oracle.analytical.delta,
        )
        # Cache keys share one precomputed dataset suffix; candidates
        # memoize their own key component (see Candidate.key), so per-
        # candidate key building is a single concatenation.
        self._key_suffix = f"@D={dataset.num_samples}"
        self._timings: Dict[str, float] = {}
        self._timings_lock = threading.Lock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    # ------------------------------------------------------------- evaluate
    def _cache_key(self, candidate: Candidate) -> str:
        return candidate.key + self._key_suffix

    def _add_timings(self, pruning: float = 0.0, projection: float = 0.0
                     ) -> None:
        with self._timings_lock:
            t = self._timings
            t["pruning_s"] = t.get("pruning_s", 0.0) + pruning
            t["projection_s"] = t.get("projection_s", 0.0) + projection

    def _fast_path(
        self, candidate: Candidate
    ) -> Tuple[Optional[Evaluation], Optional[Strategy]]:
        """Prune + build + cache lookup — everything short of projecting.

        Returns ``(evaluation, strategy)``; ``evaluation`` is ``None``
        exactly when the candidate still needs a projection (in which
        case ``strategy`` is the bound strategy to project).
        """
        reason = apply_pruners(candidate, self._ctx, self.pruners)
        if reason is not None:
            return Evaluation(candidate, reason=reason, pruned=True), None
        try:
            strategy = candidate.build(self.oracle.model)
        except (StrategyError, ValueError) as exc:
            return Evaluation(candidate, reason=str(exc)), None
        hit = self.cache.get(self._cache_key(candidate), strategy)
        if isinstance(hit, CachedFailure):
            return (
                Evaluation(candidate, strategy, reason=hit.reason, cached=True),
                strategy,
            )
        if hit is not None:
            return self._finish(candidate, strategy, hit, cached=True), strategy
        return None, strategy

    def _finish(
        self,
        candidate: Candidate,
        strategy: Strategy,
        projection: Projection,
        *,
        cached: bool,
    ) -> Evaluation:
        """Memory-feasibility verdict for a successful projection."""
        if not projection.feasible_memory:
            return Evaluation(
                candidate, strategy, projection,
                feasible=False, cached=cached,
                reason=(f"memory {projection.memory_bytes / 1e9:.1f} GB "
                        f"exceeds "
                        f"{projection.memory_capacity / 1e9:.0f} GB/PE"),
            )
        return Evaluation(
            candidate, strategy, projection, feasible=True, cached=cached)

    def _project(self, candidate: Candidate, strategy: Strategy) -> Evaluation:
        """Pay for the projection and memoize the outcome (either way)."""
        key = self._cache_key(candidate)
        try:
            projection = self.oracle.project(
                strategy, candidate.batch, self.dataset,
                comm=candidate.comm or None)
        except (StrategyError, ValueError) as exc:
            self.cache.put_failure(key, str(exc))
            return Evaluation(candidate, strategy, reason=str(exc))
        self.cache.put(key, projection)
        return self._finish(candidate, strategy, projection, cached=False)

    def evaluate(self, candidate: Candidate) -> Evaluation:
        """Evaluate one candidate: prune, then memoized projection."""
        evaluation, strategy = self._fast_path(candidate)
        if evaluation is not None:
            return evaluation
        return self._project(candidate, strategy)

    def evaluate_many(
        self, candidates: Sequence[Candidate]
    ) -> List[Evaluation]:
        """Evaluate a chunk of candidates; results keep input order.

        The batched form of :meth:`evaluate`, shared by the thread and
        process backends: the pre-projection fast path (pruning,
        strategy construction, cache lookup) runs for the whole chunk
        first, then the surviving candidates are projected — amortizing
        key building and stage-timing bookkeeping across the chunk
        instead of paying them per candidate.

        Spans are emitted at *chunk* granularity (one
        ``search.evaluate_chunk`` per call), so tracing detail scales
        with chunks, not candidates, and the no-op tracer's cost stays
        amortized across the whole chunk.
        """
        with self.tracer.span(
                "search.evaluate_chunk", candidates=len(candidates)) as sp:
            t0 = time.perf_counter()
            out: List[Optional[Evaluation]] = [None] * len(candidates)
            pending: List[Tuple[int, Candidate, Strategy]] = []
            for i, cand in enumerate(candidates):
                evaluation, strategy = self._fast_path(cand)
                if evaluation is not None:
                    out[i] = evaluation
                else:
                    pending.append((i, cand, strategy))
            t1 = time.perf_counter()
            for i, cand, strategy in pending:
                out[i] = self._project(cand, strategy)
            self._add_timings(
                pruning=t1 - t0, projection=time.perf_counter() - t1)
            sp.attrs["projected"] = len(pending)
        return out

    def _absorb(self, evaluation: Evaluation) -> None:
        """Fold a worker-process evaluation into the parent cache.

        Mirrors what :meth:`_project` would have written locally: a
        successful projection memoizes positively, a projection raise
        memoizes negatively.  Pruned / build-failed / already-cached
        evaluations never reach the pool, so they need no folding.
        """
        key = self._cache_key(evaluation.candidate)
        if evaluation.projection is not None:
            self.cache.put(key, evaluation.projection)
        elif evaluation.strategy is not None:
            self.cache.put_failure(key, evaluation.reason)

    # --------------------------------------------------------------- search
    def _iter_process(
        self, candidates: Iterable[Candidate]
    ) -> Iterator[Evaluation]:
        """Process-pool evaluation: fast path inline, projections fanned
        out in chunks, results folded back into the parent cache."""
        pending: List[Tuple[Candidate, Strategy]] = []
        prune_s = 0.0
        for cand in candidates:
            t0 = time.perf_counter()
            evaluation, strategy = self._fast_path(cand)
            prune_s += time.perf_counter() - t0
            if evaluation is not None:
                yield evaluation
            else:
                pending.append((cand, strategy))
        self._add_timings(pruning=prune_s)
        if not pending:
            return
        try:
            payload = pickle.dumps(
                (self.oracle, self.dataset, self.pruners,
                 self.tracer.enabled))
        except Exception as exc:  # noqa: BLE001 - any pickling failure
            warnings.warn(
                f"oracle context cannot be pickled ({exc}); falling back "
                f"to the thread executor",
                RuntimeWarning,
                stacklevel=3,
            )
            # The fast path already ran (pruners, strategy build, cache
            # lookup); go straight to the projections so stats and cache
            # counters stay identical to the thread backend's.
            if self.workers <= 1:
                for cand, strategy in pending:
                    yield self._project(cand, strategy)
                return
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(self._project, cand, strategy)
                    for cand, strategy in pending
                ]
                for future in as_completed(futures):
                    yield future.result()
            return
        pending_candidates = [cand for cand, _ in pending]
        chunks = [
            pending_candidates[i:i + _PROCESS_CHUNK]
            for i in range(0, len(pending_candidates), _PROCESS_CHUNK)
        ]
        workers = min(self.workers, len(chunks))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_process_worker_init,
            initargs=(payload,),
        ) as pool:
            futures = [
                pool.submit(_process_evaluate_chunk, chunk)
                for chunk in chunks
            ]
            for future in as_completed(futures):
                evaluations, spans = future.result()
                # Worker spans fold in re-parented under the caller's
                # active span (the search root when run via `search`).
                self.tracer.adopt(spans)
                for evaluation in evaluations:
                    self._absorb(evaluation)
                    yield evaluation

    def _iter_thread(
        self, candidates: Iterable[Candidate]
    ) -> Iterator[Evaluation]:
        """Thread-backend evaluation in :data:`_THREAD_CHUNK` batches.

        Chunking amortizes per-candidate dispatch; anytime consumers
        (``--stream``) see results at chunk granularity, which does not
        change the evaluations themselves.  The single-worker default
        consumes the candidate stream lazily, one chunk at a time, so
        first-result latency stays independent of the space size.
        """
        from itertools import islice

        it = iter(candidates)
        chunks = iter(lambda: list(islice(it, _THREAD_CHUNK)), [])
        if self.workers <= 1:
            for chunk in chunks:
                yield from self.evaluate_many(chunk)
            return
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(self.evaluate_many, c) for c in chunks]
            for future in as_completed(futures):
                yield from future.result()

    def _iter_candidates(
        self, candidates: Iterable[Candidate]
    ) -> Iterator[Evaluation]:
        """Dispatch an expanded candidate stream to the active backend
        (the single executor-selection seam ``iter_results`` and
        ``search`` share)."""
        if self.executor == "process":
            yield from self._iter_process(candidates)
        else:
            yield from self._iter_thread(candidates)

    def iter_results(
        self,
        space: SearchSpace,
        *,
        intra: Optional[int] = None,
    ) -> Iterator[Evaluation]:
        """Yield evaluations incrementally as workers complete them.

        Yield *order* follows completion and is nondeterministic with
        multiple workers; the evaluations themselves are not.
        """
        intra = intra or self.oracle.cluster.node.gpus
        yield from self._iter_candidates(space.candidates(intra=intra))

    def search(
        self,
        space: SearchSpace,
        *,
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        weights: Optional[Mapping[str, float]] = None,
        intra: Optional[int] = None,
        on_result=None,
    ) -> SearchReport:
        """Full search: evaluate the space, return frontier + best.

        ``on_result`` is invoked with each :class:`Evaluation` as it
        completes (anytime consumption — streamed progress, early
        frontier display); it does not affect the returned report.

        The report's evaluation list is sorted by candidate key so the
        result is identical whatever the executor backend, worker count,
        or completion order.

        ``report.timings`` carries the per-stage wall-time breakdown the
        CLI's ``--profile`` renders (see :attr:`SearchReport.timings`).
        The dict is a *view over spans*: each stage key is the duration
        of the matching ``search.*`` span (expansion / ranking /
        persistence / the root), with the worker-summed pruning and
        projection busy times folded in from the chunk accumulators —
        so ``--profile`` and a ``--trace`` file can never disagree.
        When no recording tracer is installed a throwaway local tracer
        scopes the stage spans (a handful of allocations per *search*,
        not per candidate), keeping the timings contract identical
        whether or not anyone is tracing.
        """
        # Stage spans always record somewhere: the engine's tracer when
        # observability is on, a local scratch tracer otherwise.
        tracer = self.tracer if self.tracer.enabled else Tracer()
        with self._timings_lock:
            before = dict(self._timings)
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        comm_before = self._comm_stats()
        intra = intra or self.oracle.cluster.node.gpus
        root_ctx = tracer.span(
            "search",
            model=getattr(self.oracle.model, "name", "?"),
            executor=self.executor,
            workers=self.workers,
        )
        root = root_ctx.__enter__()
        try:
            with tracer.span("search.expansion") as sp_expand:
                candidates = list(space.candidates(intra=intra))
                sp_expand.attrs["candidates"] = len(candidates)
            logger.info(
                "search: %d candidates expanded (model=%s, executor=%s)",
                len(candidates), root.attrs.get("model"), self.executor)
            evaluations = []
            for evaluation in self._iter_candidates(candidates):
                if on_result is not None:
                    on_result(evaluation)
                evaluations.append(evaluation)
            with tracer.span("search.ranking") as sp_rank:
                evaluations.sort(key=lambda e: e.candidate.key)
                feasible = [e for e in evaluations if e.feasible]
                frontier = pareto_frontier(feasible, objectives)
                best = scalarized_best(frontier, weights)
            stats = {
                "candidates": len(evaluations),
                "feasible": len(feasible),
                "pruned": sum(1 for e in evaluations if e.pruned),
                "infeasible": sum(
                    1 for e in evaluations
                    if not e.feasible and not e.pruned),
                "cache_hits": self.cache.hits - hits_before,
                "cache_misses": self.cache.misses - misses_before,
                "frontier": len(frontier),
            }
            with tracer.span("search.persistence") as sp_persist:
                if self.cache.path is not None:
                    self.cache.save()
            root.attrs.update(stats)
        finally:
            root_ctx.__exit__(None, None, None)
        with self._timings_lock:
            after = dict(self._timings)
        # The timings dict IS the span view (stage durations), plus the
        # cross-worker busy sums the chunk accumulators collect.
        timings = {
            "expansion_s": sp_expand.duration,
            "pruning_s": after.get("pruning_s", 0.0)
            - before.get("pruning_s", 0.0),
            "projection_s": after.get("projection_s", 0.0)
            - before.get("projection_s", 0.0),
            "ranking_s": sp_rank.duration,
            "persistence_s": sp_persist.duration,
            "total_s": root.duration,
        }
        logger.info(
            "search: %d/%d feasible, %d pruned, frontier %d, "
            "%.1f ms wall",
            stats["feasible"], stats["candidates"], stats["pruned"],
            stats["frontier"], timings["total_s"] * 1e3)
        if self.metrics is not None:
            self._scrape_metrics(stats, timings, feasible, comm_before)
        return SearchReport(
            evaluations=evaluations,
            frontier=frontier,
            best=best,
            objectives=tuple(objectives),
            stats=stats,
            timings=timings,
        )

    # ---------------------------------------------------------- observability
    def _comm_stats(self) -> Dict[str, float]:
        """Snapshot of the oracle CommModel's counters (may be absent on
        toy oracles injected by tests)."""
        comm = getattr(
            getattr(self.oracle, "analytical", None), "comm", None)
        if comm is None or not hasattr(comm, "stats"):
            return {}
        out = dict(comm.stats)
        for label, count in getattr(comm, "selections", {}).items():
            out[f"selected.{label}"] = count
        return out

    def _scrape_metrics(self, stats, timings, feasible, comm_before) -> None:
        """Fold one search run's counters into the metrics registry.

        Off the hot path by design: the substrate (cache, ``CommModel``)
        keeps plain int counters; this turns their run deltas into
        registry counters / histograms once, after ranking.
        """
        m = self.metrics
        for key in ("candidates", "feasible", "pruned", "infeasible",
                    "frontier"):
            if stats[key]:
                m.counter(f"search.{key}").add(stats[key])
        m.counter("cache.hits").add(stats["cache_hits"])
        m.counter("cache.misses").add(stats["cache_misses"])
        for key, value in self.cache.stats().items():
            if key in ("hits", "misses"):
                continue  # run deltas above; lifetime values as gauges
            m.gauge(f"cache.{key}").set(value)
        comm_after = self._comm_stats()
        for key, value in comm_after.items():
            delta = value - comm_before.get(key, 0)
            if delta:
                m.counter(f"comm.{key}").add(delta)
        hits = comm_after.get("memo_hits", 0) - comm_before.get(
            "memo_hits", 0)
        misses = comm_after.get("memo_misses", 0) - comm_before.get(
            "memo_misses", 0)
        if hits + misses:
            m.gauge("comm.memo_hit_rate").set(hits / (hits + misses))
        for key, value in timings.items():
            m.histogram(f"search.stage.{key}").observe(value)
        epochs = m.histogram("search.epoch_s")
        iters = m.histogram("search.iteration_s")
        for evaluation in feasible:
            epochs.observe(evaluation.epoch_time)
            iters.observe(evaluation.iteration_time)
