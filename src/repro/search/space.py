"""Declarative candidate spaces for the strategy search (the "what to try").

A :class:`SearchSpace` describes a grid over strategy id x (p1, p2)
factorization x PE budget x global batch x micro-batch count, and expands
it lazily into concrete :class:`Candidate` configurations.  Expansion is
divisor-aware: hybrid strategies only enumerate ``p = p1 * p2``
factorizations that actually exist, instead of a dense (p1, p2) grid.

Candidates are *descriptions*, deliberately independent of any model or
cluster, so they can serve as stable cache keys; :meth:`Candidate.build`
binds one to a :class:`~repro.core.graph.ModelGraph` as a concrete
:class:`~repro.core.strategies.Strategy`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from ..core.caching import cached_property
from typing import Iterator, Optional, Tuple

from ..collectives.selector import POLICIES
from ..core.graph import ModelGraph
from ..core.math_utils import divisors
from ..core.strategies import (
    ChannelParallel,
    DataFilterParallel,
    DataParallel,
    DataSpatialParallel,
    FilterParallel,
    PipelineParallel,
    ShardedDataParallel,
    SpatialParallel,
    Strategy,
    _square_grid,
)

__all__ = ["Candidate", "SearchSpace", "WEAK_SCALING_IDS", "DEFAULT_STRATEGIES"]

#: Strategy ids whose de-facto scaling mode grows B with p (Section 4.2);
#: mirrors :attr:`~repro.core.strategies.Strategy.is_weak_scaling`.
WEAK_SCALING_IDS = ("d", "z", "df", "ds")

DEFAULT_STRATEGIES = ("d", "z", "s", "p", "f", "c", "df", "ds")

#: Strategy ids that carry a (p1, p2) hybrid factorization.
_HYBRID_IDS = ("df", "ds")


@dataclass(frozen=True)
class Candidate:
    """One fully-specified point of the search space.

    ``p1``/``p2`` are the data/model dimensions of hybrid strategies (0
    when not applicable); ``segments`` is the pipeline micro-batch count S
    (0 when not applicable).  ``batch`` is the *global* mini-batch B.
    ``comm`` is the communication policy this candidate should be costed
    under ("" = the evaluating oracle's own policy).
    """

    sid: str
    p: int
    batch: int
    p1: int = 0
    p2: int = 0
    segments: int = 0
    comm: str = ""

    @cached_property
    def key(self) -> str:
        """Stable string identity — the projection-cache key component.

        Cached on the (frozen) candidate: the engine consults it for
        every cache lookup, sort, and dedup, and the format is part of
        the persisted cache contract — ``tests/test_search_engine.py``
        pins it against the literal assembly.
        """
        return (f"{self.sid}:p={self.p}:b={self.batch}"
                f":p1={self.p1}:p2={self.p2}:s={self.segments}"
                f":comm={self.comm or 'default'}")

    def describe(self) -> str:
        parts = [f"p={self.p}"]
        if self.p1:
            parts.append(f"p1={self.p1},p2={self.p2}")
        if self.segments:
            parts.append(f"S={self.segments}")
        parts.append(f"B={self.batch}")
        if self.comm:
            parts.append(f"comm={self.comm}")
        return f"{self.sid}({', '.join(parts)})"

    def build(self, model: ModelGraph) -> Strategy:
        """Bind to ``model`` as a concrete strategy configuration.

        May raise :class:`~repro.core.strategies.StrategyError` for
        configurations the model cannot host (callers treat that as an
        infeasible candidate, not an error).
        """
        ndim = model.input_spec.ndim
        if self.sid == "d":
            return DataParallel(self.p)
        if self.sid == "z":
            return ShardedDataParallel(self.p)
        if self.sid == "s":
            return SpatialParallel(_square_grid(self.p, ndim))
        if self.sid == "p":
            return PipelineParallel(self.p, segments=self.segments or 4)
        if self.sid == "f":
            return FilterParallel(self.p)
        if self.sid == "c":
            return ChannelParallel(self.p)
        if self.sid == "df":
            return DataFilterParallel(groups=self.p1, parts=self.p2)
        if self.sid == "ds":
            return DataSpatialParallel(
                groups=self.p1, grid=_square_grid(self.p2, ndim))
        raise ValueError(f"unknown strategy id {self.sid!r}")


@dataclass(frozen=True)
class SearchSpace:
    """Declarative grid over the strategy-configuration space.

    Parameters
    ----------
    strategies:
        Short strategy ids to consider.
    pe_budgets:
        PE counts to plan for.  Hybrids factorize each budget.
    samples_per_pe:
        Weak-scaling grain: weak scalers use ``B = spp * p``.
    fixed_batches:
        Global batches for strong scalers (filter/channel/spatial/
        pipeline).  Empty means "derive one per ``samples_per_pe`` as
        ``spp * intra``" — the paper's Figure-3 convention.
    segments:
        Pipeline micro-batch counts S to sweep.
    min_model_dim / max_model_dim:
        Bounds on the hybrid model-parallel dimension p2 (``max_model_dim
        = None`` allows up to p itself).
    comm_policies:
        Communication policies to sweep per candidate ("paper" / "auto" /
        "nccl-like").  Empty (the default) costs every candidate under
        the evaluating oracle's own policy.
    exhaustive:
        Widen the grid from the declared PE-budget ladder to *every* PE
        count in ``[1, max(pe_budgets)]``, and sweep hybrid
        factorizations over the full divisor lattice (``p2`` from 1 up
        to ``p``, ``min_model_dim``/``max_model_dim`` notwithstanding).
        Candidate counts grow by roughly an order of magnitude — the
        mode is paired with the engine's vectorized projection path
        (``docs/performance.md``).
    """

    strategies: Tuple[str, ...] = DEFAULT_STRATEGIES
    pe_budgets: Tuple[int, ...] = (64,)
    samples_per_pe: Tuple[int, ...] = (32,)
    fixed_batches: Tuple[int, ...] = ()
    segments: Tuple[int, ...] = (2, 4, 8)
    min_model_dim: int = 2
    max_model_dim: Optional[int] = None
    comm_policies: Tuple[str, ...] = ()
    exhaustive: bool = False

    def __post_init__(self) -> None:
        if not self.strategies:
            raise ValueError("need at least one strategy id")
        unknown = sorted(set(self.strategies) - set(DEFAULT_STRATEGIES))
        if unknown:
            raise ValueError(
                f"unknown strategy ids {unknown}; "
                f"choose from {sorted(DEFAULT_STRATEGIES)}"
            )
        if any(p < 1 for p in self.pe_budgets) or not self.pe_budgets:
            raise ValueError("pe_budgets must be positive and non-empty")
        if any(s < 1 for s in self.samples_per_pe) or not self.samples_per_pe:
            raise ValueError("samples_per_pe must be positive and non-empty")
        if any(s < 1 for s in self.segments):
            raise ValueError("segments must be positive")
        bad = sorted(set(self.comm_policies) - set(POLICIES))
        if bad:
            raise ValueError(
                f"unknown comm policies {bad}; choose from {sorted(POLICIES)}"
            )

    # ------------------------------------------------------------ expansion
    def _strong_batches(self, intra: int) -> Tuple[int, ...]:
        if self.fixed_batches:
            return tuple(sorted(set(self.fixed_batches)))
        return tuple(sorted({spp * intra for spp in self.samples_per_pe}))

    def candidates(self, *, intra: int = 4) -> Iterator[Candidate]:
        """Lazily expand the grid into candidates, deterministically ordered.

        ``intra`` is the node GPU count: it only sets the default
        strong-scaling batch grain (the paper runs strong scalers at one
        node's worth of samples).
        """
        strong_batches = self._strong_batches(intra)
        policies: Tuple[str, ...] = self.comm_policies or ("",)
        seen = set()
        budgets = (
            range(1, max(self.pe_budgets) + 1) if self.exhaustive
            else sorted(set(self.pe_budgets))
        )
        for p in budgets:
            for sid in self.strategies:
                for base in self._expand(sid, p, strong_batches):
                    for policy in policies:
                        cand = (
                            replace(base, comm=policy) if policy else base
                        )
                        if cand.key not in seen:
                            seen.add(cand.key)
                            yield cand

    def _expand(
        self, sid: str, p: int, strong_batches: Tuple[int, ...]
    ) -> Iterator[Candidate]:
        if sid in _HYBRID_IDS:
            if self.exhaustive:
                lo, cap = 1, p
            else:
                lo = self.min_model_dim
                cap = (
                    self.max_model_dim if self.max_model_dim is not None
                    else p
                )
            for p2 in divisors(p):
                if not lo <= p2 <= cap:
                    continue
                p1 = p // p2
                if p1 < 1:
                    continue
                for spp in self.samples_per_pe:
                    # Hybrids weak-scale at B = spp * p, the same grain
                    # ParaDL.suggest uses — so search results are directly
                    # comparable to the fixed ranking.  (search_hybrid
                    # scales per data-parallel *group* instead, B = spp *
                    # p1; the same (p1, p2) config projects differently
                    # there by design.)
                    yield Candidate(sid, p, batch=spp * p1 * p2, p1=p1, p2=p2)
        elif sid in WEAK_SCALING_IDS:
            for spp in self.samples_per_pe:
                yield Candidate(sid, p, batch=spp * p)
        elif sid == "p":
            for batch in strong_batches:
                for seg in sorted(set(self.segments)):
                    if seg <= batch:
                        yield Candidate(sid, p, batch=batch, segments=seg)
        else:  # strong scalers: s, f, c
            for batch in strong_batches:
                yield Candidate(sid, p, batch=batch)

    def count(self, *, intra: int = 4) -> int:
        """Number of candidates the lazy expansion will yield."""
        return sum(1 for _ in self.candidates(intra=intra))
