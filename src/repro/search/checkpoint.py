"""Crash-safe sweep checkpointing: an append-only journal of finished cells.

A zoo sweep is a loop of expensive, independent searches — exactly the
shape that deserves to survive a crash.  :class:`SweepCheckpoint` keeps
a JSONL journal next to the sweep: a header line pinning the sweep's
configuration, then one ``cell`` line per completed model, appended
with flush+fsync *after* that model's search finishes.  Kill the
process anywhere and the journal holds every finished cell; re-running
with ``resume=True`` (``repro sweep --resume``) skips those models and
replays their results.

Byte-identity is the contract (and the chaos battery pins it): a
resumed sweep's ``summary.csv`` and ``frontier_<model>.csv`` artifacts
are byte-identical to an uninterrupted run.  That works because a
replayed cell reconstructs lightweight evaluation objects carrying the
*exact journaled values* — ``csv.writer`` stringifies floats via
``repr`` and ``json`` round-trips ``repr`` losslessly, so the standard
:func:`~repro.search.sweep.write_frontier_csv` /
``write_summary_csv`` writers emit the same bytes without special
cases.  (The ``seconds`` column is each cell's *original* search
duration, replayed verbatim.)

Format (one JSON document per line)::

    {"kind": "header", "schema": 1, "meta": {...}}    # sweep identity
    {"kind": "cell", "model": ..., "seconds": ...,
     "cache_file": ..., "summary_row": {...},
     "frontier_rows": [[...], ...], "report": {...}}  # per finished model

A torn final line (crash mid-append) is tolerated and ignored on load.
Resuming against a journal whose ``meta`` disagrees with the current
sweep configuration is refused — silently mixing two different sweeps'
cells would corrupt the report.
"""

from __future__ import annotations

import json
import logging
import os
from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence

logger = logging.getLogger(__name__)

__all__ = ["SweepCheckpoint", "ReplayedReport", "CHECKPOINT_SCHEMA"]

#: Bumped on any incompatible journal format change.
CHECKPOINT_SCHEMA = 1


def frontier_rows(report) -> List[list]:
    """The exact cell lists ``write_frontier_csv`` writes for ``report``
    (header row excluded) — the journaled form of a frontier."""
    rows: List[list] = []
    for rank, e in enumerate(report.frontier, start=1):
        c = e.candidate
        proj = e.projection
        rows.append([
            rank, e.describe(), c.sid, c.p, c.p1, c.p2, c.segments,
            c.batch, proj.comm_policy, e.epoch_time, e.iteration_time,
            e.memory_gb,
            ";".join(f"{ph}={al}" for ph, al in proj.comm_algorithms),
        ])
    return rows


class _ReplayedEval:
    """A frontier entry rebuilt from its journaled CSV row.

    Carries exactly the values the original evaluation contributed to
    the artifacts, shaped like an
    :class:`~repro.search.engine.Evaluation` where the sweep writers
    and CLI presenters look (``describe()``, the three objective
    attributes, ``candidate``, ``projection``).
    """

    __slots__ = ("_config", "candidate", "projection", "epoch_time",
                 "iteration_time", "memory_gb", "feasible")

    def __init__(self, row: Sequence[object]) -> None:
        (_rank, config, sid, p, p1, p2, segments, batch, comm_policy,
         epoch_s, iteration_s, memory_gb, algos) = row
        self._config = str(config)
        self.candidate = SimpleNamespace(
            sid=sid, p=p, p1=p1, p2=p2, segments=segments, batch=batch)
        self.projection = SimpleNamespace(
            comm_policy=comm_policy,
            comm_algorithms=tuple(
                tuple(part.split("=", 1))
                for part in str(algos).split(";") if part
            ),
        )
        self.epoch_time = epoch_s
        self.iteration_time = iteration_s
        self.memory_gb = memory_gb
        self.feasible = True  # frontier entries are feasible by definition

    def describe(self) -> str:
        return self._config


class _ReplayedBest:
    """The per-model best pick rebuilt from the journaled summary row."""

    __slots__ = ("_describe", "epoch_time", "iteration_time", "memory_gb",
                 "projection")

    def __init__(self, row: Dict[str, object]) -> None:
        self._describe = str(row["best"])
        self.epoch_time = row["epoch_s"]
        self.iteration_time = row["iteration_s"]
        self.memory_gb = row["memory_gb"]
        self.projection = SimpleNamespace(comm_policy=row["comm_policy"])

    def describe(self) -> str:
        return self._describe


class ReplayedReport:
    """A finished model's search report, rebuilt from the journal.

    Quacks like :class:`~repro.search.engine.SearchReport` everywhere
    the sweep layer looks: ``frontier`` / ``best`` / ``stats`` for the
    artifact writers and CLI, ``asdict()`` returning the journaled
    envelope verbatim so ``--json`` output is byte-identical too.
    """

    def __init__(self, *, summary_row: Dict[str, object],
                 rows: Sequence[Sequence[object]],
                 report_blob: Dict[str, object]) -> None:
        self._blob = report_blob
        self.frontier = tuple(_ReplayedEval(row) for row in rows)
        self.best: Optional[_ReplayedBest] = (
            None if report_blob.get("best") is None
            else _ReplayedBest(summary_row))
        self.stats: Dict[str, object] = dict(report_blob.get("stats", {}))
        self.objectives = tuple(report_blob.get("objectives", ()))
        self.evaluations: tuple = ()
        self.replayed = True

    def asdict(self) -> Dict[str, object]:
        return json.loads(json.dumps(self._blob))


class SweepCheckpoint:
    """The append-only journal (see module docstring for the format)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = None

    # ------------------------------------------------------------- lifecycle
    def prepare(self, meta: Dict[str, object], *,
                resume: bool = False) -> Dict[str, Dict[str, object]]:
        """Open the journal; returns ``{model: cell}`` for cells already
        finished (empty unless resuming an existing journal).

        * missing file — start fresh (header written) whether or not
          ``resume`` was asked; resuming nothing is a fresh run.
        * existing file + ``resume`` — validate the header against
          ``meta`` and load finished cells; new cells append.
        * existing file, no ``resume`` — truncate and start fresh (the
          caller chose a checkpoint path; without ``--resume`` a re-run
          means "from the top").
        """
        completed: Dict[str, Dict[str, object]] = {}
        if resume and os.path.exists(self.path):
            completed = self._load(meta)
            self._fh = open(self.path, "a")
        else:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "w")
            self._append({
                "kind": "header",
                "schema": CHECKPOINT_SCHEMA,
                "meta": meta,
            })
        return completed

    def _load(self, meta: Dict[str, object]
              ) -> Dict[str, Dict[str, object]]:
        completed: Dict[str, Dict[str, object]] = {}
        with open(self.path) as fh:
            lines = fh.read().splitlines()
        if not lines:
            raise ValueError(
                f"checkpoint {self.path} is empty (no header); "
                f"remove it to start fresh")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"checkpoint {self.path} has an unreadable header: "
                f"{exc}") from exc
        if header.get("kind") != "header":
            raise ValueError(
                f"checkpoint {self.path} does not start with a header "
                f"line")
        if header.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint {self.path} uses schema "
                f"{header.get('schema')!r}; this build reads "
                f"{CHECKPOINT_SCHEMA}")
        recorded = header.get("meta", {})
        if recorded != meta:
            drift = sorted(
                key for key in set(recorded) | set(meta)
                if recorded.get(key) != meta.get(key))
            raise ValueError(
                f"checkpoint {self.path} was written by a different "
                f"sweep configuration (differs on: {', '.join(drift)}); "
                f"remove it or re-run the original configuration")
        for i, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                cell = json.loads(line)
            except json.JSONDecodeError:
                # A torn tail is the expected crash signature: the cell
                # being appended when the process died never finished,
                # so its model simply re-runs.
                logger.warning(
                    "checkpoint %s: ignoring torn line %d (crash "
                    "mid-append)", self.path, i)
                continue
            if cell.get("kind") != "cell" or "model" not in cell:
                logger.warning(
                    "checkpoint %s: ignoring malformed line %d",
                    self.path, i)
                continue
            completed[str(cell["model"])] = cell
        return completed

    def record(self, cell: Dict[str, object]) -> None:
        """Append one finished cell, durably (flush + fsync)."""
        if self._fh is None:
            raise RuntimeError("checkpoint not prepared")
        self._append(cell)

    def _append(self, blob: Dict[str, object]) -> None:
        self._fh.write(json.dumps(blob) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
