"""Automated parallel-strategy search (the oracle's sweep, industrialized).

``ParaDL.suggest`` ranks a fixed strategy list at one PE count; this
package turns that into a proper planner: a declarative
:class:`SearchSpace` over strategy x factorization x PE budget x batch x
micro-batch x comm policy, feasibility pruning before any projection is
paid for, a persistent :class:`ProjectionCache` (single file, or one
fingerprinted file per model inside a shared ``cache_dir``), a
worker-pool :class:`SearchEngine` (thread or process executor), and
multi-objective Pareto ranking of the survivors.  :class:`SweepRunner`
orchestrates all of it across a model zoo and emits consolidated
frontier reports.

>>> from repro.search import SearchEngine, SearchSpace          # doctest: +SKIP
>>> engine = SearchEngine(oracle, IMAGENET, cache="plan.json")  # doctest: +SKIP
>>> report = engine.search(SearchSpace(pe_budgets=(64,)))       # doctest: +SKIP
>>> report.best.describe(), report.best.epoch_time              # doctest: +SKIP
"""

from .space import Candidate, SearchSpace, DEFAULT_STRATEGIES
from .pruning import (
    DEFAULT_PRUNERS,
    PruningContext,
    apply_pruners,
    prune_memory_lower_bound,
    prune_structure,
)
from .cache import (
    CACHE_VERSION,
    ProjectionCache,
    cache_file_for,
    context_fingerprint,
    fingerprint_digest,
)
from .pareto import (
    DEFAULT_OBJECTIVES,
    DEFAULT_WEIGHTS,
    OBJECTIVES,
    dominates,
    pareto_frontier,
    scalarized_best,
)
from .checkpoint import CHECKPOINT_SCHEMA, ReplayedReport, SweepCheckpoint
from .engine import EXECUTORS, Evaluation, SearchEngine, SearchReport
from .sweep import (
    SUMMARY_COLUMNS,
    SweepReport,
    SweepResult,
    SweepRunner,
    plot_frontiers,
    write_frontier_csv,
    write_summary_csv,
)

__all__ = [
    "Candidate",
    "SearchSpace",
    "DEFAULT_STRATEGIES",
    "PruningContext",
    "DEFAULT_PRUNERS",
    "apply_pruners",
    "prune_structure",
    "prune_memory_lower_bound",
    "ProjectionCache",
    "context_fingerprint",
    "fingerprint_digest",
    "cache_file_for",
    "CACHE_VERSION",
    "OBJECTIVES",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_WEIGHTS",
    "dominates",
    "pareto_frontier",
    "scalarized_best",
    "Evaluation",
    "SearchEngine",
    "SearchReport",
    "EXECUTORS",
    "SweepRunner",
    "SweepReport",
    "SweepResult",
    "SweepCheckpoint",
    "ReplayedReport",
    "CHECKPOINT_SCHEMA",
    "SUMMARY_COLUMNS",
    "write_frontier_csv",
    "write_summary_csv",
    "plot_frontiers",
]
