"""Automated parallel-strategy search (the oracle's sweep, industrialized).

``ParaDL.suggest`` ranks a fixed strategy list at one PE count; this
package turns that into a proper planner: a declarative
:class:`SearchSpace` over strategy x factorization x PE budget x batch x
micro-batch, feasibility pruning before any projection is paid for, a
persistent :class:`ProjectionCache`, a worker-pool :class:`SearchEngine`,
and multi-objective Pareto ranking of the survivors.

>>> from repro.search import SearchEngine, SearchSpace          # doctest: +SKIP
>>> engine = SearchEngine(oracle, IMAGENET, cache="plan.json")  # doctest: +SKIP
>>> report = engine.search(SearchSpace(pe_budgets=(64,)))       # doctest: +SKIP
>>> report.best.describe(), report.best.epoch_time              # doctest: +SKIP
"""

from .space import Candidate, SearchSpace, DEFAULT_STRATEGIES
from .pruning import (
    DEFAULT_PRUNERS,
    PruningContext,
    apply_pruners,
    prune_memory_lower_bound,
    prune_structure,
)
from .cache import CACHE_VERSION, ProjectionCache, context_fingerprint
from .pareto import (
    DEFAULT_OBJECTIVES,
    DEFAULT_WEIGHTS,
    OBJECTIVES,
    dominates,
    pareto_frontier,
    scalarized_best,
)
from .engine import Evaluation, SearchEngine, SearchReport

__all__ = [
    "Candidate",
    "SearchSpace",
    "DEFAULT_STRATEGIES",
    "PruningContext",
    "DEFAULT_PRUNERS",
    "apply_pruners",
    "prune_structure",
    "prune_memory_lower_bound",
    "ProjectionCache",
    "context_fingerprint",
    "CACHE_VERSION",
    "OBJECTIVES",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_WEIGHTS",
    "dominates",
    "pareto_frontier",
    "scalarized_best",
    "Evaluation",
    "SearchEngine",
    "SearchReport",
]
