"""Multi-model sweep orchestration: one search per zoo model, one report.

The oracle answers "which strategy for *this* CNN on *this* cluster?";
a production planning session asks that for a whole model zoo at once.
:class:`SweepRunner` fans a :class:`~repro.search.space.SearchSpace` x
model-zoo x comm-policy grid out over a
:class:`~repro.search.engine.SearchEngine` per model — process-pool
backed by default, so projections scale across cores — reusing one
shared cross-model cache directory (per-(model, cluster) files, see
:func:`~repro.search.cache.cache_file_for`), and folds the per-model
Pareto frontiers into a consolidated :class:`SweepReport`:

* per-model frontier CSVs (:func:`write_frontier_csv`),
* a cross-model summary table (``summary.csv`` + formatted text),
* an optional matplotlib frontier plot (soft import — sweeping never
  requires matplotlib; :func:`plot_frontiers` returns ``None`` without it).

Entry points: ``ParaDL.sweep(...)``, ``repro sweep`` in the CLI, and
:func:`repro.harness.experiments.run_sweep`.
"""

from __future__ import annotations

import csv
import logging
import os
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..data.datasets import DatasetSpec
from ..faults import FaultError, check_deadline
from ..faults import fire as _fire_fault
from ..network.topology import ClusterSpec, abci_like_cluster
from ..obs.tracer import NULL_TRACER
from .checkpoint import ReplayedReport, SweepCheckpoint
from .checkpoint import frontier_rows as _frontier_rows
from .engine import Evaluation, SearchEngine, SearchReport
from .pareto import DEFAULT_OBJECTIVES
from .space import DEFAULT_STRATEGIES, SearchSpace

logger = logging.getLogger(__name__)

__all__ = [
    "SweepResult",
    "SweepReport",
    "SweepRunner",
    "write_frontier_csv",
    "write_summary_csv",
    "plot_frontiers",
    "SUMMARY_COLUMNS",
]

#: Cross-model summary schema (one row per swept model).
SUMMARY_COLUMNS = (
    "model", "best", "epoch_s", "iteration_s", "memory_gb", "comm_policy",
    "frontier", "candidates", "feasible", "pruned", "cache_hits", "seconds",
)


def write_frontier_csv(path: str, report: SearchReport) -> str:
    """Export a search report's Pareto frontier as CSV; returns ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "rank", "config", "strategy", "p", "p1", "p2", "segments",
            "batch", "comm_policy", "epoch_s", "iteration_s", "memory_gb",
            "comm_algorithms",
        ])
        for row in _frontier_rows(report):
            writer.writerow(row)
    return path


@dataclass
class SweepResult:
    """One model's search outcome inside a sweep."""

    model: str
    report: SearchReport
    seconds: float
    cache_file: Optional[str] = None

    @property
    def best(self) -> Optional[Evaluation]:
        return self.report.best

    def summary_row(self) -> Dict[str, object]:
        """This model's :data:`SUMMARY_COLUMNS` row."""
        best = self.report.best
        stats = self.report.stats
        return {
            "model": self.model,
            "best": best.describe() if best else "(infeasible)",
            "epoch_s": best.epoch_time if best else float("nan"),
            "iteration_s": best.iteration_time if best else float("nan"),
            "memory_gb": best.memory_gb if best else float("nan"),
            "comm_policy": (
                best.projection.comm_policy if best else ""),
            "frontier": stats.get("frontier", 0),
            "candidates": stats.get("candidates", 0),
            "feasible": stats.get("feasible", 0),
            "pruned": stats.get("pruned", 0),
            "cache_hits": stats.get("cache_hits", 0),
            "seconds": self.seconds,
        }

    def asdict(self) -> Dict[str, object]:
        blob = dict(self.summary_row())
        blob["report"] = self.report.asdict()
        blob["cache_file"] = self.cache_file
        return blob


@dataclass
class SweepReport:
    """Consolidated outcome of a multi-model sweep."""

    results: List[SweepResult]
    objectives: Sequence[str] = DEFAULT_OBJECTIVES
    seconds: float = 0.0
    artifacts: Dict[str, str] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def result_for(self, model: str) -> SweepResult:
        for result in self.results:
            if result.model == model:
                return result
        raise KeyError(f"model {model!r} not in this sweep")

    @property
    def best_overall(self) -> Optional[SweepResult]:
        """The swept model with the fastest best epoch (``None`` if no
        model had a feasible configuration)."""
        with_best = [r for r in self.results if r.best is not None]
        if not with_best:
            return None
        return min(with_best, key=lambda r: r.best.epoch_time)

    def summary_rows(self) -> List[Dict[str, object]]:
        return [r.summary_row() for r in self.results]

    def asdict(self) -> Dict[str, object]:
        return {
            "models": [r.model for r in self.results],
            "objectives": list(self.objectives),
            "seconds": self.seconds,
            "summary": self.summary_rows(),
            "results": {r.model: r.report.asdict() for r in self.results},
            "artifacts": dict(self.artifacts),
        }

    # ------------------------------------------------------------- artifacts
    def write_report(
        self, out_dir: str, *, plot: bool = False
    ) -> Dict[str, str]:
        """Emit the consolidated frontier report under ``out_dir``.

        Writes ``frontier_<model>.csv`` per model, the cross-model
        ``summary.csv``, and — when ``plot=True`` and matplotlib is
        importable — ``frontier.png``.  Returns {artifact name: path}
        (also recorded on :attr:`artifacts`).
        """
        os.makedirs(out_dir, exist_ok=True)
        artifacts: Dict[str, str] = {}
        for result in self.results:
            path = os.path.join(out_dir, f"frontier_{result.model}.csv")
            artifacts[f"frontier_{result.model}"] = write_frontier_csv(
                path, result.report)
        artifacts["summary"] = write_summary_csv(
            os.path.join(out_dir, "summary.csv"), self)
        if plot:
            png = plot_frontiers(self, os.path.join(out_dir, "frontier.png"))
            if png is not None:
                artifacts["plot"] = png
        self.artifacts.update(artifacts)
        return artifacts


def write_summary_csv(path: str, sweep: SweepReport) -> str:
    """Write the cross-model summary table as CSV; returns ``path``."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(SUMMARY_COLUMNS))
        writer.writeheader()
        for row in sweep.summary_rows():
            writer.writerow(row)
    return path


def plot_frontiers(sweep: SweepReport, path: str) -> Optional[str]:
    """Scatter every model's Pareto frontier (epoch time vs memory).

    matplotlib is a soft dependency: returns ``None`` when it is not
    importable, the written PNG path otherwise.
    """
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return None
    fig, ax = plt.subplots(figsize=(7, 5))
    for result in sweep.results:
        points = [
            (e.epoch_time, e.memory_gb) for e in result.report.frontier
        ]
        if not points:
            continue
        points.sort()
        xs, ys = zip(*points)
        ax.plot(xs, ys, marker="o", linestyle="--", label=result.model)
    ax.set_xlabel("epoch time (s)")
    ax.set_ylabel("memory per PE (GB)")
    ax.set_title("Pareto frontiers per model")
    ax.legend()
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)
    return path


class SweepRunner:
    """Fan a search space over a model zoo; stream and consolidate.

    Parameters
    ----------
    models:
        Zoo model names (see :data:`repro.models.MODEL_BUILDERS`).
    dataset:
        Training set shared by every model's search.
    pes:
        PE budget per model (ignored when ``pe_budgets`` is given).
    cluster:
        Target machine; default an ABCI-like cluster sized to ``pes``.
    samples_per_pe / optimizer / gamma:
        Oracle construction knobs (profiles are regenerated per model).
    strategies / pe_budgets / segments / comm_policies:
        The :class:`~repro.search.space.SearchSpace` dimensions; every
        model searches the same space, so frontiers are comparable.
    executor / workers:
        Evaluation backend per model (see
        :class:`~repro.search.engine.SearchEngine`); ``"process"`` by
        default — a zoo sweep is exactly the workload the pool exists for.
    cache_dir:
        Shared cross-model cache directory; each model persists its own
        fingerprinted file there, so a warm re-run projects nothing.
    comm_model:
        The :class:`~repro.collectives.selector.CommModel` (or policy
        name) every per-model oracle binds — how candidates are costed
        when ``comm_policies`` opens no per-candidate dimension.
        ``None`` keeps the oracle default (the paper policy).
    weights:
        Scalarization weights for each model's best pick.
    oracle_factory:
        ``name -> ParaDL`` override (tests inject toy oracles here);
        default builds zoo models against ``cluster``.
    clock:
        Monotonic-seconds source for the ``seconds`` columns (tests pin
        it for deterministic artifacts; the chaos battery relies on
        this to assert resumed sweeps byte-identical).
    """

    def __init__(
        self,
        models: Sequence[str],
        dataset: DatasetSpec,
        *,
        pes: int = 64,
        cluster: Optional[ClusterSpec] = None,
        samples_per_pe: int = 32,
        optimizer: str = "sgd",
        gamma: float = 0.5,
        strategies: Optional[Sequence[str]] = None,
        pe_budgets: Optional[Sequence[int]] = None,
        segments: Sequence[int] = (2, 4, 8),
        fixed_batches: Sequence[int] = (),
        comm_policies: Sequence[str] = (),
        executor: str = "process",
        workers: Optional[int] = None,
        remote_workers: Optional[Sequence[str]] = None,
        cache_dir: Optional[str] = None,
        comm_model=None,
        weights=None,
        oracle_factory: Optional[Callable[[str], object]] = None,
        tracer=None,
        metrics=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if not models:
            raise ValueError("need at least one model to sweep")
        self.models = tuple(models)
        if len(set(self.models)) != len(self.models):
            raise ValueError(f"duplicate models in sweep: {self.models}")
        self.dataset = dataset
        self.pes = pes
        self.cluster = cluster or abci_like_cluster(max(pes, 4))
        self.samples_per_pe = samples_per_pe
        self.optimizer = optimizer
        self.gamma = gamma
        self.executor = executor
        self.workers = workers
        self.remote_workers = tuple(remote_workers or ())
        self.cache_dir = cache_dir
        self.comm_model = comm_model
        self.weights = weights
        self.oracle_factory = oracle_factory
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.clock = clock
        self.space = SearchSpace(
            strategies=(
                tuple(strategies) if strategies else DEFAULT_STRATEGIES),
            pe_budgets=tuple(pe_budgets) if pe_budgets else (pes,),
            samples_per_pe=(samples_per_pe,),
            fixed_batches=tuple(fixed_batches),
            segments=tuple(segments),
            comm_policies=tuple(comm_policies),
        )

    # ------------------------------------------------------------ scenarios
    @classmethod
    def from_scenario(cls, scenario, *, cluster: Optional[ClusterSpec] = None,
                      oracle_factory=None, tracer=None,
                      metrics=None) -> "SweepRunner":
        """Build the runner a :class:`~repro.api.spec.ScenarioSpec`
        describes (dicts and file paths are coerced through the spec
        layer).

        The ``sweep`` section names the models (defaulting to the
        standard zoo trio when absent); the ``search`` section supplies
        the space and engine knobs every model shares; ``training`` /
        ``cluster`` / ``comm`` fix the environment.  The ``comm``
        section binds every per-model oracle unless
        ``search.comm_policies`` opens the policy as a per-candidate
        dimension (candidates then pin their own policy and the oracles
        stay on the canonical paper default, keeping cache fingerprints
        independent of the policy-list order).  ``cluster`` may be
        passed pre-built to share one instance with a session.
        """
        from ..api.spec import ScenarioSpec, SearchSpec, SweepSpec
        from ..collectives.selector import CommModel
        from ..core.math_utils import power_of_two_budgets
        from ..data.datasets import DATASETS

        if not isinstance(scenario, ScenarioSpec):
            if isinstance(scenario, (str, os.PathLike)):
                scenario = ScenarioSpec.from_file(scenario)
            else:
                scenario = ScenarioSpec.from_dict(scenario)
        sweep = scenario.sweep or SweepSpec()
        search = scenario.search or SearchSpec()
        if search.cache is not None:
            # from_dict rejects this for documents with a sweep section;
            # repeat the check here for specs assembled programmatically
            # (e.g. Session.sweep on a search-only scenario).
            from ..api.spec import ScenarioValidationError

            raise ScenarioValidationError(
                "search.cache",
                "a sweep persists one cache file per model; use "
                "search.cache_dir instead")
        pes = scenario.cluster.pes
        cluster = cluster or scenario.cluster.build()
        runner = cls(
            sweep.models,
            DATASETS[scenario.training.dataset],
            pes=pes,
            cluster=cluster,
            samples_per_pe=scenario.training.samples_per_pe,
            optimizer=scenario.training.optimizer,
            gamma=scenario.training.gamma,
            strategies=search.strategies or None,
            pe_budgets=(
                tuple(power_of_two_budgets(pes)) if search.pe_sweep
                else None),
            segments=search.segments,
            comm_policies=search.comm_policies,
            executor=search.executor or "process",
            workers=search.workers,
            remote_workers=search.remote_workers or None,
            cache_dir=search.cache_dir,
            comm_model=(
                scenario.comm.build(cluster)
                if not search.comm_policies
                # Policy dimension open: candidates pin their own
                # policy, the oracle stays on the canonical paper
                # default — but per-collective forcing still applies,
                # exactly as Session._search_oracle preserves it.
                else CommModel(cluster, policy="paper",
                               algo=dict(scenario.comm.algo))),
            weights=dict(search.weights) or None,
            oracle_factory=oracle_factory,
            tracer=tracer,
            metrics=metrics,
        )
        if scenario.training.batch is not None:
            from dataclasses import replace

            # An explicit training.batch pins the global batch at the
            # budget — weak scalers via batch/pes samples per PE,
            # strong scalers via the fixed batch (divisibility
            # spec-checked) — without touching the profiling grain, so
            # `repro search` and a single-model sweep cost one document
            # identically.
            batch = scenario.training.batch
            runner.space = replace(
                runner.space,
                samples_per_pe=(max(1, batch // pes),),
                fixed_batches=(batch,),
            )
        return runner

    # ------------------------------------------------------------- plumbing
    def _oracle(self, name: str):
        if self.oracle_factory is not None:
            return self.oracle_factory(name)
        from ..core.calibration import profile_model
        from ..core.oracle import ParaDL
        from ..models import build_model

        input_spec = (
            self.dataset.sample
            if name == "cosmoflow" and self.dataset.sample.ndim == 3
            else None
        )
        model = build_model(name, input_spec)
        profile = profile_model(
            model, samples_per_pe=self.samples_per_pe,
            optimizer=self.optimizer,
        )
        return ParaDL(model, self.cluster, profile, gamma=self.gamma,
                      comm=self.comm_model)

    def engine_for(self, name: str) -> SearchEngine:
        """The per-model engine (parameterized, not yet run)."""
        return SearchEngine(
            self._oracle(name),
            self.dataset,
            cache_dir=self.cache_dir,
            executor=self.executor,
            workers=self.workers,
            remote_workers=self.remote_workers or None,
            tracer=self.tracer,
            metrics=self.metrics,
        )

    # ---------------------------------------------------------- checkpoints
    def checkpoint_meta(self) -> Dict[str, object]:
        """The sweep identity pinned in a checkpoint header: resuming a
        journal written by a different zoo or search space is refused."""
        return {
            "models": list(self.models),
            "pes": self.pes,
            "strategies": list(self.space.strategies),
            "pe_budgets": list(self.space.pe_budgets),
            "samples_per_pe": list(self.space.samples_per_pe),
            "fixed_batches": list(self.space.fixed_batches),
            "segments": list(self.space.segments),
            "comm_policies": list(self.space.comm_policies),
        }

    @staticmethod
    def _replay_cell(cell: Dict[str, object]) -> SweepResult:
        report = ReplayedReport(
            summary_row=cell["summary_row"],
            rows=cell["frontier_rows"],
            report_blob=cell["report"],
        )
        return SweepResult(
            model=str(cell["model"]),
            report=report,
            seconds=cell["seconds"],
            cache_file=cell.get("cache_file"),
        )

    # ------------------------------------------------------------------ run
    def run(
        self,
        *,
        on_result: Optional[Callable[[str, Evaluation], None]] = None,
        on_model: Optional[Callable[[str, SweepResult], None]] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> SweepReport:
        """Sweep every model; returns the consolidated report.

        ``on_result(model, evaluation)`` streams individual evaluations
        as they complete (anytime consumption — the CLI's ``--stream``);
        ``on_model(model, result)`` fires once per finished model.
        Neither affects the report.

        ``checkpoint`` names a :class:`SweepCheckpoint` journal: each
        finished model is appended durably, and ``resume=True`` replays
        journaled models instead of re-searching them (``on_model``
        still fires for replayed cells; ``on_result`` does not — their
        evaluations already streamed in the original run).  Artifacts
        from a resumed sweep are byte-identical to an uninterrupted one
        (given the same ``clock``; wall-clock ``seconds`` naturally
        differ between runs otherwise).
        """
        t_sweep = self.clock()
        logger.info("sweep: %d models, strategies=%s",
                    len(self.models), ",".join(self.space.strategies))
        ckpt: Optional[SweepCheckpoint] = None
        completed: Dict[str, Dict[str, object]] = {}
        if checkpoint is not None:
            ckpt = SweepCheckpoint(checkpoint)
            completed = ckpt.prepare(self.checkpoint_meta(), resume=resume)
            if completed:
                logger.info(
                    "sweep: resuming from %s — %d/%d models already done",
                    checkpoint, len(completed), len(self.models))
        results: List[SweepResult] = []
        try:
            with self.tracer.span("sweep", models=len(self.models)):
                for name in self.models:
                    cell = completed.get(name)
                    if cell is not None:
                        result = self._replay_cell(cell)
                        logger.info(
                            "sweep: %s replayed from checkpoint", name)
                        results.append(result)
                        if on_model is not None:
                            on_model(name, result)
                        continue
                    check_deadline("sweep.model")
                    action = _fire_fault("sweep.cell")
                    if action is not None and action.kind in (
                            "crash", "error"):
                        # A "crash" here aborts the sweep mid-zoo — the
                        # chaos battery's stand-in for a killed process;
                        # the journal keeps every finished cell.
                        raise FaultError(action.describe())
                    with self.tracer.span("sweep.model", model=name) as sp:
                        engine = self.engine_for(name)
                        callback = (
                            (lambda e, _name=name: on_result(_name, e))
                            if on_result is not None else None
                        )
                        t0 = self.clock()
                        report = engine.search(
                            self.space, weights=self.weights,
                            on_result=callback)
                        result = SweepResult(
                            model=name,
                            report=report,
                            seconds=self.clock() - t0,
                            cache_file=engine.cache.path,
                        )
                        sp.attrs["seconds"] = result.seconds
                        sp.attrs["feasible"] = report.stats.get(
                            "feasible", 0)
                    logger.info(
                        "sweep: %s done in %.2fs", name, result.seconds)
                    if ckpt is not None:
                        ckpt.record({
                            "kind": "cell",
                            "model": name,
                            "seconds": result.seconds,
                            "cache_file": result.cache_file,
                            "summary_row": result.summary_row(),
                            "frontier_rows": _frontier_rows(result.report),
                            "report": result.report.asdict(),
                        })
                    results.append(result)
                    if on_model is not None:
                        on_model(name, result)
        finally:
            if ckpt is not None:
                ckpt.close()
        return SweepReport(
            results=results,
            objectives=tuple(DEFAULT_OBJECTIVES),
            seconds=self.clock() - t_sweep,
        )
