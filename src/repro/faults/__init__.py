"""repro.faults — deterministic fault injection + resilience layer.

Two halves, one package:

* :mod:`repro.faults.plan` — the seeded fault-injection registry.
  Production code is pre-wired with named sites (``dist.frame.send``,
  ``serve.handler``, ``cache.save``, ...) that call :func:`fire`;
  arming a :class:`FaultPlan` makes those sites fail deterministically.
* :mod:`repro.faults.resilience` — what production code uses to absorb
  those failures: :class:`RetryPolicy`, :class:`CircuitBreaker`, and
  :class:`Deadline` budgets with a thread-local scope.

See ``docs/resilience.md`` for the site table and semantics.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultAction,
    FaultError,
    FaultPlan,
    FaultRule,
    active,
    arm,
    arm_from_env,
    armed,
    disarm,
    fire,
)
from repro.faults.resilience import (
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    check_deadline,
    current_deadline,
    deadline_scope,
)

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "fire",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]
