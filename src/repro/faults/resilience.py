"""Production-side resilience primitives: retries, breakers, deadlines.

The fault-injection registry (:mod:`repro.faults.plan`) makes failures
happen on purpose; this module is what the rest of the system uses to
*survive* them:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  used by ``PlanningClient`` and the ``RemoteCoordinator`` handshake /
  reconnect path.  Sleep is injectable so tests retry in microseconds.
* :class:`CircuitBreaker` — per-worker closed/open/half-open breaker:
  trip after K consecutive failures, reject while cooling down, admit a
  single half-open probe, close again on success.  The coordinator
  reports trips/rejections as ``dist.breaker.*`` metrics.
* :class:`Deadline` — a monotonic time budget threaded through Session
  verbs and the HTTP server via a thread-local scope
  (:func:`deadline_scope` / :func:`current_deadline`); long-running
  loops call :func:`check_deadline` and abort with
  :class:`DeadlineExceeded`, which the server maps to a 504 envelope.

Everything takes an injectable clock/sleep so the chaos battery runs
deterministic campaigns without wall-clock coupling.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]


class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delays()`` yields one value per attempt: ``0.0`` for the first
    try, then ``min(base * multiplier**k, max_delay)`` scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1 + jitter]``
    with a seeded RNG — so a given ``(policy, seed)`` always produces
    the same backoff sequence, which the chaos battery relies on.

    ``attempts`` counts tries, not retries: ``attempts=3`` means one
    initial try plus up to two retries.  ``attempts=1`` disables
    retrying while keeping the call-shape uniform.
    """

    def __init__(self, attempts: int = 3, *, base_delay_s: float = 0.05,
                 max_delay_s: float = 2.0, multiplier: float = 2.0,
                 jitter: float = 0.1, seed: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.attempts = int(attempts)
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = seed
        self.sleep = sleep

    def delays(self) -> List[float]:
        """The pre-sleep delay for each attempt (first is always 0)."""
        import random
        rng = random.Random(self.seed if self.seed is not None
                            else f"retry:{self.attempts}:{self.base_delay_s}")
        out = [0.0]
        for k in range(self.attempts - 1):
            delay = min(self.base_delay_s * (self.multiplier ** k),
                        self.max_delay_s)
            if self.jitter:
                delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            out.append(delay)
        return out

    def call(self, fn: Callable[[], object], *,
             retry_on: tuple = (Exception,),
             on_retry: Optional[Callable[[int, BaseException], None]] = None):
        """Run ``fn`` under this policy.  Sleeps the attempt's delay
        first (0 for the first try), re-raises the last failure once
        attempts are exhausted.  ``on_retry(attempt_index, exc)`` fires
        before each retry sleep — the coordinator uses it for stats."""
        last: Optional[BaseException] = None
        for attempt, delay in enumerate(self.delays()):
            if delay > 0:
                self.sleep(delay)
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 - retry loop by design
                last = exc
                if on_retry is not None and attempt + 1 < self.attempts:
                    on_retry(attempt, exc)
        assert last is not None
        raise last

    def __repr__(self) -> str:
        return (f"RetryPolicy(attempts={self.attempts}, "
                f"base_delay_s={self.base_delay_s}, "
                f"max_delay_s={self.max_delay_s})")


class CircuitOpen(RuntimeError):
    """The breaker is open: the call was rejected without being tried."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    Closed: calls flow, failures count; ``failures`` consecutive
    failures trip it open.  Open: :meth:`allow` returns ``False`` until
    ``cooldown_s`` elapses on the injected monotonic clock.  After
    cooldown, exactly one caller is admitted as the half-open probe —
    its success closes the breaker, its failure re-opens it (fresh
    cooldown).  Thread-safe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failures: int = 3, *, cooldown_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failures = int(failures)
        self.cooldown_s = float(cooldown_s)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0
        self.rejected = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (self._state == self.OPEN
                and self.clock() - self._opened_at >= self.cooldown_s):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the caller attempt the protected operation right now?"""
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            self.rejected += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive += 1
            was_probe = self._probing
            self._probing = False
            if was_probe or self._consecutive >= self.failures:
                if self._state != self.OPEN or was_probe:
                    self.trips += 1
                self._state = self.OPEN
                self._opened_at = self.clock()

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive,
                "trips": self.trips,
                "rejected": self.rejected,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r}, trips={self.trips})"


class DeadlineExceeded(TimeoutError):
    """A deadline budget ran out before the work finished."""


class Deadline:
    """A monotonic time budget.  ``check()`` raises once it expires."""

    def __init__(self, seconds: float, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {seconds}")
        self.seconds = float(seconds)
        self.clock = clock
        self._start = clock()

    def remaining(self) -> float:
        return self.seconds - (self.clock() - self._start)

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, label: str = "") -> None:
        remaining = self.remaining()
        if remaining <= 0:
            where = f" during {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds:g}s exceeded{where} "
                f"(over by {-remaining:.3f}s)")

    def __repr__(self) -> str:
        return (f"Deadline(seconds={self.seconds:g}, "
                f"remaining={self.remaining():.3f})")


# ---------------------------------------------------------------------------
# Thread-local deadline scope.  Session verbs install the budget here;
# deep loops (engine chunk evaluation, sweep cells) poll it without any
# plumbing through intermediate signatures.
# ---------------------------------------------------------------------------

_SCOPE = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The innermost deadline installed on this thread, or ``None``."""
    return getattr(_SCOPE, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as this thread's budget for the duration.

    ``None`` is accepted and installs nothing, so callers can write
    ``with deadline_scope(maybe_deadline):`` unconditionally.  Scopes
    nest; the inner scope wins until it exits.
    """
    previous = getattr(_SCOPE, "deadline", None)
    _SCOPE.deadline = deadline if deadline is not None else previous
    try:
        yield deadline
    finally:
        _SCOPE.deadline = previous


def check_deadline(label: str = "") -> None:
    """Poll the thread's deadline scope; no-op when none is installed."""
    deadline = getattr(_SCOPE, "deadline", None)
    if deadline is not None:
        deadline.check(label)
