"""Seeded, deterministic fault injection: the ``FaultPlan`` registry.

Reliability you have not rehearsed is reliability you do not have.  The
serving and distributed layers tolerate dead workers, torn cache files,
and slow handlers — but until PR 10 nothing could *produce* those
failures on demand, so the degraded paths were only exercised by
whole-process kill tests.  This module is the rehearsal harness: named
**fault sites** wired into production code consult a process-global
:class:`FaultPlan`, and the plan decides — deterministically, from a
seed — whether that visit fails, how, and with what latency.

Design rules
------------
* **Zero cost disarmed.**  Production code calls :func:`fire` at each
  site; with no plan armed that is one module-global read and a ``None``
  check (~100 ns, pinned by ``benchmarks/test_bench_resilience.py`` the
  same way PR 6 pinned the disabled tracer).  Sites live at frame /
  request / save granularity, never per candidate.
* **Deterministic.**  Each rule owns a private ``random.Random`` seeded
  from ``(plan.seed, rule index, site)`` and a visit counter; the
  decision for the *n*-th visit to a site is a pure function of the
  seed.  :meth:`FaultPlan.schedule` previews that decision sequence
  without touching live state, which is what ``scripts/check_chaos.py``
  asserts reproducibility against.
* **Sites interpret, rules trigger.**  A rule says *when* (probability /
  ``after`` / ``count``) and *what kind*; the site decides what that
  kind means locally (``drop`` on a socket raises ``ConnectionError``,
  ``full`` in the cache simulates ``ENOSPC``, ...).  Unknown kinds at a
  site are ignored, so one plan can arm many subsystems.

The wired sites and their supported kinds are tabulated in
``docs/resilience.md``.  Plans arm programmatically (:func:`arm`, the
:func:`armed` context manager) or — for subprocess workers and servers —
from a JSON file named by the ``REPRO_FAULTS`` environment variable
(:func:`arm_from_env`; the ``repro worker`` / ``repro serve`` commands
check it on startup).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "fire",
]

#: Kinds a rule may carry.  Sites honor the subset that makes sense for
#: them (see docs/resilience.md); ``delay`` is universal — the sleep
#: happens inside :func:`fire` itself.
FAULT_KINDS = (
    "delay",     # sleep delay_s at the site, then continue normally
    "error",     # raise FaultError at the site
    "drop",      # sockets/clients: fail like a dropped connection
    "corrupt",   # frames: deliver undecodable bytes
    "crash",     # workers/sweeps: die mid-operation without replying
    "partial",   # cache: persist a torn (truncated) file
    "full",      # cache: fail the write like a full disk
)


class FaultError(RuntimeError):
    """An injected failure (site raised on behalf of the armed plan)."""


@dataclass(frozen=True)
class FaultRule:
    """When one site misbehaves, and how.

    Parameters
    ----------
    site:
        Exact site name, or a prefix ending in ``*`` (``"dist.*"``
        matches every dist site).
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Chance an eligible visit fires, drawn from the rule's seeded
        RNG (1.0 = every eligible visit).
    after:
        Skip the first ``after`` visits (crash-after-N-chunks style
        triggers).
    count:
        Fire at most this many times (``None`` = unlimited).
    delay_s:
        Seconds to sleep when the rule fires (for ``kind="delay"`` the
        sleep is the whole fault; other kinds sleep first, then fail).
    message:
        Optional text carried into the injected error.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    after: int = 0
    count: Optional[int] = None
    delay_s: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault rule needs a site name")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(FAULT_KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.count is not None and self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def to_dict(self) -> Dict[str, object]:
        blob: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.probability != 1.0:
            blob["probability"] = self.probability
        if self.after:
            blob["after"] = self.after
        if self.count is not None:
            blob["count"] = self.count
        if self.delay_s:
            blob["delay_s"] = self.delay_s
        if self.message:
            blob["message"] = self.message
        return blob

    @classmethod
    def from_dict(cls, blob: Dict[str, object]) -> "FaultRule":
        if not isinstance(blob, dict):
            raise ValueError(
                f"fault rule must be a mapping, got {type(blob).__name__}")
        unknown = sorted(
            set(blob) - {"site", "kind", "probability", "after", "count",
                         "delay_s", "message"})
        if unknown:
            raise ValueError(f"unknown fault-rule key {unknown[0]!r}")
        return cls(
            site=str(blob.get("site", "")),
            kind=str(blob.get("kind", "error")),
            probability=float(blob.get("probability", 1.0)),
            after=int(blob.get("after", 0)),
            count=(int(blob["count"]) if blob.get("count") is not None
                   else None),
            delay_s=float(blob.get("delay_s", 0.0)),
            message=str(blob.get("message", "")),
        )


@dataclass(frozen=True)
class FaultAction:
    """What :func:`fire` tells a site to do.  ``kind="delay"`` means the
    sleep already happened and the site should continue normally."""

    site: str
    kind: str
    message: str = ""
    delay_s: float = 0.0

    def describe(self) -> str:
        text = self.message or f"injected {self.kind} at {self.site}"
        return f"fault injected: {text}"

    def raise_(self) -> None:
        raise FaultError(self.describe())


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s with per-rule state.

    Thread-safe: sites fire from coordinator threads, worker threads,
    and HTTP handler threads concurrently.  Determinism is per rule —
    the decision for the *n*-th eligible visit depends only on
    ``(seed, rule)``, never on thread interleaving (which thread makes
    the *n*-th visit may of course vary).
    """

    def __init__(self, seed: int = 0,
                 rules: Sequence[FaultRule] = ()) -> None:
        self.seed = int(seed)
        coerced = []
        for rule in rules:
            if isinstance(rule, dict):
                rule = FaultRule.from_dict(rule)
            elif not isinstance(rule, FaultRule):
                raise ValueError(
                    f"rules must be FaultRule or mappings, got "
                    f"{type(rule).__name__}")
            coerced.append(rule)
        self.rules: Tuple[FaultRule, ...] = tuple(coerced)
        self._lock = threading.Lock()
        self._rngs = [
            random.Random(f"{self.seed}:{i}:{rule.site}:{rule.kind}")
            for i, rule in enumerate(self.rules)
        ]
        self._visits = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        #: Chronological (site, kind, visit_index) log of fired faults.
        self.events: List[Tuple[str, str, int]] = []

    # --------------------------------------------------------------- firing
    def _decide(self, site: str) -> Optional[FaultAction]:
        """The deterministic trigger check (no sleeping, state advances)."""
        with self._lock:
            for i, rule in enumerate(self.rules):
                if not rule.matches(site):
                    continue
                visit = self._visits[i]
                self._visits[i] = visit + 1
                if visit < rule.after:
                    continue
                if rule.count is not None and self._fired[i] >= rule.count:
                    continue
                if (rule.probability < 1.0
                        and self._rngs[i].random() >= rule.probability):
                    continue
                self._fired[i] += 1
                self.events.append((site, rule.kind, visit))
                return FaultAction(
                    site=site, kind=rule.kind, message=rule.message,
                    delay_s=rule.delay_s)
        return None

    def fire(self, site: str) -> Optional[FaultAction]:
        """One visit to ``site``: returns the triggered action (after
        applying its ``delay_s`` sleep) or ``None``."""
        action = self._decide(site)
        if action is not None and action.delay_s > 0:
            time.sleep(action.delay_s)
        return action

    def schedule(self, site: str, n: int) -> List[Optional[str]]:
        """Preview the fault kinds the first ``n`` visits to ``site``
        would trigger — on a fresh copy of this plan, so live state is
        untouched.  Same seed + rules => same schedule; this is the
        reproducibility contract the chaos battery pins."""
        sim = FaultPlan(self.seed, self.rules)
        return [
            (action.kind if action is not None else None)
            for action in (sim._decide(site) for _ in range(n))
        ]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "rules": len(self.rules),
                "visits": sum(self._visits),
                "fired": sum(self._fired),
            }

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, blob: Dict[str, object]) -> "FaultPlan":
        if not isinstance(blob, dict):
            raise ValueError(
                f"fault plan must be a mapping, got {type(blob).__name__}")
        unknown = sorted(set(blob) - {"seed", "rules"})
        if unknown:
            raise ValueError(f"unknown fault-plan key {unknown[0]!r}")
        rules = blob.get("rules", [])
        if not isinstance(rules, list):
            raise ValueError("fault-plan rules must be a list")
        return cls(seed=int(blob.get("seed", 0)), rules=rules)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, "
                f"rules={len(self.rules)})")


# ---------------------------------------------------------------------------
# Process-global arming.  One slot, read on the hot path; sites never
# pay more than the None check while disarmed.
# ---------------------------------------------------------------------------

_ARMED: Optional[FaultPlan] = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide; returns it.  Replaces any armed plan."""
    global _ARMED
    _ARMED = plan
    return plan


def disarm() -> None:
    """Disarm fault injection (sites become no-ops again)."""
    global _ARMED
    _ARMED = None


def active() -> Optional[FaultPlan]:
    """The armed plan, or ``None``."""
    return _ARMED


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope-arm a plan; restores the previously armed plan on exit."""
    global _ARMED
    previous = _ARMED
    _ARMED = plan
    try:
        yield plan
    finally:
        _ARMED = previous


def fire(site: str) -> Optional[FaultAction]:
    """The pre-wired hook production code calls at each fault site.

    Disarmed (the production default) this is one global read + a
    ``None`` check; armed, it delegates to the plan.
    """
    plan = _ARMED
    if plan is None:
        return None
    return plan.fire(site)


def arm_from_env(var: str = "REPRO_FAULTS") -> Optional[FaultPlan]:
    """Arm the plan the ``REPRO_FAULTS`` env var names (a JSON file), if
    set — the subprocess seam ``repro worker`` / ``repro serve`` use.
    Returns the armed plan, or ``None`` when the variable is unset."""
    path = os.environ.get(var)
    if not path:
        return None
    return arm(FaultPlan.from_file(path))
