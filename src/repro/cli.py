"""Command-line interface for the ParaDL reproduction.

The paper positions ParaDL as a practitioner's utility ("suggesting the
best strategy for a given CNN, dataset and resource budget", "identifying
the time and resources to provision").  This CLI exposes those workflows:

.. code-block:: console

   python -m repro project  --model resnet50 --strategy d  -p 64 --batch 2048
   python -m repro project  --scenario examples/scenarios/project_resnet50.yaml
   python -m repro project  --scenario plan.yaml -p 256 --json
   python -m repro suggest  --model vgg16 -p 64 --samples-per-pe 32
   python -m repro hybrid   --model vgg16 -p 64
   python -m repro search   --model resnet50 -p 64 --cache plan-cache.json
   python -m repro search   --scenario examples/scenarios/comm_policy_ablation.yaml
   python -m repro sweep    --models resnet50,resnet152,vgg16 -p 64 \
                            --executor process --cache-dir plan-cache \
                            --report reports/
   python -m repro simulate --model resnet50 --strategy d -p 64 --batch 2048
   python -m repro validate --scenario examples/scenarios/*.yaml
   python -m repro experiment fig5

Every subcommand accepts ``--scenario FILE`` — a YAML/JSON
:class:`~repro.api.spec.ScenarioSpec` document — and becomes a thin
adapter over :class:`~repro.api.session.Session`: the scenario supplies
the request, explicitly-given flags override individual fields, and the
session answers.  ``--json`` payloads are the result objects'
``to_dict()`` — every one carries ``schema_version``, ``kind``, and a
``scenario`` echo of the fully-resolved request.

Plain-text tables come from :mod:`repro.harness.reporting`; exit codes
are non-zero on infeasible/failed configurations.  Under ``--json``,
``--stream`` rows go to *stderr* so stdout stays a single parseable
JSON document; without ``--json`` they are printed to stdout, flushed
line-by-line, so piped consumers see anytime results as they land.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import Dict, List, Optional, Sequence

from .api.session import Session
from .api.spec import (
    POLICIES,
    STRATEGY_IDS,
    Scenario,
    ScenarioSpec,
    ScenarioValidationError,
    parse_comm_algo,
)
from .core.strategies import StrategyError
from .data.datasets import DATASETS
from .faults import DeadlineExceeded, arm_from_env
from .harness import reporting
from .models import MODEL_BUILDERS

__all__ = ["main", "build_parser"]

#: Strategy ids offered by ``--strategy`` — the spec layer's list, so
#: scenario documents and flags can never drift apart.
_STRATEGY_CHOICES = STRATEGY_IDS


def build_parser(
    suppress_defaults: bool = False,
) -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands.

    ``suppress_defaults=True`` builds the same tree with
    ``argparse.SUPPRESS`` defaults everywhere; parsing with it reveals
    which flags the user *explicitly* typed — that set, and only that
    set, overrides fields of a ``--scenario`` document.
    """
    kw: Dict[str, object] = (
        {"argument_default": argparse.SUPPRESS} if suppress_defaults else {}
    )

    def opt(p: argparse.ArgumentParser, *names: str, **kwargs) -> None:
        """``add_argument`` that honors ``suppress_defaults``.

        ``argument_default=SUPPRESS`` only kicks in for arguments that
        pass no ``default`` of their own, so the suppressed tree must
        drop the per-argument defaults for explicit-flag detection to
        see anything.
        """
        if suppress_defaults:
            kwargs.pop("default", None)
        p.add_argument(*names, **kwargs)

    def parent() -> argparse.ArgumentParser:
        return argparse.ArgumentParser(add_help=False, **kw)

    # ----------------------------------------------------- shared parents
    scenario_p = parent()
    opt(scenario_p,
        "--scenario", default=None, metavar="FILE",
        help="YAML/JSON scenario document supplying every field below; "
             "explicitly-given flags override it")

    model_p = parent()
    opt(model_p, "--model", default="resnet50",
        choices=sorted(MODEL_BUILDERS))

    budget_p = parent()
    opt(budget_p, "-p", "--pes", type=int, default=64,
        help="number of processing elements (GPUs)")
    opt(budget_p, "--dataset", default="imagenet",
        choices=sorted(DATASETS))
    opt(budget_p, "--samples-per-pe", type=int, default=32)
    opt(budget_p, "--gamma", type=float, default=0.5,
        help="memory-reuse factor")
    opt(budget_p, "--optimizer", default="sgd",
        choices=("sgd", "momentum", "adam"))

    json_p = parent()
    json_p.add_argument("--json", action="store_true",
                        help="machine-readable JSON output (a "
                             "schema-versioned result document with a "
                             "scenario echo)")

    def comm_parent(multi: bool = False) -> argparse.ArgumentParser:
        p = parent()
        opt(p,
            "--comm-policy", default="paper",
            help="collective algorithm selection policy: "
                 f"{'/'.join(POLICIES)}"
                 + (", or a comma-separated list to sweep" if multi else ""),
        )
        opt(p,
            "--comm-algo", default=None, metavar="SPEC",
            help="force collective algorithms, e.g. 'recursive-doubling' "
                 "(applies to allreduce) or "
                 "'allreduce=tree,broadcast=binomial-tree'",
        )
        return p

    def search_parent(default_executor: str = "thread"
                      ) -> argparse.ArgumentParser:
        """Space + engine flags shared by ``search`` and ``sweep``."""
        p = parent()
        opt(p, "--strategies", default=None,
            help="comma-separated strategy ids (default: all)")
        p.add_argument("--pe-sweep", action="store_true",
                       help="sweep power-of-two PE budgets up to -p")
        p.add_argument("--exhaustive", action="store_true",
                       help="search every PE count up to -p and the "
                            "full hybrid divisor lattice (vectorized "
                            "projection keeps this affordable)")
        opt(p, "--segments", default="2,4,8",
            help="pipeline micro-batch counts to try")
        opt(p, "--workers", default=None,
            help="evaluation worker-pool width, or (with --executor "
                 "remote) comma-separated host:port worker addresses, "
                 "e.g. 'a:8178,b:8178'")
        opt(p, "--executor", default=default_executor,
            choices=("thread", "process", "remote"),
            help="evaluation backend: GIL-bound threads, a process "
                 "pool that projects across cores, or a remote "
                 "'repro worker' fleet (--workers host:port,...) "
                 f"(default: {default_executor})")
        opt(p, "--cache-dir", default=None, metavar="DIR",
            help="shared cross-model cache directory (one "
                 "fingerprinted file per model/cluster)")
        opt(p, "--weights", default=None,
            help="scalarization weights, e.g. "
                 "'epoch_time=1,memory=0.2,pes=0.1'")
        p.add_argument("--stream", action="store_true",
                       help="anytime search: print frontier rows "
                            "incrementally, flushed line-by-line "
                            "(to stderr under --json so stdout stays "
                            "parseable)")
        p.add_argument("--profile", action="store_true",
                       help="print a stage-timing table (space expansion "
                            "/ pruning / projection / ranking / "
                            "persistence) to stderr")
        opt(p, "--deadline-s", type=float, default=None, metavar="S",
            help="abort with an error once the run exceeds this wall "
                 "budget (polled per evaluation chunk / sweep cell)")
        return p

    obs_p = parent()
    opt(obs_p, "--trace", default=None, metavar="PATH",
        help="write an execution trace: Chrome trace-event JSON "
             "(load in Perfetto / chrome://tracing), or a JSONL "
             "event log when PATH ends in .jsonl")
    obs_p.add_argument("--metrics", action="store_true",
                       help="collect run counters/histograms; prints a "
                            "table to stderr, or adds a 'diagnostics' "
                            "block to the --json envelope")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParaDL oracle: project/suggest/simulate CNN "
                    "parallelization strategies",
        **kw,
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress from the repro.* logger hierarchy to stderr "
             "(-v: INFO, -vv: DEBUG); give before the subcommand")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help: str, *parents) -> argparse.ArgumentParser:
        return sub.add_parser(name, help=help, parents=list(parents), **kw)

    proj = add("project", "project one strategy (Table 3)",
               scenario_p, model_p, budget_p, comm_parent(), json_p, obs_p)
    opt(proj, "--strategy", default="d", choices=_STRATEGY_CHOICES)
    opt(proj, "--batch", type=int, default=None,
        help="global mini-batch (default: samples-per-pe * p)")
    opt(proj, "--segments", type=int, default=4,
        help="pipeline micro-batches S")
    proj.add_argument("--inference", action="store_true",
                      help="forward-only projection (Section 5.4.2)")
    proj.add_argument("--findings", action="store_true",
                      help="also run the Table-6 limitation detector")

    add("suggest", "rank all strategies for a budget",
        scenario_p, model_p, budget_p, comm_parent(), json_p)

    hyb = add("hybrid", "search (p1, p2) hybrid configs",
              scenario_p, model_p, budget_p, comm_parent(), json_p)
    opt(hyb, "--kinds", default="df,ds")
    opt(hyb, "--top", type=int, default=5)

    srch = add("search",
               "automated strategy search: pruning + cache + Pareto "
               "frontier",
               scenario_p, model_p, budget_p, search_parent(),
               comm_parent(multi=True), json_p, obs_p)
    opt(srch, "--cache", default=None, metavar="PATH",
        help="persistent projection-cache JSON file")
    opt(srch, "--top", type=int, default=10,
        help="frontier rows to print")
    opt(srch, "--frontier-csv", default=None, metavar="PATH",
        help="export the Pareto frontier as CSV")

    swp = add("sweep",
              "multi-model sweep: one search per zoo model, "
              "consolidated frontier report",
              scenario_p, budget_p, search_parent(default_executor="process"),
              json_p, obs_p)
    opt(swp, "--models", default="resnet50,resnet152,vgg16",
        help="comma-separated zoo model names")
    opt(swp, "--report", default=None, metavar="DIR",
        help="write per-model frontier CSVs + cross-model "
             "summary.csv here")
    swp.add_argument("--plot", action="store_true",
                     help="also write a frontier plot to the --report dir "
                          "(needs matplotlib; skipped quietly without it)")
    opt(swp, "--top", type=int, default=5,
        help="frontier rows to print per model")
    opt(swp, "--comm-policy", default=None,
        help="comm policies to sweep per candidate, "
                          f"comma-separated from {'/'.join(POLICIES)} "
                          "(default: the oracle's paper policy)")
    opt(swp, "--checkpoint", default=None, metavar="PATH",
        help="append each finished model to this journal "
             "(crash-safe; see docs/resilience.md)")
    swp.add_argument("--resume", action="store_true",
                     help="replay models already in --checkpoint instead "
                          "of re-searching them (artifacts stay "
                          "byte-identical to an uninterrupted run)")

    plan = add("plan", "per-layer strategy assignment (DP)",
               scenario_p, model_p, budget_p)
    opt(plan, "--batch", type=int, default=None)

    simp = add("simulate", "simulated measured run vs projection",
               scenario_p, model_p, budget_p, json_p, obs_p)
    opt(simp, "--strategy", default="d", choices=_STRATEGY_CHOICES)
    opt(simp, "--batch", type=int, default=None)
    opt(simp, "--segments", type=int, default=4)
    opt(simp, "--iterations", type=int, default=50)
    simp.add_argument("--congestion", action="store_true",
                      help="inject external congestion (Figure 6)")
    opt(simp, "--seed", type=int, default=42)

    val = sub.add_parser("validate",
                         help="value-by-value substrate validation, or "
                              "--scenario schema validation", **kw)
    opt(val, "--p", type=int, default=4)
    opt(val, "--batch", type=int, default=8)
    opt(val, "--scenario", nargs="+", default=None, metavar="FILE",
        help="validate scenario documents instead of the "
             "execution substrate")

    exp = add("experiment", "run a paper experiment", scenario_p)
    exp.add_argument("name", choices=(
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "table3", "table5", "table6", "accuracy", "search", "sweep",
        "scenario",
    ))
    exp.add_argument("--full", action="store_true",
                     help="full sweep instead of the quick grid")

    srv = add("serve",
              "HTTP planning server: Session verbs over the --json "
              "wire contract (docs/serving.md)")
    opt(srv, "--host", default="127.0.0.1",
        help="bind address (default: loopback only)")
    opt(srv, "--port", type=int, default=8177,
        help="listen port (0 picks an ephemeral port)")
    opt(srv, "--pool-size", type=int, default=32,
        help="distinct scenarios kept live (LRU beyond this)")
    opt(srv, "--cache-dir", default=None, metavar="DIR",
        help="shared projection-cache directory for pooled sessions")
    opt(srv, "--job-workers", type=int, default=2,
        help="worker threads for async /v1/jobs verbs")
    opt(srv, "--job-max-pending", type=int, default=None,
        help="reject job submissions with 503 + Retry-After once this "
             "many are in flight (default: unbounded)")
    opt(srv, "--request-deadline-s", type=float, default=None, metavar="S",
        help="per-request wall budget; exceeding it returns 504 "
             "(clients may request less via X-Repro-Deadline-S)")

    wrk = add("worker",
              "distributed-search worker: evaluates candidate chunks "
              "for remote coordinators (docs/distributed.md)")
    opt(wrk, "--bind", default="127.0.0.1:8178", metavar="HOST:PORT",
        help="listen address; port 0 picks an ephemeral port "
             "(default: 127.0.0.1:8178 — loopback only; bind a "
             "routable address only on a trusted network)")

    bsrv = add("bench-serve",
               "closed-loop load harness against an in-process server: "
               "p50/p90/p99 latency + RPS")
    opt(bsrv, "--clients", type=int, default=4,
        help="concurrent closed-loop client threads")
    opt(bsrv, "--duration", type=float, default=2.0,
        help="seconds of sustained load")
    opt(bsrv, "--pool-size", type=int, default=32)
    opt(bsrv, "--cache-dir", default=None, metavar="DIR")
    opt(bsrv, "--timeout", type=float, default=30.0,
        help="per-request client timeout in seconds (connect and read)")
    opt(bsrv, "--report", default=None, metavar="PATH",
        help="write a BENCH_serve.json envelope here "
             "(scripts/check_perf_regression.py compatible)")
    return parser


# ---------------------------------------------------------------------------
# Scenario assembly: file (if any) + explicitly-typed flag overrides.
# ---------------------------------------------------------------------------

def _split_csv(raw: str) -> List[str]:
    return [s.strip() for s in raw.split(",") if s.strip()]


def _parse_weights(spec: Optional[str]) -> Optional[dict]:
    if not spec:
        return None
    weights = {}
    for item in spec.split(","):
        if not item.strip():
            continue
        name, _, value = item.partition("=")
        try:
            weights[name.strip()] = float(value) if value else 1.0
        except ValueError:
            raise ScenarioValidationError(
                "search.weights",
                f"--weights takes name=number pairs, got {item!r}") from None
    return weights or None


def _set(overrides: Dict, section: str, key: str, value) -> None:
    overrides.setdefault(section, {})[key] = value


def _common_overrides(args) -> Dict[str, dict]:
    """Model/cluster/training overrides for explicitly-typed flags."""
    explicit = args._explicit
    o: Dict[str, dict] = {}
    if "model" in explicit:
        _set(o, "model", "name", args.model)
    if "pes" in explicit:
        _set(o, "cluster", "pes", args.pes)
    for dest, key in (("dataset", "dataset"),
                      ("samples_per_pe", "samples_per_pe"),
                      ("gamma", "gamma"),
                      ("optimizer", "optimizer"),
                      ("batch", "batch")):
        if dest in explicit:
            _set(o, "training", key, getattr(args, dest))
    return o


def _comm_overrides(args, overrides: Dict, *, multi: bool = False) -> None:
    """Fold ``--comm-policy`` / ``--comm-algo`` into the overrides.

    ``multi=True`` (search/sweep) routes a comma-separated policy list
    into the ``search.comm_policies`` dimension; everywhere else a list
    is an error — only search opens the policy as a dimension.
    """
    explicit = args._explicit
    if "comm_policy" in explicit and args.comm_policy is not None:
        policies = _split_csv(args.comm_policy)
        bad = sorted(set(policies) - set(POLICIES))
        if bad:
            # SystemExit(2), not a return code: the legacy contract for
            # malformed comm flags, which callers and tests rely on.
            print(f"error: unknown comm policy {bad[0]!r}; choose from "
                  f"{sorted(POLICIES)}", file=sys.stderr)
            raise SystemExit(2)
        if len(policies) > 1 and not multi:
            print("error: only 'search' sweeps several comm policies; "
                  "give a single --comm-policy here", file=sys.stderr)
            raise SystemExit(2)
        if len(policies) > 1 or (multi and args.command == "sweep"):
            _set(overrides, "search", "comm_policies", policies)
        elif policies:
            _set(overrides, "comm", "policy", policies[0])
            if multi:
                # An explicit single policy pins the whole search run —
                # it must also clear a scenario file's multi-policy
                # sweep dimension, or the pin would silently lose.
                _set(overrides, "search", "comm_policies", [])
    if "comm_algo" in explicit and args.comm_algo is not None:
        _set(overrides, "comm", "algo", parse_comm_algo(args.comm_algo))


def _search_overrides(args, overrides: Dict) -> None:
    """Fold the shared search/sweep space + engine flags in."""
    explicit = args._explicit
    if "strategies" in explicit and args.strategies is not None:
        _set(overrides, "search", "strategies", _split_csv(args.strategies))
    if "pe_sweep" in explicit:
        _set(overrides, "search", "pe_sweep", bool(args.pe_sweep))
    if "exhaustive" in explicit:
        _set(overrides, "search", "exhaustive", bool(args.exhaustive))
    if "segments" in explicit:
        try:
            segments = [int(s) for s in _split_csv(args.segments)]
        except ValueError:
            raise ScenarioValidationError(
                "search.segments",
                f"--segments takes comma-separated integers, "
                f"got {args.segments!r}") from None
        _set(overrides, "search", "segments", segments)
    if "workers" in explicit and args.workers is not None:
        # One flag, two spellings: an integer is the local pool width;
        # anything with a ':' is a remote worker address list.
        if ":" in str(args.workers):
            _set(overrides, "search", "remote_workers",
                 _split_csv(str(args.workers)))
        else:
            try:
                _set(overrides, "search", "workers", int(args.workers))
            except ValueError:
                raise ScenarioValidationError(
                    "search.workers",
                    f"--workers takes an integer pool width or "
                    f"comma-separated host:port addresses, "
                    f"got {args.workers!r}") from None
    if "executor" in explicit:
        _set(overrides, "search", "executor", args.executor)
    if "cache_dir" in explicit and args.cache_dir is not None:
        _set(overrides, "search", "cache_dir", args.cache_dir)
    if getattr(args, "cache", None) is not None and "cache" in explicit:
        _set(overrides, "search", "cache", args.cache)
    if "weights" in explicit and args.weights is not None:
        _set(overrides, "search", "weights", _parse_weights(args.weights))


def _strategy_overrides(args, overrides: Dict) -> None:
    explicit = args._explicit
    if "strategy" in explicit:
        _set(overrides, "strategy", "id", args.strategy)
    if "segments" in explicit:
        _set(overrides, "strategy", "segments", args.segments)


def _load_scenario(args, overrides: Dict, *,
                   ensure: Sequence[str] = ()) -> ScenarioSpec:
    """File (or empty) scenario + flag overrides, re-validated.

    ``ensure`` names optional sections the command needs materialized
    (``"strategy"`` for project/simulate, ``"search"``/``"sweep"`` for
    the search commands), so the scenario echo is self-describing even
    when every field is a default.
    """
    base = (
        Scenario.from_file(args.scenario)
        if getattr(args, "scenario", None)
        else Scenario.from_dict({})
    )
    scenario = base.merged(overrides) if overrides else base
    missing = {
        section: {} for section in ensure
        if getattr(scenario, section) is None
    }
    if missing:
        scenario = scenario.merged(missing)
    return scenario


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------

def _print_json(result, diagnostics: Optional[dict] = None) -> int:
    blob = result.to_dict()
    if diagnostics is not None:
        # Injected at the CLI layer only when --metrics asked for it,
        # so the result schema stays stable by default.
        blob["diagnostics"] = diagnostics
    print(json.dumps(blob, indent=2))
    return result.exit_code


def _obs_session(args, scenario) -> Session:
    """Build the command's Session, observability-enabled when asked.

    ``--trace`` turns on a live :class:`~repro.obs.tracer.Tracer`;
    ``--trace`` or ``--metrics`` attaches a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` (the trace file embeds
    the counters too).  Without either flag the session runs on the
    shared no-op tracer — the zero-overhead default.
    """
    from .obs import MetricsRegistry, Tracer

    trace = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False))
    return Session(
        scenario,
        tracer=Tracer() if trace else None,
        metrics=MetricsRegistry() if (trace or want_metrics) else None,
    )


def _obs_finish(args, session: Session) -> Optional[dict]:
    """Export/print what ``--trace`` / ``--metrics`` asked for.

    Writes the trace file (Chrome trace-event JSON, or JSONL for a
    ``.jsonl`` path), prints the span/metrics tables to stderr under
    plain ``--metrics``, and returns the ``diagnostics`` block to embed
    in the ``--json`` envelope (``None`` when not requested).
    """
    from .obs.export import (
        format_metrics_table,
        format_spans_table,
        write_chrome_trace,
        write_jsonl,
    )

    trace = getattr(args, "trace", None)
    if trace:
        spans = session.tracer.spans
        if trace.endswith(".jsonl"):
            write_jsonl(trace, spans=spans, metrics=session.metrics)
        else:
            write_chrome_trace(trace, spans=spans, metrics=session.metrics)
        print(f"trace: {trace}", file=sys.stderr)
    if not getattr(args, "metrics", False):
        return None
    if getattr(args, "json", False):
        return session.diagnostics()
    if session.tracer.enabled and len(session.tracer):
        print(format_spans_table(session.tracer.spans), file=sys.stderr)
    print(format_metrics_table(session.metrics), file=sys.stderr)
    return None


def _error_blob(scenario: ScenarioSpec, kind: str, exc: Exception) -> dict:
    """The JSON error envelope for infeasible configurations.

    Shared with the HTTP server (422 bodies), so CLI and service
    consumers parse one shape — see :func:`repro.api.results.
    error_envelope`.
    """
    from .api.results import error_envelope

    return error_envelope(scenario, kind, exc)


def _invoke(verb):
    """Run a session verb; ``None`` means a bad configuration (exit 2).

    Construction and evaluation errors (the legacy ``_make_oracle`` /
    search-invocation catch scope) print ``error:`` and map to exit 2;
    rendering stays outside this catch, so defects there still raise
    visibly instead of masquerading as user mistakes.
    """
    try:
        return verb()
    except ScenarioValidationError:
        raise
    except DeadlineExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return None


def _suggestion_rows(suggestions) -> List[list]:
    rows = []
    for s in suggestions:
        if s.feasible:
            rows.append([s.rank, s.strategy.describe(),
                         f"{s.epoch_time:.1f} s",
                         f"{s.projection.memory_bytes / 1e9:.1f} GB"])
        else:
            rows.append(["-", s.strategy.describe() if s.strategy else "?",
                         "infeasible", s.reason])
    return rows


class _FrontierStream:
    """Anytime-search printer: maintains a running Pareto frontier and
    prints a row the moment an evaluation enters it.  Printed rows are a
    superset of the final frontier (later arrivals can dominate earlier
    prints, which is inherent to anytime output).

    Rows go to ``file`` — stderr under ``--json`` so stdout stays a
    single parseable document, stdout otherwise — and every row is
    flushed as it is written, so piped consumers (``repro search
    --stream | head``) see anytime results immediately instead of after
    a block-buffer fills."""

    def __init__(self, objectives=None, file=None, prefix: str = "") -> None:
        from .search.pareto import DEFAULT_OBJECTIVES, OBJECTIVES

        self._names = tuple(objectives or DEFAULT_OBJECTIVES)
        self._vec = lambda e: tuple(OBJECTIVES[n](e) for n in self._names)
        self._frontier = []  # [(vector, evaluation)]
        self._file = file  # None = stdout (resolved at print time)
        self._prefix = prefix
        self.seen = 0

    def __call__(self, evaluation) -> None:
        from .search.pareto import dominates

        self.seen += 1
        if not evaluation.feasible:
            return
        v = self._vec(evaluation)
        if any(dominates(w, v) or w == v for w, _ in self._frontier):
            return
        self._frontier = [
            (w, e) for w, e in self._frontier if not dominates(v, w)
        ]
        self._frontier.append((v, evaluation))
        out = self._file if self._file is not None else sys.stdout
        print(f"{self._prefix}[{self.seen}] {evaluation.describe()} "
              f"epoch={evaluation.epoch_time:.1f}s "
              f"iter={evaluation.iteration_time * 1e3:.1f}ms "
              f"mem={evaluation.memory_gb:.1f}GB "
              f"(frontier {len(self._frontier)})",
              file=out, flush=True)


def _print_profile(timings: Dict[str, float], file=None) -> None:
    """Render a search's stage-timing table (the ``--profile`` flag).

    One row per pipeline stage from ``SearchReport.timings`` plus the
    unattributed remainder; written to ``file`` (stderr by default so
    ``--json`` stdout stays parseable).  Pruning/projection are busy
    times summed across workers, so shares are computed against the
    larger of the wall total and the stage sum — with several threads
    the busy sum can exceed the wall clock, like cProfile's cumtime.
    """
    from .search.engine import TIMING_STAGES

    out = file if file is not None else sys.stderr
    total = float(timings.get("total_s", 0.0))
    known = sum(
        float(timings.get(key, 0.0))
        for key in TIMING_STAGES if key != "total_s"
    )
    denom = max(total, known)
    rows = []
    for key in TIMING_STAGES:
        if key == "total_s":
            continue
        v = float(timings.get(key, 0.0))
        rows.append([key[:-2].replace("_", " "), f"{v * 1e3:.2f}",
                     f"{v / denom:.1%}" if denom else "-"])
    other = max(total - known, 0.0)
    rows.append(["other", f"{other * 1e3:.2f}",
                 f"{other / denom:.1%}" if denom else "-"])
    rows.append(["total (wall)", f"{total * 1e3:.2f}",
                 f"{total / denom:.1%}" if denom else "-"])
    print("search stage timings:", file=out)
    print(reporting.format_table(["stage", "ms", "share"], rows), file=out)


# ---------------------------------------------------------------------------
# Subcommands — thin adapters: flags -> scenario -> Session -> result.
# ---------------------------------------------------------------------------

def _cmd_project(args) -> int:
    overrides = _common_overrides(args)
    _comm_overrides(args, overrides)
    _strategy_overrides(args, overrides)
    scenario = _load_scenario(args, overrides, ensure=("strategy",))
    session = _obs_session(args, scenario)
    try:
        result = session.project(inference=args.inference,
                                 findings=args.findings)
    except ScenarioValidationError:
        raise  # a document defect, not an infeasible configuration
    except (StrategyError, ValueError) as exc:
        if args.json:
            print(json.dumps(_error_blob(scenario, "project", exc)))
        else:
            print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    diagnostics = _obs_finish(args, session)
    if args.json:
        return _print_json(result, diagnostics)
    proj = result.projection
    it = proj.per_iteration
    print(f"{session.model.name} / {result.strategy.describe()} / "
          f"B={result.batch} on {session.cluster}")
    print(reporting.format_breakdown(it))
    print(f"memory: {proj.memory_bytes / 1e9:.2f} GB/PE "
          f"(capacity {proj.memory_capacity / 1e9:.0f} GB) "
          f"{'OK' if proj.feasible_memory else 'OUT OF MEMORY'}")
    print(f"epoch: {proj.per_epoch.total:.1f} s "
          f"({proj.iterations} iterations)")
    if proj.comm_algorithms:
        chosen = ", ".join(f"{ph}={al}" for ph, al in proj.comm_algorithms)
        print(f"comm: policy={proj.comm_policy} ({chosen})")
    for note in proj.notes:
        print(f"note: {note}")
    for f in result.findings:
        print(f"finding: {f}")
    return result.exit_code


def _cmd_suggest(args) -> int:
    overrides = _common_overrides(args)
    _comm_overrides(args, overrides)
    session = Session(_load_scenario(args, overrides))
    result = _invoke(session.suggest)
    if result is None:
        return 2
    if args.json:
        return _print_json(result)
    print(reporting.format_table(
        ["rank", "strategy", "epoch", "memory / reason"],
        _suggestion_rows(result.suggestions)))
    return 0


def _cmd_hybrid(args) -> int:
    overrides = _common_overrides(args)
    _comm_overrides(args, overrides)
    session = Session(_load_scenario(args, overrides))
    kinds = tuple(_split_csv(args.kinds))
    result = _invoke(lambda: session.hybrid(kinds=kinds, top=args.top))
    if result is None:
        return 2
    if args.json:
        return _print_json(result)
    rows = _suggestion_rows(
        [s for s in result.suggestions[: args.top] if s.feasible])
    print(reporting.format_table(["rank", "config", "epoch", "memory"], rows))
    if result.infeasible_count:
        print(f"({result.infeasible_count} configurations infeasible)")
    return 0


def _cmd_search(args) -> int:
    overrides = _common_overrides(args)
    _comm_overrides(args, overrides, multi=True)
    _search_overrides(args, overrides)
    scenario = _load_scenario(args, overrides, ensure=("search",))
    session = _obs_session(args, scenario)
    # With --json the rows stream to stderr so stdout stays parseable.
    stream = (
        _FrontierStream(file=sys.stderr if args.json else None)
        if args.stream else None
    )
    result = _invoke(lambda: session.search(
        on_result=stream, deadline_s=args.deadline_s))
    if result is None:
        return 2
    report = result.report
    if args.frontier_csv:
        from .search.sweep import write_frontier_csv

        write_frontier_csv(args.frontier_csv, report)
    if args.profile:
        _print_profile(report.timings)
    diagnostics = _obs_finish(args, session)
    if args.json:
        return _print_json(result, diagnostics)
    st = report.stats
    print(f"{session.model.name} on {session.cluster}: searched "
          f"{st['candidates']} candidates ({st['pruned']} pruned, "
          f"{st['infeasible']} infeasible, {st['cache_hits']} cache hits)")
    if report.best is None:
        print("no feasible configuration found", file=sys.stderr)
        return 1
    rows = [
        [i + 1, e.describe(), f"{e.epoch_time:.1f} s",
         f"{e.iteration_time * 1e3:.1f} ms", f"{e.memory_gb:.1f} GB",
         e.candidate.p]
        for i, e in enumerate(report.frontier[: args.top])
    ]
    print(reporting.format_table(
        ["#", "config", "epoch", "iteration", "memory", "p"], rows))
    if len(report.frontier) > args.top:
        print(f"({len(report.frontier) - args.top} more frontier points)")
    print(f"best: {report.best.describe()} "
          f"epoch={report.best.epoch_time:.1f} s "
          f"memory={report.best.memory_gb:.1f} GB")
    search_spec = scenario.search
    if search_spec.cache:
        print(f"cache: {search_spec.cache}")
    if args.frontier_csv:
        print(f"frontier csv: {args.frontier_csv}")
    return 0


def _cmd_sweep(args) -> int:
    overrides = _common_overrides(args)
    _comm_overrides(args, overrides, multi=True)
    _search_overrides(args, overrides)
    explicit = args._explicit
    if "models" in explicit:
        _set(overrides, "sweep", "models", _split_csv(args.models))
    if "report" in explicit and args.report is not None:
        _set(overrides, "sweep", "report_dir", args.report)
    if "plot" in explicit:
        _set(overrides, "sweep", "plot", bool(args.plot))
    scenario = _load_scenario(args, overrides, ensure=("sweep", "search"))
    session = _obs_session(args, scenario)
    streams: dict = {}

    def on_result(model, evaluation) -> None:
        if model not in streams:
            streams[model] = _FrontierStream(
                file=sys.stderr if args.json else None,
                prefix=f"{model} ")
        streams[model](evaluation)

    if args.resume and args.checkpoint is None:
        print("error: --resume needs --checkpoint", file=sys.stderr)
        return 2
    result = _invoke(
        lambda: session.sweep(
            on_result=on_result if args.stream else None,
            checkpoint=args.checkpoint, resume=args.resume,
            deadline_s=args.deadline_s))
    if result is None:
        return 2
    report = result.report
    if args.profile:
        # One table: stages summed across the swept models.
        aggregate: Dict[str, float] = {}
        for res in report.results:
            for key, value in res.report.timings.items():
                aggregate[key] = aggregate.get(key, 0.0) + value
        _print_profile(aggregate)
    diagnostics = _obs_finish(args, session)
    if args.json:
        return _print_json(result, diagnostics)
    executor = scenario.search.executor or "process"
    rows = []
    for res, row in zip(report.results, report.summary_rows()):
        feasible = res.best is not None
        rows.append([
            row["model"], row["best"],
            f"{row['epoch_s']:.1f} s" if feasible else "-",
            f"{row['memory_gb']:.1f} GB" if feasible else "-",
            row["frontier"], row["candidates"], row["cache_hits"],
            f"{row['seconds']:.2f} s",
        ])
    print(f"swept {len(report.results)} models on {session.cluster} "
          f"({executor} executor, {report.seconds:.2f} s total)")
    print(reporting.format_table(
        ["model", "best", "epoch", "memory", "frontier", "cands",
         "cache hits", "wall"], rows))
    for res in report.results:
        for i, e in enumerate(res.report.frontier[: args.top]):
            print(f"  {res.model} #{i + 1}: {e.describe()} "
                  f"epoch={e.epoch_time:.1f}s mem={e.memory_gb:.1f}GB")
    best = report.best_overall
    if best is not None:
        print(f"fastest model: {best.model} — {best.best.describe()} "
              f"epoch={best.best.epoch_time:.1f} s")
    if scenario.search.cache_dir:
        print(f"cache dir: {scenario.search.cache_dir}")
    for name, path in sorted(report.artifacts.items()):
        print(f"artifact {name}: {path}")
    return result.exit_code


def _cmd_plan(args) -> int:
    overrides = _common_overrides(args)
    session = Session(_load_scenario(args, overrides))
    batch = session.batch
    plan = _invoke(lambda: session.oracle.plan_layerwise(session.pes, batch))
    if plan is None:
        return 2
    print(f"{session.model.name} / p={session.pes} / B={batch}: "
          f"per-layer plan ({plan.per_iteration.total * 1e3:.1f} ms/iter)")
    print("mode counts:", dict(sorted(plan.mode_counts.items())))
    rows = [
        [a.layer, a.mode, f"{a.comp_s * 1e3:.2f}", f"{a.comm_s * 1e3:.2f}",
         f"{a.transition_s * 1e3:.2f}"]
        for a in plan.assignments if a.mode != "data"
    ]
    if rows:
        print("non-data-parallel layers:")
        print(reporting.format_table(
            ["layer", "mode", "comp (ms)", "comm (ms)", "redecomp (ms)"],
            rows))
    return 0


def _cmd_simulate(args) -> int:
    overrides = _common_overrides(args)
    _strategy_overrides(args, overrides)
    scenario = _load_scenario(args, overrides, ensure=("strategy",))
    session = _obs_session(args, scenario)
    try:
        result = session.simulate(iterations=args.iterations,
                                  congestion=args.congestion,
                                  seed=args.seed)
    except ScenarioValidationError:
        raise  # a document defect, not an infeasible configuration
    except (StrategyError, ValueError) as exc:
        if args.json:
            print(json.dumps(_error_blob(scenario, "simulate", exc)))
        else:
            print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    diagnostics = _obs_finish(args, session)
    if args.json:
        return _print_json(result, diagnostics)
    print(f"oracle   : "
          f"{reporting.format_breakdown(result.projection.per_iteration)}")
    print(f"measured : {reporting.format_breakdown(result.run.breakdown)}")
    print(f"accuracy : {reporting.pct(result.accuracy)}")
    for note in result.run.notes:
        print(f"note: {note}")
    return 0


def _cmd_validate(args) -> int:
    if args.scenario:
        failed = 0
        for path in args.scenario:
            try:
                spec = Scenario.from_file(path)
            except ScenarioValidationError as exc:
                print(f"{path}: INVALID — {exc}", file=sys.stderr)
                failed += 1
                continue
            print(f"{path}: OK ({spec.describe()})")
        return 1 if failed else 0
    from .models import toy_cnn, toy_cnn3d
    from .tensorparallel import (
        ChannelParallelExecutor,
        DataFilterExecutor,
        DataParallelExecutor,
        FilterParallelExecutor,
        PipelineExecutor,
        SpatialParallelExecutor,
    )
    from .tensorparallel.validate import validate_strategy

    model2d, model3d = toy_cnn(), toy_cnn3d()
    cases = [
        (model2d, DataParallelExecutor, args.p, {}),
        (model2d, SpatialParallelExecutor, args.p, {}),
        (model2d, FilterParallelExecutor, args.p, {}),
        (model2d, ChannelParallelExecutor, args.p, {}),
        (model2d, PipelineExecutor, min(args.p, 3), {"segments": 4}),
        (model2d, DataFilterExecutor, 2, {"p2": 2}),
        (model3d, DataParallelExecutor, 2, {}),
        (model3d, SpatialParallelExecutor, 2, {}),
    ]
    failed = 0
    for model, cls, p, kwargs in cases:
        report = validate_strategy(model, cls, p, batch=args.batch,
                                   executor_kwargs=kwargs)
        print(report)
        failed += 0 if report.ok else 1
    return 1 if failed else 0


def _cmd_experiment(args) -> int:
    from .harness import (
        run_accuracy_summary, run_fig3, run_fig4, run_fig5, run_fig6,
        run_fig7, run_fig8, run_scenario, run_search_best, run_sweep,
        run_table3, run_table5, run_table6,
    )

    quick = not args.full
    name = args.name
    if name == "scenario":
        if not getattr(args, "scenario", None):
            print("error: 'experiment scenario' needs --scenario FILE",
                  file=sys.stderr)
            return 2
        try:
            result = run_scenario(args.scenario)
        except ScenarioValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (StrategyError, ValueError) as exc:
            print(f"infeasible: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(result.to_dict(), indent=2))
        return result.exit_code
    if name == "fig3":
        for c in run_fig3(quick=quick):
            print(f"{c.label:28s} oracle={c.oracle.total * 1e3:9.2f}ms "
                  f"measured={c.measured.total * 1e3:9.2f}ms "
                  f"acc={reporting.pct(c.accuracy)}")
    elif name == "fig4":
        for r in run_fig4():
            print(f"p={r.p:4d} oracle={r.oracle_iter:.3f}s "
                  f"measured={r.measured_iter:.3f}s "
                  f"acc={reporting.pct(r.accuracy)}")
    elif name == "fig5":
        for r in run_fig5():
            print(f"{r.strategy:3s} p={r.p:4d} epoch={r.epoch_time:8.1f}s "
                  f"speedup={r.speedup_vs_spatial:5.1f}x "
                  f"{'OK' if r.feasible else 'OOM'}")
    elif name == "fig6":
        import numpy as np

        for s in run_fig6():
            print(f"{s.label:20s} expected={s.expected * 1e3:8.2f}ms "
                  f"median={np.median(s.samples) * 1e3:8.2f}ms "
                  f"worst={s.max_slowdown:.2f}x")
    elif name == "fig7":
        for r in run_fig7():
            print(f"{r.model:10s} {r.optimizer:8s} "
                  f"wu={reporting.pct(r.wu_share)}")
    elif name == "fig8":
        for r in run_fig8():
            print(f"p={r.p:3d} ideal={r.ideal_conv_s * 1e3:7.2f}ms "
                  f"actual={r.simulated_conv_s * 1e3:7.2f}ms "
                  f"eff={reporting.pct(r.scaling_efficiency)}")
    elif name == "table3":
        for r in run_table3():
            print(r)
    elif name == "table5":
        for r in run_table5():
            print(r)
    elif name == "table6":
        for sid, findings in run_table6(quick=quick).items():
            print(f"{sid}:")
            for f in findings:
                print(f"  {f}")
    elif name == "search":
        for r in run_search_best(quick=not args.full):
            print(f"{r.model:10s} p={r.p:4d} "
                  f"suggest={r.suggest_best:14s} "
                  f"{r.suggest_epoch_s:8.1f}s  "
                  f"search={r.search_best:24s} {r.search_epoch_s:8.1f}s  "
                  f"gain={reporting.pct(r.improvement)} "
                  f"(frontier {r.frontier_size}, "
                  f"{r.pruned}/{r.candidates} pruned)")
    elif name == "sweep":
        rep = run_sweep(quick=not args.full)
        for row in rep.summary_rows():
            print(f"{row['model']:10s} best={row['best']:28s} "
                  f"epoch={row['epoch_s']:8.1f}s "
                  f"frontier={row['frontier']:2d} "
                  f"cands={row['candidates']:3d} "
                  f"wall={row['seconds']:.2f}s")
    elif name == "accuracy":
        s = run_accuracy_summary(quick=quick)
        for k, v in sorted(s.per_strategy.items()):
            print(f"{k:8s} {reporting.pct(v)}")
        print(f"overall  {reporting.pct(s.overall)}")
    return 0


def _serve_until_signal(serve_forever, shutdown, *, ready=None) -> None:
    """Run a blocking server loop with graceful SIGTERM/SIGINT handling.

    ``shutdown`` must unblock ``serve_forever`` (finishing in-flight
    work); it runs on a helper thread because calling e.g.
    ``HTTPServer.shutdown`` from a signal handler on the serving thread
    deadlocks.  ``ready`` (optional) runs after the handlers are live —
    the "listening on ..." banner goes there, so a supervisor that
    signals the moment it sees the banner can never hit the default
    disposition.  Previous handlers are restored on exit; when not on
    the main thread (in-process tests), signals can't be installed and
    the loop just runs until ``shutdown`` is called from outside.
    """
    import signal

    def handle(signum, frame):
        threading.Thread(target=shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handle)
        except ValueError:  # not the main thread
            break
    try:
        if ready is not None:
            ready()
        serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _cmd_serve(args) -> int:
    from .serve import PlanningServer

    # Chaos campaigns arm a fault plan in the server process via
    # REPRO_FAULTS (see docs/resilience.md); a no-op otherwise.
    arm_from_env()
    server = PlanningServer(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size,
        cache_dir=args.cache_dir,
        job_workers=args.job_workers,
        job_max_pending=args.job_max_pending,
        request_deadline_s=args.request_deadline_s,
    )
    def banner() -> None:
        print(f"repro serve: listening on {server.url} "
              f"(pool={args.pool_size}, job workers={args.job_workers})")
        print("endpoints: POST "
              "/v1/{project,suggest,hybrid,search,batch,jobs} "
              "GET /v1/jobs[/<id>] /healthz /metricsz")
        sys.stdout.flush()

    try:
        _serve_until_signal(
            server.serve_forever, server.shutdown, ready=banner)
    finally:
        server.close()
    return 0


def _cmd_worker(args) -> int:
    from .dist import WorkerServer
    from .dist.protocol import parse_address

    try:
        host, port = parse_address(args.bind)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    arm_from_env()
    server = WorkerServer(host, port)

    def banner() -> None:
        # check_dist.py and deployment scripts parse this line for the
        # resolved address (port 0 binds ephemerally).
        print(f"repro worker: listening on {server.address}")
        sys.stdout.flush()

    try:
        _serve_until_signal(server.serve_forever, server.close,
                            ready=banner)
    finally:
        server.close()
    print(f"repro worker: stopped after {server.chunks_served} chunk(s)")
    return 0


def _cmd_bench_serve(args) -> int:
    from .serve import LoadGenerator, PlanningServer
    from .serve.loadgen import write_bench_json

    with PlanningServer(port=0, pool_size=args.pool_size,
                        cache_dir=args.cache_dir) as server:
        generator = LoadGenerator(
            server.url, clients=args.clients, duration_s=args.duration,
            timeout=args.timeout)
        report = generator.run()
    for line in report.lines():
        print(line)
    if args.report:
        path = write_bench_json(args.report, report)
        print(f"wrote {path}")
    return 0 if report.errors == 0 else 1


_COMMANDS = {
    "project": _cmd_project,
    "suggest": _cmd_suggest,
    "hybrid": _cmd_hybrid,
    "search": _cmd_search,
    "sweep": _cmd_sweep,
    "plan": _cmd_plan,
    "simulate": _cmd_simulate,
    "validate": _cmd_validate,
    "experiment": _cmd_experiment,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "bench-serve": _cmd_bench_serve,
}

#: Commands whose handlers build a Session (and so can fail scenario
#: validation); the rest parse no scenario-mapped flags.  Only
#: ScenarioValidationError is handled here — verb invocations carry
#: their own narrow catches, so genuine defects in rendering or
#: reporting still surface as tracebacks instead of a clean "error:".
_SCENARIO_COMMANDS = frozenset(
    {"project", "suggest", "hybrid", "search", "sweep", "plan", "simulate"})


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse ``argv`` and dispatch; returns the exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "verbose", 0):
        from .obs import configure_logging

        configure_logging(args.verbose)
    # A second parse with suppressed defaults reveals which flags were
    # explicitly typed — only those override a --scenario document.
    args._explicit = frozenset(
        vars(build_parser(suppress_defaults=True).parse_args(argv)))
    handler = _COMMANDS[args.command]
    if args.command in _SCENARIO_COMMANDS:
        try:
            return handler(args)
        except ScenarioValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main(argv=None))
