"""Command-line interface for the ParaDL reproduction.

The paper positions ParaDL as a practitioner's utility ("suggesting the
best strategy for a given CNN, dataset and resource budget", "identifying
the time and resources to provision").  This CLI exposes those workflows:

.. code-block:: console

   python -m repro project  --model resnet50 --strategy d  -p 64 --batch 2048
   python -m repro project  --model resnet50 --strategy ds -p 64 --inference
   python -m repro suggest  --model vgg16 -p 64 --samples-per-pe 32
   python -m repro hybrid   --model vgg16 -p 64
   python -m repro search   --model resnet50 -p 64 --cache plan-cache.json
   python -m repro search   --model resnet50 -p 64 --comm-policy paper,auto \
                            --stream --frontier-csv frontier.csv
   python -m repro sweep    --models resnet50,resnet152,vgg16 -p 64 \
                            --executor process --cache-dir plan-cache \
                            --report reports/
   python -m repro project  --model resnet50 --strategy z -p 64 \
                            --comm-policy auto --json
   python -m repro simulate --model resnet50 --strategy d -p 64 --batch 2048
   python -m repro validate --p 4
   python -m repro experiment fig5

Every command prints plain-text tables (see :mod:`repro.harness.reporting`)
and returns a non-zero exit code on infeasible/failed configurations.
``project``, ``suggest``, ``hybrid``, ``search``, and ``sweep`` accept
``--json`` for machine-readable output.  Under ``--json``, ``--stream``
rows go to *stderr* so stdout stays a single parseable JSON document;
without ``--json`` they are printed to stdout, flushed line-by-line, so
piped consumers see anytime results as they land.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .collectives.registry import COLLECTIVES
from .collectives.selector import POLICIES, CommModel
from .core.calibration import profile_model
from .core.oracle import ParaDL
from .core.limits import detect_findings
from .core.strategies import StrategyError, strategy_from_id
from .data.datasets import DATASETS, IMAGENET
from .harness import reporting
from .models import MODEL_BUILDERS, build_model
from .network.congestion import CongestionModel
from .network.topology import abci_like_cluster

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParaDL oracle: project/suggest/simulate CNN "
                    "parallelization strategies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, model: bool = True) -> None:
        if model:
            p.add_argument("--model", default="resnet50",
                           choices=sorted(MODEL_BUILDERS))
        p.add_argument("-p", "--pes", type=int, default=64,
                       help="number of processing elements (GPUs)")
        p.add_argument("--dataset", default="imagenet",
                       choices=sorted(DATASETS))
        p.add_argument("--samples-per-pe", type=int, default=32)
        p.add_argument("--gamma", type=float, default=0.5,
                       help="memory-reuse factor")
        p.add_argument("--optimizer", default="sgd",
                       choices=("sgd", "momentum", "adam"))

    def search_flags(
        p: argparse.ArgumentParser, default_executor: str = "thread"
    ) -> None:
        """Space + engine flags shared by ``search`` and ``sweep``."""
        p.add_argument("--strategies", default=None,
                       help="comma-separated strategy ids (default: all)")
        p.add_argument("--pe-sweep", action="store_true",
                       help="sweep power-of-two PE budgets up to -p")
        p.add_argument("--segments", default="2,4,8",
                       help="pipeline micro-batch counts to try")
        p.add_argument("--workers", type=int, default=None,
                       help="evaluation worker-pool width")
        p.add_argument("--executor", default=default_executor,
                       choices=("thread", "process"),
                       help="evaluation backend: GIL-bound threads or a "
                            "process pool that projects across cores "
                            f"(default: {default_executor})")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared cross-model cache directory (one "
                            "fingerprinted file per model/cluster)")
        p.add_argument("--weights", default=None,
                       help="scalarization weights, e.g. "
                            "'epoch_time=1,memory=0.2,pes=0.1'")
        p.add_argument("--stream", action="store_true",
                       help="anytime search: print frontier rows "
                            "incrementally, flushed line-by-line "
                            "(to stderr under --json so stdout stays "
                            "parseable)")

    def json_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output")

    def comm_flags(p: argparse.ArgumentParser, multi: bool = False) -> None:
        p.add_argument(
            "--comm-policy", default="paper",
            help="collective algorithm selection policy: "
                 f"{'/'.join(POLICIES)}"
                 + (", or a comma-separated list to sweep" if multi else ""),
        )
        p.add_argument(
            "--comm-algo", default=None, metavar="SPEC",
            help="force collective algorithms, e.g. 'recursive-doubling' "
                 "(applies to allreduce) or "
                 "'allreduce=tree,broadcast=binomial-tree'",
        )

    proj = sub.add_parser("project", help="project one strategy (Table 3)")
    common(proj)
    proj.add_argument("--strategy", default="d",
                      choices=("d", "z", "s", "p", "f", "c", "df", "ds"))
    proj.add_argument("--batch", type=int, default=None,
                      help="global mini-batch (default: samples-per-pe * p)")
    proj.add_argument("--segments", type=int, default=4,
                      help="pipeline micro-batches S")
    proj.add_argument("--inference", action="store_true",
                      help="forward-only projection (Section 5.4.2)")
    proj.add_argument("--findings", action="store_true",
                      help="also run the Table-6 limitation detector")
    comm_flags(proj)
    json_flag(proj)

    sug = sub.add_parser("suggest", help="rank all strategies for a budget")
    common(sug)
    comm_flags(sug)
    json_flag(sug)

    hyb = sub.add_parser("hybrid", help="search (p1, p2) hybrid configs")
    common(hyb)
    hyb.add_argument("--kinds", default="df,ds")
    hyb.add_argument("--top", type=int, default=5)
    comm_flags(hyb)
    json_flag(hyb)

    srch = sub.add_parser(
        "search",
        help="automated strategy search: pruning + cache + Pareto frontier")
    common(srch)
    search_flags(srch)
    srch.add_argument("--cache", default=None, metavar="PATH",
                      help="persistent projection-cache JSON file")
    srch.add_argument("--top", type=int, default=10,
                      help="frontier rows to print")
    srch.add_argument("--frontier-csv", default=None, metavar="PATH",
                      help="export the Pareto frontier as CSV")
    comm_flags(srch, multi=True)
    json_flag(srch)

    swp = sub.add_parser(
        "sweep",
        help="multi-model sweep: one search per zoo model, "
             "consolidated frontier report")
    swp.add_argument("--models", default="resnet50,resnet152,vgg16",
                     help="comma-separated zoo model names")
    common(swp, model=False)
    search_flags(swp, default_executor="process")
    swp.add_argument("--report", default=None, metavar="DIR",
                     help="write per-model frontier CSVs + cross-model "
                          "summary.csv here")
    swp.add_argument("--plot", action="store_true",
                     help="also write a frontier plot to the --report dir "
                          "(needs matplotlib; skipped quietly without it)")
    swp.add_argument("--top", type=int, default=5,
                     help="frontier rows to print per model")
    swp.add_argument("--comm-policy", default=None,
                     help="comm policies to sweep per candidate, "
                          f"comma-separated from {'/'.join(POLICIES)} "
                          "(default: the oracle's paper policy)")
    json_flag(swp)

    plan = sub.add_parser("plan",
                          help="per-layer strategy assignment (DP)")
    common(plan)
    plan.add_argument("--batch", type=int, default=None)

    simp = sub.add_parser("simulate",
                          help="simulated measured run vs projection")
    common(simp)
    simp.add_argument("--strategy", default="d",
                      choices=("d", "z", "s", "p", "f", "c", "df", "ds"))
    simp.add_argument("--batch", type=int, default=None)
    simp.add_argument("--segments", type=int, default=4)
    simp.add_argument("--iterations", type=int, default=50)
    simp.add_argument("--congestion", action="store_true",
                      help="inject external congestion (Figure 6)")
    simp.add_argument("--seed", type=int, default=42)

    val = sub.add_parser("validate",
                         help="value-by-value substrate validation")
    val.add_argument("--p", type=int, default=4)
    val.add_argument("--batch", type=int, default=8)

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=(
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "table3", "table5", "table6", "accuracy", "search", "sweep",
    ))
    exp.add_argument("--full", action="store_true",
                     help="full sweep instead of the quick grid")
    return parser


def _parse_comm_algo(spec: Optional[str]) -> dict:
    """Parse ``--comm-algo``: bare names force the allreduce algorithm;
    ``collective=name`` pairs force specific collectives."""
    algo = {}
    for item in (spec or "").split(","):
        item = item.strip()
        if not item:
            continue
        coll, sep, name = item.partition("=")
        if sep:
            algo[coll.strip()] = name.strip()
        else:
            algo["allreduce"] = item
    unknown = sorted(set(algo) - set(COLLECTIVES))
    if unknown:
        raise ValueError(
            f"unknown collective {unknown[0]!r} in --comm-algo; "
            f"choose from {sorted(COLLECTIVES)}"
        )
    return algo


def _comm_policies(args) -> List[str]:
    """The (possibly comma-separated) ``--comm-policy`` values."""
    raw = getattr(args, "comm_policy", "paper") or "paper"
    policies = [s.strip() for s in raw.split(",") if s.strip()]
    bad = sorted(set(policies) - set(POLICIES))
    if bad:
        raise ValueError(
            f"unknown comm policy {bad[0]!r}; choose from {sorted(POLICIES)}"
        )
    return policies or ["paper"]


def _make_oracle(args) -> tuple:
    dataset = DATASETS[args.dataset]
    # Shape-coupled models (CosmoFlow) are built at the dataset's sample
    # size so 512^3 memory analysis is what the user asked about.
    input_spec = (
        dataset.sample
        if args.model == "cosmoflow" and dataset.sample.ndim == 3
        else None
    )
    model = build_model(args.model, input_spec)
    cluster = abci_like_cluster(max(args.pes, 4))
    profile = profile_model(model, samples_per_pe=args.samples_per_pe,
                            optimizer=args.optimizer)
    try:
        policies = _comm_policies(args)
        if len(policies) > 1 and getattr(args, "command", None) != "search":
            raise ValueError(
                "only 'search' sweeps several comm policies; "
                "give a single --comm-policy here"
            )
        # In a multi-policy sweep every candidate pins its own policy, so
        # bind the oracle to the canonical default — this keeps the cache
        # fingerprint independent of the order the policies were listed.
        comm = CommModel(
            cluster,
            policy=policies[0] if len(policies) == 1 else "paper",
            algo=_parse_comm_algo(getattr(args, "comm_algo", None)),
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        raise SystemExit(2)
    # Parsed once here; _cmd_search reuses this instead of re-deriving,
    # so the sweep dimension and the cache fingerprint stay coupled.
    args._comm_policies = policies
    oracle = ParaDL(model, cluster, profile, gamma=args.gamma, comm=comm)
    return model, cluster, profile, oracle, dataset


def _cmd_project(args) -> int:
    model, cluster, profile, oracle, dataset = _make_oracle(args)
    batch = args.batch or args.samples_per_pe * args.pes
    try:
        strategy = strategy_from_id(
            args.strategy, args.pes, model, batch,
            segments=args.segments, intra=cluster.node.gpus,
        )
        if args.inference:
            proj = oracle.analytical.project_inference(
                strategy, batch, dataset.num_samples)
        else:
            proj = oracle.project(strategy, batch, dataset)
    except (StrategyError, ValueError) as exc:
        if args.json:
            print(json.dumps({"feasible": False, "error": str(exc)}))
        else:
            print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    it = proj.per_iteration
    if args.json:
        blob = {
            "model": model.name,
            "strategy": strategy.describe(),
            "batch": batch,
            "per_iteration": dict(it.asdict(), computation=it.computation,
                                  communication=it.communication,
                                  total=it.total),
            "epoch_s": proj.per_epoch.total,
            "iterations": proj.iterations,
            "memory_gb": proj.memory_bytes / 1e9,
            "memory_capacity_gb": proj.memory_capacity / 1e9,
            "feasible": proj.feasible_memory,
            "notes": list(proj.notes),
            "comm_policy": proj.comm_policy,
            "comm_algorithms": dict(proj.comm_algorithms),
        }
        if args.findings:
            blob["findings"] = [
                {"category": f.category, "kind": f.kind, "name": f.name,
                 "message": f.message, "severity": f.severity}
                for f in detect_findings(model, proj, profile=profile)
            ]
        print(json.dumps(blob, indent=2))
        return 0 if proj.feasible_memory else 1
    print(f"{model.name} / {strategy.describe()} / B={batch} "
          f"on {cluster}")
    print(reporting.format_breakdown(it))
    print(f"memory: {proj.memory_bytes / 1e9:.2f} GB/PE "
          f"(capacity {proj.memory_capacity / 1e9:.0f} GB) "
          f"{'OK' if proj.feasible_memory else 'OUT OF MEMORY'}")
    print(f"epoch: {proj.per_epoch.total:.1f} s "
          f"({proj.iterations} iterations)")
    if proj.comm_algorithms:
        chosen = ", ".join(f"{ph}={al}" for ph, al in proj.comm_algorithms)
        print(f"comm: policy={proj.comm_policy} ({chosen})")
    for note in proj.notes:
        print(f"note: {note}")
    if args.findings:
        for f in detect_findings(model, proj, profile=profile):
            print(f"finding: {f}")
    return 0 if proj.feasible_memory else 1


def _suggestion_blob(s) -> dict:
    blob = {
        "rank": s.rank if s.feasible else None,
        "strategy": s.strategy.describe() if s.strategy else None,
        "feasible": s.feasible,
    }
    if s.projection is not None:
        blob.update(
            epoch_s=s.projection.per_epoch.total,
            iteration_s=s.projection.per_iteration.total,
            memory_gb=s.projection.memory_bytes / 1e9,
            comm_policy=s.projection.comm_policy,
            comm_algorithms=dict(s.projection.comm_algorithms),
        )
    if s.reason:
        blob["reason"] = s.reason
    return blob


def _cmd_suggest(args) -> int:
    model, cluster, profile, oracle, dataset = _make_oracle(args)
    suggestions = oracle.suggest(args.pes, dataset,
                                 samples_per_pe=args.samples_per_pe)
    if args.json:
        print(json.dumps(
            {"model": model.name, "pes": args.pes,
             "entries": [_suggestion_blob(s) for s in suggestions]},
            indent=2))
        return 0
    rows = []
    for s in suggestions:
        if s.feasible:
            rows.append([s.rank, s.strategy.describe(),
                         f"{s.epoch_time:.1f} s",
                         f"{s.projection.memory_bytes / 1e9:.1f} GB"])
        else:
            rows.append(["-", s.strategy.describe() if s.strategy else "?",
                         "infeasible", s.reason])
    print(reporting.format_table(
        ["rank", "strategy", "epoch", "memory / reason"], rows))
    return 0


def _cmd_hybrid(args) -> int:
    model, cluster, profile, oracle, dataset = _make_oracle(args)
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    out = oracle.search_hybrid(args.pes, dataset,
                               samples_per_pe=args.samples_per_pe,
                               kinds=kinds)
    if args.json:
        print(json.dumps(
            {"model": model.name, "pes": args.pes,
             "entries": [_suggestion_blob(s) for s in out[: args.top]],
             "infeasible": sum(1 for s in out if not s.feasible)},
            indent=2))
        return 0
    rows = []
    for s in out[: args.top]:
        if s.feasible:
            rows.append([s.rank, s.strategy.describe(),
                         f"{s.epoch_time:.1f} s",
                         f"{s.projection.memory_bytes / 1e9:.1f} GB"])
    print(reporting.format_table(["rank", "config", "epoch", "memory"], rows))
    infeasible = sum(1 for s in out if not s.feasible)
    if infeasible:
        print(f"({infeasible} configurations infeasible)")
    return 0


def _parse_weights(spec: Optional[str]) -> Optional[dict]:
    if not spec:
        return None
    weights = {}
    for item in spec.split(","):
        if not item.strip():
            continue
        name, _, value = item.partition("=")
        weights[name.strip()] = float(value) if value else 1.0
    return weights or None


class _FrontierStream:
    """Anytime-search printer: maintains a running Pareto frontier and
    prints a row the moment an evaluation enters it.  Printed rows are a
    superset of the final frontier (later arrivals can dominate earlier
    prints, which is inherent to anytime output).

    Rows go to ``file`` — stderr under ``--json`` so stdout stays a
    single parseable document, stdout otherwise — and every row is
    flushed as it is written, so piped consumers (``repro search
    --stream | head``) see anytime results immediately instead of after
    a block-buffer fills."""

    def __init__(self, objectives=None, file=None, prefix: str = "") -> None:
        from .search.pareto import DEFAULT_OBJECTIVES, OBJECTIVES

        self._names = tuple(objectives or DEFAULT_OBJECTIVES)
        self._vec = lambda e: tuple(OBJECTIVES[n](e) for n in self._names)
        self._frontier = []  # [(vector, evaluation)]
        self._file = file  # None = stdout (resolved at print time)
        self._prefix = prefix
        self.seen = 0

    def __call__(self, evaluation) -> None:
        from .search.pareto import dominates

        self.seen += 1
        if not evaluation.feasible:
            return
        v = self._vec(evaluation)
        if any(dominates(w, v) or w == v for w, _ in self._frontier):
            return
        self._frontier = [
            (w, e) for w, e in self._frontier if not dominates(v, w)
        ]
        self._frontier.append((v, evaluation))
        out = self._file if self._file is not None else sys.stdout
        print(f"{self._prefix}[{self.seen}] {evaluation.describe()} "
              f"epoch={evaluation.epoch_time:.1f}s "
              f"iter={evaluation.iteration_time * 1e3:.1f}ms "
              f"mem={evaluation.memory_gb:.1f}GB "
              f"(frontier {len(self._frontier)})",
              file=out, flush=True)


def _cmd_search(args) -> int:
    from .core.math_utils import power_of_two_budgets

    model, cluster, profile, oracle, dataset = _make_oracle(args)
    strategies = (
        tuple(s.strip() for s in args.strategies.split(",") if s.strip())
        if args.strategies else None
    )
    pe_budgets = (
        power_of_two_budgets(args.pes) if args.pe_sweep else (args.pes,)
    )
    policies = args._comm_policies
    # With --json the rows stream to stderr so stdout stays parseable.
    stream = (
        _FrontierStream(file=sys.stderr if args.json else None)
        if args.stream else None
    )
    try:
        segments = tuple(
            int(s) for s in args.segments.split(",") if s.strip())
        report = oracle.search(
            args.pes, dataset,
            samples_per_pe=args.samples_per_pe,
            strategies=strategies,
            pe_budgets=pe_budgets,
            segments=segments,
            cache=args.cache,
            cache_dir=args.cache_dir,
            workers=args.workers,
            executor=args.executor,
            weights=_parse_weights(args.weights),
            comm=tuple(policies) if len(policies) > 1 else None,
            on_result=stream,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    if args.frontier_csv:
        from .search.sweep import write_frontier_csv

        write_frontier_csv(args.frontier_csv, report)
    if args.json:
        print(json.dumps(report.asdict(), indent=2))
        return 0 if report.best is not None else 1
    st = report.stats
    print(f"{model.name} on {cluster}: searched {st['candidates']} "
          f"candidates ({st['pruned']} pruned, {st['infeasible']} "
          f"infeasible, {st['cache_hits']} cache hits)")
    if report.best is None:
        print("no feasible configuration found", file=sys.stderr)
        return 1
    rows = [
        [i + 1, e.describe(), f"{e.epoch_time:.1f} s",
         f"{e.iteration_time * 1e3:.1f} ms", f"{e.memory_gb:.1f} GB",
         e.candidate.p]
        for i, e in enumerate(report.frontier[: args.top])
    ]
    print(reporting.format_table(
        ["#", "config", "epoch", "iteration", "memory", "p"], rows))
    if len(report.frontier) > args.top:
        print(f"({len(report.frontier) - args.top} more frontier points)")
    print(f"best: {report.best.describe()} "
          f"epoch={report.best.epoch_time:.1f} s "
          f"memory={report.best.memory_gb:.1f} GB")
    if args.cache:
        print(f"cache: {args.cache}")
    if args.frontier_csv:
        print(f"frontier csv: {args.frontier_csv}")
    return 0


def _cmd_sweep(args) -> int:
    from .core.math_utils import power_of_two_budgets
    from .search.sweep import SweepRunner

    models = [m.strip() for m in args.models.split(",") if m.strip()]
    strategies = (
        tuple(s.strip() for s in args.strategies.split(",") if s.strip())
        if args.strategies else None
    )
    policies = (
        tuple(s.strip() for s in args.comm_policy.split(",") if s.strip())
        if args.comm_policy else ()
    )
    streams: dict = {}

    def on_result(model, evaluation) -> None:
        if model not in streams:
            streams[model] = _FrontierStream(
                file=sys.stderr if args.json else None,
                prefix=f"{model} ")
        streams[model](evaluation)

    try:
        segments = tuple(
            int(s) for s in args.segments.split(",") if s.strip())
        runner = SweepRunner(
            models, DATASETS[args.dataset],
            pes=args.pes,
            samples_per_pe=args.samples_per_pe,
            optimizer=args.optimizer,
            gamma=args.gamma,
            strategies=strategies,
            pe_budgets=(
                tuple(power_of_two_budgets(args.pes)) if args.pe_sweep
                else None),
            segments=segments,
            comm_policies=policies,
            executor=args.executor,
            workers=args.workers,
            cache_dir=args.cache_dir,
            weights=_parse_weights(args.weights),
        )
        report = runner.run(on_result=on_result if args.stream else None)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    if args.report:
        report.write_report(args.report, plot=args.plot)
    if args.json:
        print(json.dumps(report.asdict(), indent=2))
        return 0 if all(r.best is not None for r in report.results) else 1
    rows = []
    for result, row in zip(report.results, report.summary_rows()):
        feasible = result.best is not None
        rows.append([
            row["model"], row["best"],
            f"{row['epoch_s']:.1f} s" if feasible else "-",
            f"{row['memory_gb']:.1f} GB" if feasible else "-",
            row["frontier"], row["candidates"], row["cache_hits"],
            f"{row['seconds']:.2f} s",
        ])
    print(f"swept {len(report.results)} models on {runner.cluster} "
          f"({args.executor} executor, {report.seconds:.2f} s total)")
    print(reporting.format_table(
        ["model", "best", "epoch", "memory", "frontier", "cands",
         "cache hits", "wall"], rows))
    for result in report.results:
        for i, e in enumerate(result.report.frontier[: args.top]):
            print(f"  {result.model} #{i + 1}: {e.describe()} "
                  f"epoch={e.epoch_time:.1f}s mem={e.memory_gb:.1f}GB")
    best = report.best_overall
    if best is not None:
        print(f"fastest model: {best.model} — {best.best.describe()} "
              f"epoch={best.best.epoch_time:.1f} s")
    if args.cache_dir:
        print(f"cache dir: {args.cache_dir}")
    for name, path in sorted(report.artifacts.items()):
        print(f"artifact {name}: {path}")
    return 0 if all(r.best is not None for r in report.results) else 1


def _cmd_plan(args) -> int:
    model, cluster, profile, oracle, dataset = _make_oracle(args)
    batch = args.batch or args.samples_per_pe * args.pes
    plan = oracle.plan_layerwise(args.pes, batch)
    print(f"{model.name} / p={args.pes} / B={batch}: per-layer plan "
          f"({plan.per_iteration.total * 1e3:.1f} ms/iter)")
    print("mode counts:", dict(sorted(plan.mode_counts.items())))
    rows = [
        [a.layer, a.mode, f"{a.comp_s * 1e3:.2f}", f"{a.comm_s * 1e3:.2f}",
         f"{a.transition_s * 1e3:.2f}"]
        for a in plan.assignments if a.mode != "data"
    ]
    if rows:
        print("non-data-parallel layers:")
        print(reporting.format_table(
            ["layer", "mode", "comp (ms)", "comm (ms)", "redecomp (ms)"],
            rows))
    return 0


def _cmd_simulate(args) -> int:
    from .simulator import SimulationOptions, TrainingSimulator

    model, cluster, profile, oracle, dataset = _make_oracle(args)
    batch = args.batch or args.samples_per_pe * args.pes
    try:
        strategy = strategy_from_id(
            args.strategy, args.pes, model, batch,
            segments=args.segments, intra=cluster.node.gpus,
        )
        proj = oracle.project(strategy, batch, dataset)
    except (StrategyError, ValueError) as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    congestion = (
        CongestionModel(outlier_rate=0.1, seed=args.seed)
        if args.congestion else None
    )
    sim = TrainingSimulator(
        model, cluster,
        options=SimulationOptions(iterations=args.iterations,
                                  seed=args.seed,
                                  optimizer=args.optimizer,
                                  congestion=congestion),
    )
    run = sim.run(strategy, batch, dataset.num_samples)
    acc = proj.accuracy_per_iteration(run.mean_iteration)
    print(f"oracle   : {reporting.format_breakdown(proj.per_iteration)}")
    print(f"measured : {reporting.format_breakdown(run.breakdown)}")
    print(f"accuracy : {reporting.pct(acc)}")
    for note in run.notes:
        print(f"note: {note}")
    return 0


def _cmd_validate(args) -> int:
    from .models import toy_cnn, toy_cnn3d
    from .tensorparallel import (
        ChannelParallelExecutor,
        DataFilterExecutor,
        DataParallelExecutor,
        FilterParallelExecutor,
        PipelineExecutor,
        SpatialParallelExecutor,
    )
    from .tensorparallel.validate import validate_strategy

    model2d, model3d = toy_cnn(), toy_cnn3d()
    cases = [
        (model2d, DataParallelExecutor, args.p, {}),
        (model2d, SpatialParallelExecutor, args.p, {}),
        (model2d, FilterParallelExecutor, args.p, {}),
        (model2d, ChannelParallelExecutor, args.p, {}),
        (model2d, PipelineExecutor, min(args.p, 3), {"segments": 4}),
        (model2d, DataFilterExecutor, 2, {"p2": 2}),
        (model3d, DataParallelExecutor, 2, {}),
        (model3d, SpatialParallelExecutor, 2, {}),
    ]
    failed = 0
    for model, cls, p, kwargs in cases:
        report = validate_strategy(model, cls, p, batch=args.batch,
                                   executor_kwargs=kwargs)
        print(report)
        failed += 0 if report.ok else 1
    return 1 if failed else 0


def _cmd_experiment(args) -> int:
    from .harness import (
        run_accuracy_summary, run_fig3, run_fig4, run_fig5, run_fig6,
        run_fig7, run_fig8, run_search_best, run_sweep, run_table3,
        run_table5, run_table6,
    )

    quick = not args.full
    name = args.name
    if name == "fig3":
        for c in run_fig3(quick=quick):
            print(f"{c.label:28s} oracle={c.oracle.total * 1e3:9.2f}ms "
                  f"measured={c.measured.total * 1e3:9.2f}ms "
                  f"acc={reporting.pct(c.accuracy)}")
    elif name == "fig4":
        for r in run_fig4():
            print(f"p={r.p:4d} oracle={r.oracle_iter:.3f}s "
                  f"measured={r.measured_iter:.3f}s "
                  f"acc={reporting.pct(r.accuracy)}")
    elif name == "fig5":
        for r in run_fig5():
            print(f"{r.strategy:3s} p={r.p:4d} epoch={r.epoch_time:8.1f}s "
                  f"speedup={r.speedup_vs_spatial:5.1f}x "
                  f"{'OK' if r.feasible else 'OOM'}")
    elif name == "fig6":
        import numpy as np

        for s in run_fig6():
            print(f"{s.label:20s} expected={s.expected * 1e3:8.2f}ms "
                  f"median={np.median(s.samples) * 1e3:8.2f}ms "
                  f"worst={s.max_slowdown:.2f}x")
    elif name == "fig7":
        for r in run_fig7():
            print(f"{r.model:10s} {r.optimizer:8s} "
                  f"wu={reporting.pct(r.wu_share)}")
    elif name == "fig8":
        for r in run_fig8():
            print(f"p={r.p:3d} ideal={r.ideal_conv_s * 1e3:7.2f}ms "
                  f"actual={r.simulated_conv_s * 1e3:7.2f}ms "
                  f"eff={reporting.pct(r.scaling_efficiency)}")
    elif name == "table3":
        for r in run_table3():
            print(r)
    elif name == "table5":
        for r in run_table5():
            print(r)
    elif name == "table6":
        for sid, findings in run_table6(quick=quick).items():
            print(f"{sid}:")
            for f in findings:
                print(f"  {f}")
    elif name == "search":
        for r in run_search_best(quick=not args.full):
            print(f"{r.model:10s} p={r.p:4d} "
                  f"suggest={r.suggest_best:14s} "
                  f"{r.suggest_epoch_s:8.1f}s  "
                  f"search={r.search_best:24s} {r.search_epoch_s:8.1f}s  "
                  f"gain={reporting.pct(r.improvement)} "
                  f"(frontier {r.frontier_size}, "
                  f"{r.pruned}/{r.candidates} pruned)")
    elif name == "sweep":
        rep = run_sweep(quick=not args.full)
        for row in rep.summary_rows():
            print(f"{row['model']:10s} best={row['best']:28s} "
                  f"epoch={row['epoch_s']:8.1f}s "
                  f"frontier={row['frontier']:2d} "
                  f"cands={row['candidates']:3d} "
                  f"wall={row['seconds']:.2f}s")
    elif name == "accuracy":
        s = run_accuracy_summary(quick=quick)
        for k, v in sorted(s.per_strategy.items()):
            print(f"{k:8s} {reporting.pct(v)}")
        print(f"overall  {reporting.pct(s.overall)}")
    return 0


_COMMANDS = {
    "project": _cmd_project,
    "suggest": _cmd_suggest,
    "hybrid": _cmd_hybrid,
    "search": _cmd_search,
    "sweep": _cmd_sweep,
    "plan": _cmd_plan,
    "simulate": _cmd_simulate,
    "validate": _cmd_validate,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse ``argv`` and dispatch; returns the exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
