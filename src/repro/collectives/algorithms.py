"""Analytic collective costs under the Hockney alpha-beta model.

Formulas (Section 4.3 of the paper), for ``p`` PEs and a per-PE buffer of
``m`` bytes:

* ring Allreduce:      ``2 (p-1) (alpha + (m/p) beta)``
* ring Allgather:      ``(p-1) (alpha + m_seg beta)`` where ``m_seg`` is the
  per-PE contribution (the paper passes the segment size directly, e.g.
  ``B |y_l| / p`` for filter parallelism),
* ring ReduceScatter:  ``(p-1) (alpha + (m/p) beta)``
* pipelined-tree Allreduce (small messages, footnote 4):
  ``2 (log2(p) + k) (alpha + m/(2k) beta)`` with the message split into
  ``k`` chunks,
* peer-to-peer:        ``alpha + m beta``.

All functions return seconds and degrade gracefully for ``p == 1``
(collectives over a singleton communicator are free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..network.hockney import HockneyParams

__all__ = [
    "CollectiveCost",
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "tree_allreduce_time",
    "broadcast_time",
    "reduce_time",
    "p2p_time",
    "allreduce_time",
]

#: Message-size threshold below which NCCL-style implementations switch from
#: ring to tree algorithms (bytes).  The exact NCCL crossover is
#: topology-dependent; 512 KiB is representative.
TREE_THRESHOLD_BYTES = 512 * 1024


@dataclass(frozen=True)
class CollectiveCost:
    """A collective's cost split into latency and bandwidth terms.

    Useful for bottleneck attribution: at scale the ``alpha`` term of
    layer-wise collectives (filter/channel parallelism) grows with
    ``G * (p-1) * alpha`` while the bandwidth term shrinks with ``1/p``.
    """

    latency_s: float
    bandwidth_s: float

    @property
    def total(self) -> float:
        return self.latency_s + self.bandwidth_s


def _check(p: int, nbytes: float) -> None:
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if nbytes < 0:
        raise ValueError(f"message size must be >= 0, got {nbytes}")


def ring_allreduce_time(
    p: int, nbytes: float, params: HockneyParams, detailed: bool = False
):
    """Ring Allreduce of an ``nbytes`` buffer replicated on ``p`` PEs."""
    _check(p, nbytes)
    if p == 1:
        cost = CollectiveCost(0.0, 0.0)
    else:
        steps = 2 * (p - 1)
        cost = CollectiveCost(
            latency_s=steps * params.alpha,
            bandwidth_s=steps * (nbytes / p) * params.beta,
        )
    return cost if detailed else cost.total


def ring_allgather_time(
    p: int, seg_bytes: float, params: HockneyParams, detailed: bool = False
):
    """Ring Allgather where each PE contributes ``seg_bytes``.

    After ``p - 1`` steps every PE holds the ``p * seg_bytes``
    concatenation.
    """
    _check(p, seg_bytes)
    if p == 1:
        cost = CollectiveCost(0.0, 0.0)
    else:
        steps = p - 1
        cost = CollectiveCost(
            latency_s=steps * params.alpha,
            bandwidth_s=steps * seg_bytes * params.beta,
        )
    return cost if detailed else cost.total


def ring_reduce_scatter_time(
    p: int, nbytes: float, params: HockneyParams, detailed: bool = False
):
    """Ring ReduceScatter of an ``nbytes`` buffer (the cheaper alternative
    the paper notes for the backward input-gradient exchange, footnote 2)."""
    _check(p, nbytes)
    if p == 1:
        cost = CollectiveCost(0.0, 0.0)
    else:
        steps = p - 1
        cost = CollectiveCost(
            latency_s=steps * params.alpha,
            bandwidth_s=steps * (nbytes / p) * params.beta,
        )
    return cost if detailed else cost.total


def tree_allreduce_time(
    p: int,
    nbytes: float,
    params: HockneyParams,
    chunks: int = 4,
    detailed: bool = False,
):
    """Pipelined two-tree Allreduce for small messages (paper footnote 4):
    ``2 (log2 p + k)(alpha + m/(2k) beta)``."""
    _check(p, nbytes)
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    if p == 1:
        cost = CollectiveCost(0.0, 0.0)
    else:
        steps = 2 * (math.log2(p) + chunks)
        cost = CollectiveCost(
            latency_s=steps * params.alpha,
            bandwidth_s=steps * (nbytes / (2 * chunks)) * params.beta,
        )
    return cost if detailed else cost.total


def allreduce_time(
    p: int,
    nbytes: float,
    params: HockneyParams,
    threshold: float = TREE_THRESHOLD_BYTES,
) -> float:
    """NCCL-style algorithm selection: tree below ``threshold``, ring above.

    Matches the paper's "ring-based algorithm ... for large message sizes and
    a tree-based algorithm for small message sizes".
    """
    if p <= 1:
        return 0.0
    if nbytes < threshold:
        return min(
            tree_allreduce_time(p, nbytes, params),
            ring_allreduce_time(p, nbytes, params),
        )
    return ring_allreduce_time(p, nbytes, params)


def broadcast_time(p: int, nbytes: float, params: HockneyParams) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p) (alpha + m beta)``."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * params.p2p(nbytes)


def reduce_time(p: int, nbytes: float, params: HockneyParams) -> float:
    """Binomial-tree reduce to a root: ``ceil(log2 p) (alpha + m beta)``.

    Used by the hierarchical Data+Spatial gradient exchange (reduce to a
    leader GPU inside each node, then Allreduce between leaders).
    """
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * params.p2p(nbytes)


def p2p_time(nbytes: float, params: HockneyParams) -> float:
    """Point-to-point transfer ``alpha + m beta``."""
    if nbytes < 0:
        raise ValueError("message size must be >= 0")
    return params.p2p(nbytes)
