"""Topology-aware collective-algorithm selection: the ``CommModel``.

One object answers "how long does this collective take?" for every
consumer — the analytical model, the oracle, the search engine, the DES
simulator, and the CLI — so they can never disagree about which
algorithm they are costing.  A :class:`CommModel` is built from a
:class:`~repro.network.topology.ClusterSpec` and a *policy*:

``paper``
    Always the paper's Section-4.3 defaults (ring allreduce / allgather /
    reduce-scatter, binomial-tree broadcast / reduce).  Projections are
    identical to the seed model — this is the default everywhere.
``auto``
    Minimum cost over every registered algorithm eligible for
    ``(collective, p, m)`` under the resolved Hockney parameters,
    including the hierarchical allreduce when the communicator spans
    whole nodes.  Never worse than ``paper`` on any call.
``nccl-like``
    Message-size thresholds: tree allreduce below
    :data:`~repro.collectives.algorithms.TREE_THRESHOLD_BYTES`, ring
    above — the behaviour the paper attributes to NCCL.

Selection is *scope aware*: resolution of (alpha, beta) distinguishes a
model-parallel group pinned inside a node (NVLink) from a communicator
spanning the fabric, and topology-aware algorithms are only eligible for
packed whole-machine communicators (``scope="auto"``).  Callers may pin
``params`` explicitly (e.g. contention-scaled betas) and still get
policy-driven algorithm choice.

A per-collective algorithm can also be *forced* (``algo={"allreduce":
"recursive-doubling"}``, the CLI's ``--comm-algo``); unsupported forced
choices fall back to the policy pick rather than failing a projection.

Selection is *memoized*: resolved choices, scope parameters, and
topology hints live in bounded per-instance LRU memos keyed by
``(collective, p, m, params, scope, transport)``, because the search
engine re-asks the same handful of calls for every candidate — the
``auto``/``nccl-like`` policies used to re-run min-cost selection per
phase per candidate.  The memo is keyed to the model's
:meth:`~CommModel.fingerprint` inputs: mutating ``policy``, ``algo``,
or ``tree_threshold`` invalidates every cached choice on the next call.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .. import npcompat
from ..network.hockney import HockneyParams
from ..network.topology import ClusterSpec
from .algorithms import TREE_THRESHOLD_BYTES
from . import registry as _registry
from .registry import (
    COLLECTIVES,
    CollectiveAlgorithm,
    HierarchicalAllreduce,
    TopologyHint,
)

__all__ = [
    "POLICIES",
    "PAPER_DEFAULTS",
    "CHOOSE_MEMO_SIZE",
    "BatchChoice",
    "CommChoice",
    "CommModel",
]

#: Selection policies, in documentation order.
POLICIES = ("paper", "auto", "nccl-like")

#: The seed model's fixed algorithm per collective (Section 4.3).
PAPER_DEFAULTS: Dict[str, str] = {
    "allreduce": "ring",
    "allgather": "ring",
    "reduce_scatter": "ring",
    "broadcast": "binomial-tree",
    "reduce": "binomial-tree",
}

#: Communicator scopes a caller may pin.  ``auto`` = packed communicator
#: over the whole machine (topology-aware algorithms eligible);
#: ``intra-node`` = model-parallel group mapped inside one node;
#: ``inter-node`` = flat communicator over the fabric (leader rings,
#: contended segmented allreduces).
SCOPE_CHOICES = ("auto", "intra-node", "inter-node")

#: Bound on the per-instance choice memo; least-recently-used entries
#: are evicted past it.  A strategy search touches a few thousand
#: distinct ``(collective, p, m)`` calls, so this is generous headroom.
CHOOSE_MEMO_SIZE = 65536


@dataclass(frozen=True)
class CommChoice:
    """One resolved collective call: which algorithm, at what cost."""

    collective: str
    algorithm: str
    seconds: float

    @property
    def label(self) -> str:
        return f"{self.collective}:{self.algorithm}"


@dataclass(frozen=True)
class BatchChoice:
    """A whole array of resolved collective calls (:meth:`CommModel.
    time_batch`).

    ``seconds`` has the broadcast shape of the ``(p, nbytes)`` inputs.
    ``index`` maps each element into ``algorithms``; ``None`` means the
    whole batch resolved to ``algorithms[0]`` (the common case under the
    ``paper`` policy, which lets consumers skip per-element label work).
    """

    collective: str
    seconds: Any
    algorithms: Tuple[str, ...]
    index: Any = None

    def labels(self) -> Tuple[str, ...]:
        """``collective:algorithm`` per entry of :attr:`algorithms`."""
        return tuple(f"{self.collective}:{a}" for a in self.algorithms)


class CommModel:
    """Resolves ``(collective, p, m, scope)`` to seconds under a policy.

    Parameters
    ----------
    cluster:
        Topology used to resolve Hockney parameters per scope and to
        build :class:`~repro.collectives.registry.TopologyHint` for
        hierarchical algorithms.
    policy:
        One of :data:`POLICIES`.
    algo:
        Optional forced algorithm per collective (overrides the policy
        when the forced algorithm supports the call).
    tree_threshold:
        ``nccl-like`` ring/tree crossover in bytes.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: str = "paper",
        *,
        algo: Optional[Mapping[str, str]] = None,
        tree_threshold: float = TREE_THRESHOLD_BYTES,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown comm policy {policy!r}; expected one of {POLICIES}"
            )
        self.cluster = cluster
        self.policy = policy
        self.tree_threshold = tree_threshold
        self.algo: Dict[str, str] = dict(algo or {})
        for coll, name in self.algo.items():
            _registry.get_algorithm(coll, name)  # raises on unknown pairs
        self._choose_memo: "OrderedDict[tuple, CommChoice]" = OrderedDict()
        self._params_memo: Dict[tuple, HockneyParams] = {}
        self._topo_memo: Dict[int, Optional[TopologyHint]] = {}
        self._memo_token = self._token()
        #: Observability counters: plain ints (a dict increment per
        #: resolved call — cheap enough for the search hot path, and
        #: scraped into a MetricsRegistry by consumers, never pushed).
        #: ``batched_*`` count :meth:`time_batch` invocations and the
        #: array elements they resolved (those never touch the choose
        #: memo, so they are deliberately outside the hit/miss pair).
        self.stats: Dict[str, int] = {
            "memo_hits": 0,
            "memo_misses": 0,
            "batched_calls": 0,
            "batched_elements": 0,
        }
        #: Per-``collective:algorithm`` selection tally across every
        #: resolved call (memoized or not) — the selection histogram.
        self.selections: Dict[str, int] = {}

    # --------------------------------------------------------------- memo
    def _token(self) -> Tuple:
        """Everything :meth:`fingerprint` hashes, as a comparable tuple.

        Checked on every memoized call: a caller that mutates ``policy``
        / ``algo`` / ``tree_threshold`` in place gets every cached
        choice invalidated instead of stale answers.
        """
        return (
            self.policy,
            self.tree_threshold,
            tuple(sorted(self.algo.items())),
        )

    def clear_memo(self) -> None:
        """Drop every memoized choice / scope resolution."""
        self._choose_memo.clear()
        self._params_memo.clear()
        self._topo_memo.clear()
        self._memo_token = self._token()

    def __getstate__(self):
        """Pickle without the memos (workers rebuild them warm)."""
        state = self.__dict__.copy()
        state["_choose_memo"] = OrderedDict()
        state["_params_memo"] = {}
        state["_topo_memo"] = {}
        return state

    # ------------------------------------------------------------ resolution
    def scope_params(
        self, p: int, scope: str = "auto", transport: str = "nccl"
    ) -> HockneyParams:
        """Hockney (alpha, beta) for a ``p``-wide communicator at ``scope``
        (memoized per ``(p, scope, transport)``)."""
        key = (p, scope, transport)
        params = self._params_memo.get(key)
        if params is None:
            params = self._scope_params_uncached(p, scope, transport)
            self._params_memo[key] = params
        return params

    def _scope_params_uncached(
        self, p: int, scope: str, transport: str
    ) -> HockneyParams:
        if scope not in SCOPE_CHOICES:
            raise ValueError(
                f"unknown scope {scope!r}; expected one of {SCOPE_CHOICES}"
            )
        if scope == "intra-node":
            return self.cluster.hockney_intra(p, transport=transport)
        if scope == "inter-node":
            # Fabric parameters even for small p: widen the resolved span
            # until it crosses a node boundary.
            span_p = min(
                max(p, self.cluster.node.gpus + 1), self.cluster.total_gpus
            )
            if span_p <= self.cluster.node.gpus:
                raise ValueError(
                    "single-node cluster has no inter-node scope"
                )
            return self.cluster.hockney(span_p, transport=transport)
        return self.cluster.hockney(p, transport=transport)

    def topology_hint(self, p: int) -> Optional[TopologyHint]:
        """Hint for topology-aware algorithms, or ``None`` when the
        communicator does not span several whole nodes (memoized)."""
        if p in self._topo_memo:
            return self._topo_memo[p]
        n = self.cluster.node.gpus
        if n < 2 or p <= n or p > self.cluster.total_gpus:
            hint = None
        else:
            hint = TopologyHint(
                intra=self.cluster.hockney(n),
                inter=self.cluster.hockney(p),
                gpus_per_node=n,
            )
        self._topo_memo[p] = hint
        return hint

    # -------------------------------------------------------------- selection
    def _cost(
        self,
        algo: CollectiveAlgorithm,
        p: int,
        nbytes: float,
        params: HockneyParams,
        topo: Optional[TopologyHint],
    ) -> float:
        return algo.cost(p, nbytes, params, topo)

    def choose(
        self,
        collective: str,
        p: int,
        nbytes: float,
        *,
        params: Optional[HockneyParams] = None,
        scope: str = "auto",
        transport: str = "nccl",
    ) -> CommChoice:
        """Pick an algorithm for one collective call and cost it.

        ``params`` pins the Hockney parameters (callers pass
        contention-scaled betas here); otherwise they are resolved from
        ``(p, scope, transport)``.  Singleton communicators are free.

        Choices memoize on the full call signature (bounded LRU; see
        :data:`CHOOSE_MEMO_SIZE`): selection is pure given the
        fingerprint inputs, which are re-checked on every call so
        in-place mutation invalidates rather than staling.
        """
        token = self._token()
        if token != self._memo_token:
            self.clear_memo()
        memo = self._choose_memo
        key = (collective, p, nbytes, params, scope, transport)
        hit = memo.get(key)
        if hit is not None:
            # The memo is shared across the search engine's threads
            # without a lock (individual OrderedDict calls are atomic
            # under the GIL); a concurrent eviction between the get and
            # the recency bump is harmless — the answer is still valid.
            try:
                memo.move_to_end(key)
            except KeyError:
                pass
            self.stats["memo_hits"] += 1
            label = hit.label
            self.selections[label] = self.selections.get(label, 0) + 1
            return hit
        choice = self._choose_uncached(
            collective, p, nbytes, params, scope, transport
        )
        if len(memo) >= CHOOSE_MEMO_SIZE:
            try:
                memo.popitem(last=False)
            except KeyError:
                pass
        memo[key] = choice
        self.stats["memo_misses"] += 1
        label = choice.label
        self.selections[label] = self.selections.get(label, 0) + 1
        return choice

    def _choose_uncached(
        self,
        collective: str,
        p: int,
        nbytes: float,
        params: Optional[HockneyParams],
        scope: str,
        transport: str,
    ) -> CommChoice:
        if collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {collective!r}; expected one of "
                f"{COLLECTIVES}"
            )
        default = PAPER_DEFAULTS[collective]
        if p <= 1 or nbytes <= 0:
            return CommChoice(collective, self.algo.get(collective, default), 0.0)
        if params is None:
            params = self.scope_params(p, scope, transport)
        topo = self.topology_hint(p) if scope == "auto" else None

        forced = self.algo.get(collective)
        if forced is not None:
            algo = _registry.get_algorithm(collective, forced)
            if algo.supports(p, nbytes, topo):
                return CommChoice(
                    collective, forced, self._cost(algo, p, nbytes, params, topo)
                )
            # An ineligible forced algorithm (e.g. hierarchical inside a
            # node) degrades to the policy pick instead of failing.

        if self.policy == "paper":
            algo = _registry.get_algorithm(collective, default)
            return CommChoice(
                collective, default, self._cost(algo, p, nbytes, params, topo)
            )

        if self.policy == "nccl-like":
            if collective == "allreduce" and nbytes < self.tree_threshold:
                ring = _registry.get_algorithm("allreduce", "ring")
                tree = _registry.get_algorithm("allreduce", "tree")
                tr = self._cost(ring, p, nbytes, params, topo)
                tt = self._cost(tree, p, nbytes, params, topo)
                return (
                    CommChoice(collective, "tree", tt)
                    if tt <= tr
                    else CommChoice(collective, "ring", tr)
                )
            algo = _registry.get_algorithm(collective, default)
            return CommChoice(
                collective, default, self._cost(algo, p, nbytes, params, topo)
            )

        # auto: min cost over every eligible registered algorithm;
        # deterministic tie-break on name.
        best: Optional[CommChoice] = None
        for algo in _registry.algorithms_for(collective):
            if not algo.supports(p, nbytes, topo):
                continue
            cost = self._cost(algo, p, nbytes, params, topo)
            if best is None or cost < best.seconds or (
                cost == best.seconds and algo.name < best.algorithm
            ):
                best = CommChoice(collective, algo.name, cost)
        if best is None:  # pragma: no cover - registry always has ring
            raise RuntimeError(f"no eligible algorithm for {collective!r}")
        return best

    # --------------------------------------------------------- batch selection
    def time_batch(
        self,
        collective: str,
        p: Any,
        nbytes: Any,
        *,
        params: Union[None, HockneyParams, Tuple[Any, Any]] = None,
        scope: str = "auto",
        transport: str = "nccl",
    ) -> BatchChoice:
        """Vectorized :meth:`choose` over arrays of ``(p, nbytes)``.

        ``p`` and ``nbytes`` broadcast against each other (the layer-wise
        legs pass ``(n, 1)`` communicator sizes against ``(n, sizes)``
        message matrices).  ``params`` is ``None`` (resolve Hockney
        parameters per unique ``p`` from ``(scope, transport)``, exactly
        like scalar resolution), a single :class:`HockneyParams`
        broadcast over the batch, or an ``(alpha, beta)`` array pair.

        Results are elementwise identical to calling :meth:`choose` per
        element: cost formulas come from
        :data:`~repro.collectives.registry.ARRAY_FORMULAS` (written
        operator-for-operator like the scalar ones), log2 round counts
        are precomputed per unique ``p`` with ``math.log2``, and free
        calls (``p <= 1`` or ``nbytes <= 0``) are masked to zero.
        Configurations the array path cannot express — a forced
        hierarchical/third-party algorithm, or an ``auto`` policy facing
        a registered algorithm without an array twin — degrade to an
        elementwise scalar loop, never to different answers.

        Batch calls bypass the choose memo; they tally into
        :attr:`selections` and the ``batched_calls`` /
        ``batched_elements`` stats instead of the memo hit/miss pair.
        Raises :class:`RuntimeError` when numpy is unavailable — callers
        gate on :func:`repro.npcompat.have_numpy`.
        """
        np = npcompat.np
        if np is None:
            raise RuntimeError(
                "CommModel.time_batch requires numpy; use choose()"
            )
        if collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {collective!r}; expected one of "
                f"{COLLECTIVES}"
            )
        if scope not in SCOPE_CHOICES:
            raise ValueError(
                f"unknown scope {scope!r}; expected one of {SCOPE_CHOICES}"
            )
        if self._token() != self._memo_token:
            self.clear_memo()
        p_arr = np.asarray(p, dtype=np.int64)
        m = np.asarray(nbytes, dtype=np.float64)
        shape = np.broadcast_shapes(p_arr.shape, m.shape)
        free = np.broadcast_to((p_arr <= 1) | (m <= 0.0), shape)
        default = PAPER_DEFAULTS[collective]
        forced = self.algo.get(collective)

        uvals, inv = np.unique(p_arr, return_inverse=True)
        inv = inv.reshape(p_arr.shape)
        upy = [int(v) for v in uvals]
        # Unique p values whose every element is masked free never reach
        # a cost formula — the scalar path would not resolve their
        # Hockney parameters either (resolution can raise, e.g. the
        # inter-node scope on a single-node cluster).
        nonfree_u = (
            np.bincount(
                np.broadcast_to(inv, shape)[~free].ravel(),
                minlength=len(upy),
            )
            > 0
        )

        # Round counts per unique p via math.log2/math.ceil: numpy.log2
        # can land on the wrong side of an integer at powers of two,
        # which would flip a whole binomial round vs. the scalar path.
        l2_u = [math.log2(v) if v >= 2 else 0.0 for v in upy]
        l2 = np.asarray(l2_u, dtype=np.float64)[inv]
        cl2 = np.asarray(
            [float(math.ceil(x)) for x in l2_u], dtype=np.float64
        )[inv]

        if params is None:
            ab = [
                self.scope_params(v, scope, transport)
                if v >= 2 and need
                else None
                for v, need in zip(upy, nonfree_u.tolist())
            ]
            alpha = np.asarray(
                [x.alpha if x is not None else 0.0 for x in ab]
            )[inv]
            beta = np.asarray(
                [x.beta if x is not None else 0.0 for x in ab]
            )[inv]
        elif isinstance(params, HockneyParams):
            alpha, beta = params.alpha, params.beta
        else:
            alpha, beta = params

        pf = p_arr.astype(np.float64)
        resolved = self._resolve_batch(
            np, collective, forced, default, pf, m, alpha, beta, l2, cl2,
            inv, upy, scope, shape,
        )
        if resolved is None:
            return self._time_batch_scalar(
                np, collective, p_arr, m, params, alpha, beta, scope,
                transport, shape,
            )
        seconds, algorithms, index = resolved
        seconds = np.where(free, 0.0, seconds)
        # Free elements carry the forced-or-default label, matching the
        # early-out in scalar choose.
        free_name = forced if forced is not None else default
        if free.any() and (index is not None or algorithms[0] != free_name):
            if free_name not in algorithms:
                algorithms = algorithms + (free_name,)
            fi = algorithms.index(free_name)
            if index is None:
                index = np.zeros(shape, dtype=np.int64)
            else:
                index = np.broadcast_to(index, shape).copy()
            index[free] = fi
        elif index is not None:
            index = np.broadcast_to(index, shape)
        self._tally_batch(np, collective, algorithms, index, shape)
        return BatchChoice(collective, seconds, algorithms, index)

    def _resolve_batch(
        self, np, collective, forced, default, pf, m, alpha, beta, l2,
        cl2, inv, upy, scope, shape,
    ):
        """Array-path policy dispatch; ``None`` demands the scalar loop."""
        if forced is not None:
            fa = _registry.array_formula(collective, forced)
            if fa is None:
                # Forced hierarchical / third-party algorithm: eligibility
                # (and the per-element degrade to the policy pick) is
                # scalar logic.
                return None
            return fa(pf, m, alpha, beta, l2, cl2), (forced,), None
        if self.policy == "paper" or (
            self.policy == "nccl-like" and collective != "allreduce"
        ):
            fa = _registry.array_formula(collective, default)
            if fa is None:
                return None
            return fa(pf, m, alpha, beta, l2, cl2), (default,), None
        if self.policy == "nccl-like":
            fring = _registry.array_formula("allreduce", "ring")
            ftree = _registry.array_formula("allreduce", "tree")
            if fring is None or ftree is None:
                return None
            tr = fring(pf, m, alpha, beta, l2, cl2)
            tt = ftree(pf, m, alpha, beta, l2, cl2)
            use_tree = (m < self.tree_threshold) & (tt <= tr)
            seconds = np.where(use_tree, tt, tr)
            index = np.broadcast_to(use_tree, shape).astype(np.int64)
            return seconds, ("ring", "tree"), index
        # auto: stack every registered algorithm's cost and take the
        # first minimum — rows are name-sorted, so argmin's first-hit
        # reproduces the scalar "equal cost keeps the smaller name"
        # tie-break.
        rows: List[Any] = []
        names: List[str] = []
        for algo in _registry.algorithms_for(collective):
            fa = _registry.array_formula(collective, algo.name)
            if fa is not None:
                rows.append(
                    np.broadcast_to(fa(pf, m, alpha, beta, l2, cl2), shape)
                )
            elif type(algo) is HierarchicalAllreduce:
                rows.append(
                    self._hierarchical_batch(np, m, inv, upy, scope, shape)
                )
            else:
                return None
            names.append(algo.name)
        stack = np.stack(rows)
        index = np.argmin(stack, axis=0)
        return stack.min(axis=0), tuple(names), index

    def _hierarchical_batch(self, np, m, inv, upy, scope, shape):
        """Per-element hierarchical-Allreduce cost; ``+inf`` where the
        communicator does not span whole nodes (never selected)."""
        elig = []
        cols = {k: [] for k in ("ai", "bi", "ae", "be", "ll", "cn")}
        for v in upy:
            hint = self.topology_hint(v) if scope == "auto" else None
            ok = (
                hint is not None
                and hint.gpus_per_node > 1
                and v > hint.gpus_per_node
                and v % hint.gpus_per_node == 0
            )
            elig.append(ok)
            if ok:
                cols["ai"].append(hint.intra.alpha)
                cols["bi"].append(hint.intra.beta)
                cols["ae"].append(hint.inter.alpha)
                cols["be"].append(hint.inter.beta)
                cols["ll"].append(float(v // hint.gpus_per_node))
                cols["cn"].append(
                    float(math.ceil(math.log2(hint.gpus_per_node)))
                )
            else:
                for k, fill in (
                    ("ai", 0.0), ("bi", 0.0), ("ae", 0.0),
                    ("be", 0.0), ("ll", 1.0), ("cn", 0.0),
                ):
                    cols[k].append(fill)
        a = {
            k: np.asarray(vals, dtype=np.float64)[inv]
            for k, vals in cols.items()
        }
        # Binomial reduce to the leader, leader ring, binomial broadcast
        # back — term-for-term the HierarchicalAllreduce.cost sum.
        tree_leg = a["cn"] * (a["ai"] + m * a["bi"])
        steps = 2.0 * (a["ll"] - 1.0)
        ring_leg = steps * a["ae"] + steps * (m / a["ll"]) * a["be"]
        cost = (tree_leg + ring_leg) + tree_leg
        return np.broadcast_to(
            np.where(np.asarray(elig)[inv], cost, np.inf), shape
        )

    def _time_batch_scalar(
        self, np, collective, p_arr, m, params, alpha, beta, scope,
        transport, shape,
    ):
        """Elementwise fallback through :meth:`choose` for configurations
        without an array formula — identical answers, scalar speed."""
        pb = np.broadcast_to(p_arr, shape).ravel().tolist()
        mb = np.broadcast_to(m, shape).ravel().tolist()
        if params is None or isinstance(params, HockneyParams):
            prm = [params] * len(pb)
        else:
            ab = np.broadcast_to(alpha, shape).ravel().tolist()
            bb = np.broadcast_to(beta, shape).ravel().tolist()
            prm = [HockneyParams(x, y) for x, y in zip(ab, bb)]
        names: Dict[str, int] = {}
        sec = []
        idx = []
        for pi, mi, pr in zip(pb, mb, prm):
            ch = self.choose(
                collective, pi, mi, params=pr, scope=scope,
                transport=transport,
            )
            sec.append(ch.seconds)
            idx.append(names.setdefault(ch.algorithm, len(names)))
        seconds = np.asarray(sec, dtype=np.float64).reshape(shape)
        algorithms = tuple(names)
        if len(algorithms) == 1:
            return BatchChoice(collective, seconds, algorithms, None)
        index = np.asarray(idx, dtype=np.int64).reshape(shape)
        return BatchChoice(collective, seconds, algorithms, index)

    def _tally_batch(self, np, collective, algorithms, index, shape):
        total = 1
        for d in shape:
            total *= d
        self.stats["batched_calls"] += 1
        self.stats["batched_elements"] += total
        sel = self.selections
        if index is None:
            label = f"{collective}:{algorithms[0]}"
            sel[label] = sel.get(label, 0) + total
            return
        counts = np.bincount(index.ravel(), minlength=len(algorithms))
        for name, cnt in zip(algorithms, counts.tolist()):
            if cnt:
                label = f"{collective}:{name}"
                sel[label] = sel.get(label, 0) + cnt

    # ----------------------------------------------------------- conveniences
    def time(
        self,
        collective: str,
        p: int,
        nbytes: float,
        *,
        params: Optional[HockneyParams] = None,
        scope: str = "auto",
        transport: str = "nccl",
    ) -> float:
        """Cost of one collective call in seconds (see :meth:`choose` for
        the argument semantics; this drops the algorithm label)."""
        return self.choose(
            collective, p, nbytes, params=params, scope=scope,
            transport=transport,
        ).seconds

    def select(
        self,
        collective: str,
        p: int,
        nbytes: float,
        *,
        scope: str = "auto",
        transport: str = "nccl",
    ) -> str:
        """Algorithm name only (the simulator's dispatch key)."""
        return self.choose(
            collective, p, nbytes, scope=scope, transport=transport
        ).algorithm

    def p2p(
        self,
        nbytes: float,
        *,
        params: Optional[HockneyParams] = None,
        p: int = 2,
        scope: str = "auto",
        transport: str = "nccl",
    ) -> float:
        """Point-to-point ``alpha + m beta`` (no algorithm choice)."""
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        if params is None:
            params = self.scope_params(p, scope, transport)
        return params.p2p(nbytes)

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of :meth:`choose` calls answered from the memo."""
        total = self.stats["memo_hits"] + self.stats["memo_misses"]
        return self.stats["memo_hits"] / total if total else 0.0

    # -------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Stable identity for cache invalidation (policy + forced algos)."""
        forced = ",".join(f"{c}={n}" for c, n in sorted(self.algo.items()))
        return f"{self.policy};{forced};thr={self.tree_threshold:g}"

    def describe(self) -> str:
        if not self.algo:
            return self.policy
        forced = ",".join(f"{c}={n}" for c, n in sorted(self.algo.items()))
        return f"{self.policy}[{forced}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommModel({self.describe()!r} on {self.cluster!r})"


def as_comm_model(
    comm: Union[None, str, CommModel], cluster: ClusterSpec
) -> CommModel:
    """Coerce ``None`` / policy string / ``CommModel`` to a ``CommModel``."""
    if comm is None:
        return CommModel(cluster, policy="paper")
    if isinstance(comm, str):
        return CommModel(cluster, policy=comm)
    return comm


__all__.append("as_comm_model")
