"""Pluggable collective-algorithm registry.

The seed model hard-wired *ring* collectives (the paper's Section 4.3
default) into every analyzer.  Real stacks pick the algorithm per call:
NCCL switches ring/tree on message size, MPI implementations use
recursive doubling or Rabenseifner-style halving-doubling depending on
``p`` and ``m``, and hierarchical machines run node-local reductions
before touching the fabric at all.  This module makes the algorithm a
first-class, registered object so new ones can be added without editing
any analyzer:

* :class:`CollectiveAlgorithm` — the protocol: ``supports(p, nbytes,
  topo)`` gates eligibility and ``cost(p, nbytes, params, topo)`` returns
  seconds under Hockney ``params``.
* a process-global registry keyed by ``(collective, algorithm)`` —
  :func:`register`, :func:`get_algorithm`, :func:`algorithms_for`.
* the built-in catalogue: the seed's ring/tree/binomial formulas plus
  recursive-doubling Allreduce/Allgather, recursive halving-doubling
  ReduceScatter, a scatter-allgather (van de Geijn) broadcast, and a
  hierarchical (intra-node reduce + inter-node ring + intra-node
  broadcast) Allreduce that needs a :class:`TopologyHint`.

Message-size conventions match :mod:`repro.collectives.algorithms`:
``nbytes`` is the full per-PE buffer for allreduce / reduce_scatter /
broadcast / reduce, and the *per-PE contribution* (segment) for
allgather.

Algorithm selection policy (paper / auto / nccl-like) lives in
:mod:`repro.collectives.selector`; this module only knows formulas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..network.hockney import HockneyParams
from .algorithms import (
    broadcast_time,
    reduce_time,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
    tree_allreduce_time,
)

__all__ = [
    "ARRAY_FORMULAS",
    "COLLECTIVES",
    "TopologyHint",
    "CollectiveAlgorithm",
    "FormulaAlgorithm",
    "HierarchicalAllreduce",
    "register",
    "get_algorithm",
    "algorithms_for",
    "registered",
    "recursive_doubling_allreduce_time",
    "recursive_doubling_allgather_time",
    "recursive_halving_reduce_scatter_time",
    "scatter_allgather_broadcast_time",
]

#: The collective operations the analytical model costs.
COLLECTIVES = ("allreduce", "allgather", "reduce_scatter", "broadcast", "reduce")


@dataclass(frozen=True)
class TopologyHint:
    """What a topology-aware algorithm needs to know about the machine.

    ``intra``/``inter`` are the Hockney parameters of the node-local and
    fabric scopes of the communicator; ``gpus_per_node`` is the local
    group size.  ``None`` (no hint) disables hierarchical algorithms.
    """

    intra: HockneyParams
    inter: HockneyParams
    gpus_per_node: int


class CollectiveAlgorithm:
    """Protocol for one (collective, algorithm) cost model.

    Subclasses set :attr:`collective` and :attr:`name` and implement
    :meth:`cost`; :meth:`supports` defaults to "any communicator".
    """

    collective: str = ""
    name: str = ""

    def supports(
        self, p: int, nbytes: float, topo: Optional[TopologyHint] = None
    ) -> bool:
        return p >= 1

    def cost(
        self,
        p: int,
        nbytes: float,
        params: HockneyParams,
        topo: Optional[TopologyHint] = None,
    ) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.collective}/{self.name}>"


class FormulaAlgorithm(CollectiveAlgorithm):
    """A :class:`CollectiveAlgorithm` wrapping a closed-form cost function
    ``fn(p, nbytes, params) -> float``."""

    def __init__(
        self,
        collective: str,
        name: str,
        fn: Callable[[int, float, HockneyParams], float],
        supports_fn: Optional[Callable[[int, float], bool]] = None,
    ) -> None:
        if collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {collective!r}; expected one of "
                f"{COLLECTIVES}"
            )
        self.collective = collective
        self.name = name
        self._fn = fn
        self._supports = supports_fn

    def supports(
        self, p: int, nbytes: float, topo: Optional[TopologyHint] = None
    ) -> bool:
        if p < 1:
            return False
        return self._supports(p, nbytes) if self._supports else True

    def cost(
        self,
        p: int,
        nbytes: float,
        params: HockneyParams,
        topo: Optional[TopologyHint] = None,
    ) -> float:
        return self._fn(p, nbytes, params)


# --------------------------------------------------------------- new formulas
def recursive_doubling_allreduce_time(
    p: int, nbytes: float, params: HockneyParams
) -> float:
    """Recursive-doubling Allreduce: ``ceil(log2 p) (alpha + m beta)``.

    Each of the ``log2 p`` rounds exchanges the *full* buffer with the
    partner at distance ``2^r`` — latency-optimal (fewest rounds of any
    allreduce), bandwidth-hungry, the classic MPI small-message choice.
    """
    if p <= 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * (params.alpha + nbytes * params.beta)


def recursive_doubling_allgather_time(
    p: int, seg_bytes: float, params: HockneyParams
) -> float:
    """Recursive-doubling Allgather of per-PE segments ``seg_bytes``:
    ``ceil(log2 p) alpha + (p-1) m_seg beta`` (round ``r`` moves
    ``2^r m_seg`` bytes; the doubled volumes telescope to ``p - 1``
    segments)."""
    if p <= 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * params.alpha + (p - 1) * seg_bytes * params.beta


def recursive_halving_reduce_scatter_time(
    p: int, nbytes: float, params: HockneyParams
) -> float:
    """Recursive halving-doubling ReduceScatter:
    ``ceil(log2 p) alpha + ((p-1)/p) m beta`` — the first half of a
    Rabenseifner Allreduce.  Message volume matches the ring variant but
    in logarithmically fewer rounds."""
    if p <= 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * params.alpha + (p - 1) / p * nbytes * params.beta


def scatter_allgather_broadcast_time(
    p: int, nbytes: float, params: HockneyParams
) -> float:
    """van de Geijn large-message broadcast: binomial scatter of ``m/p``
    chunks followed by a ring Allgather —
    ``(ceil(log2 p) + p - 1) alpha + 2 ((p-1)/p) m beta``."""
    if p <= 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    alpha_term = (rounds + (p - 1)) * params.alpha
    beta_term = 2.0 * (p - 1) / p * nbytes * params.beta
    return alpha_term + beta_term


class HierarchicalAllreduce(CollectiveAlgorithm):
    """Topology-aware Allreduce: binomial reduce to a node leader over the
    intra-node link, ring Allreduce between the leaders over the fabric,
    then intra-node broadcast back (the Section 4.5.1 leader pattern
    generalized to plain data parallelism).

    Only eligible when a :class:`TopologyHint` is supplied and the
    communicator spans whole nodes (``p`` a multiple of
    ``gpus_per_node`` strictly greater than it).
    """

    collective = "allreduce"
    name = "hierarchical"

    def supports(
        self, p: int, nbytes: float, topo: Optional[TopologyHint] = None
    ) -> bool:
        return (
            topo is not None
            and topo.gpus_per_node > 1
            and p > topo.gpus_per_node
            and p % topo.gpus_per_node == 0
        )

    def cost(
        self,
        p: int,
        nbytes: float,
        params: HockneyParams,
        topo: Optional[TopologyHint] = None,
    ) -> float:
        if topo is None:
            raise ValueError("hierarchical allreduce needs a TopologyHint")
        n = topo.gpus_per_node
        leaders = p // n
        return (
            reduce_time(n, nbytes, topo.intra)
            + ring_allreduce_time(leaders, nbytes, topo.inter)
            + broadcast_time(n, nbytes, topo.intra)
        )


# ------------------------------------------------------------------- registry
_REGISTRY: Dict[Tuple[str, str], CollectiveAlgorithm] = {}


def register(algo: CollectiveAlgorithm, overwrite: bool = False) -> CollectiveAlgorithm:
    """Add ``algo`` under ``(algo.collective, algo.name)``; returns it."""
    if algo.collective not in COLLECTIVES:
        raise ValueError(
            f"unknown collective {algo.collective!r}; expected one of "
            f"{COLLECTIVES}"
        )
    if not algo.name:
        raise ValueError("algorithm needs a non-empty name")
    key = (algo.collective, algo.name)
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"algorithm {key} already registered")
    _REGISTRY[key] = algo
    return algo


def get_algorithm(collective: str, name: str) -> CollectiveAlgorithm:
    """Look up one algorithm; raises ``KeyError`` with the catalogue."""
    try:
        return _REGISTRY[(collective, name)]
    except KeyError:
        known = sorted(n for c, n in _REGISTRY if c == collective)
        raise KeyError(
            f"no {collective!r} algorithm named {name!r}; "
            f"registered: {known}"
        ) from None


def algorithms_for(collective: str) -> List[CollectiveAlgorithm]:
    """All registered algorithms for one collective, sorted by name."""
    if collective not in COLLECTIVES:
        raise ValueError(
            f"unknown collective {collective!r}; expected one of "
            f"{COLLECTIVES}"
        )
    return [
        _REGISTRY[key] for key in sorted(_REGISTRY) if key[0] == collective
    ]


def registered() -> Tuple[Tuple[str, str], ...]:
    """All ``(collective, algorithm)`` keys currently registered."""
    return tuple(sorted(_REGISTRY))


# ------------------------------------------------------- built-in catalogue
register(FormulaAlgorithm(
    "allreduce", "ring",
    lambda p, m, params: ring_allreduce_time(p, m, params)))
register(FormulaAlgorithm(
    "allreduce", "tree",
    lambda p, m, params: tree_allreduce_time(p, m, params)))
register(FormulaAlgorithm(
    "allreduce", "recursive-doubling", recursive_doubling_allreduce_time))
register(HierarchicalAllreduce())

register(FormulaAlgorithm(
    "allgather", "ring",
    lambda p, seg, params: ring_allgather_time(p, seg, params)))
register(FormulaAlgorithm(
    "allgather", "recursive-doubling", recursive_doubling_allgather_time))

register(FormulaAlgorithm(
    "reduce_scatter", "ring",
    lambda p, m, params: ring_reduce_scatter_time(p, m, params)))
register(FormulaAlgorithm(
    "reduce_scatter", "recursive-halving",
    recursive_halving_reduce_scatter_time))

register(FormulaAlgorithm("broadcast", "binomial-tree", broadcast_time))
register(FormulaAlgorithm(
    "broadcast", "scatter-allgather", scatter_allgather_broadcast_time))

register(FormulaAlgorithm("reduce", "binomial-tree", reduce_time))


# ------------------------------------------------------------ array formulas
# Vectorized twins of the built-in scalar formulas, used by
# :meth:`repro.collectives.selector.CommModel.time_batch`.  Each entry is
# ``fn(p, m, alpha, beta, log2p, ceil_log2p) -> seconds`` where every
# argument is a broadcastable float64 ndarray (or scalar).  The bodies
# are written operator-for-operator like the scalar formulas above, so
# elementwise results are bit-identical; ``log2p``/``ceil_log2p`` are
# precomputed by the caller per *unique* p with ``math.log2``/
# ``math.ceil`` (never ``numpy.log2``) so round counts match the scalar
# path exactly, including the power-of-two edge.  ``p == 1`` / ``m == 0``
# elements are masked to zero by the caller — several formulas (tree,
# binomial) do not vanish at a singleton communicator on their own.
#
# These are plain arithmetic over whatever array type is passed in; the
# module itself never imports numpy, keeping the soft dependency in
# :mod:`repro.npcompat` only.


def _arr_ring_allreduce(p, m, alpha, beta, log2p, ceil_log2p):
    steps = 2.0 * (p - 1.0)
    return steps * alpha + steps * (m / p) * beta


def _arr_tree_allreduce(p, m, alpha, beta, log2p, ceil_log2p):
    steps = 2.0 * (log2p + 4.0)  # chunks = 4, as in tree_allreduce_time
    return steps * alpha + steps * (m / 8.0) * beta


def _arr_rd_allreduce(p, m, alpha, beta, log2p, ceil_log2p):
    return ceil_log2p * (alpha + m * beta)


def _arr_ring_allgather(p, m, alpha, beta, log2p, ceil_log2p):
    steps = p - 1.0
    return steps * alpha + steps * m * beta


def _arr_rd_allgather(p, m, alpha, beta, log2p, ceil_log2p):
    return ceil_log2p * alpha + (p - 1.0) * m * beta


def _arr_ring_reduce_scatter(p, m, alpha, beta, log2p, ceil_log2p):
    steps = p - 1.0
    return steps * alpha + steps * (m / p) * beta


def _arr_rh_reduce_scatter(p, m, alpha, beta, log2p, ceil_log2p):
    return ceil_log2p * alpha + (p - 1.0) / p * m * beta


def _arr_binomial_p2p(p, m, alpha, beta, log2p, ceil_log2p):
    return ceil_log2p * (alpha + m * beta)


def _arr_scatter_allgather(p, m, alpha, beta, log2p, ceil_log2p):
    alpha_term = (ceil_log2p + (p - 1.0)) * alpha
    beta_term = 2.0 * (p - 1.0) / p * m * beta
    return alpha_term + beta_term


#: ``(collective, algorithm) -> array formula``.  Every built-in except
#: the topology-dependent hierarchical Allreduce has an entry; the
#: selector special-cases that one (and falls back to scalar ``choose``
#: for third-party registrations without a twin).
ARRAY_FORMULAS: Dict[Tuple[str, str], Callable[..., object]] = {
    ("allreduce", "ring"): _arr_ring_allreduce,
    ("allreduce", "tree"): _arr_tree_allreduce,
    ("allreduce", "recursive-doubling"): _arr_rd_allreduce,
    ("allgather", "ring"): _arr_ring_allgather,
    ("allgather", "recursive-doubling"): _arr_rd_allgather,
    ("reduce_scatter", "ring"): _arr_ring_reduce_scatter,
    ("reduce_scatter", "recursive-halving"): _arr_rh_reduce_scatter,
    ("broadcast", "binomial-tree"): _arr_binomial_p2p,
    ("broadcast", "scatter-allgather"): _arr_scatter_allgather,
    ("reduce", "binomial-tree"): _arr_binomial_p2p,
}

# The algorithm instances each array formula mirrors.  If a caller
# re-registers over a built-in name (``register(..., overwrite=True)``)
# the twin no longer describes what ``choose`` would cost, so
# :func:`array_formula` stops offering it and the selector falls back to
# the scalar path for that algorithm.
_ARRAY_SOURCES: Dict[Tuple[str, str], CollectiveAlgorithm] = {
    key: _REGISTRY[key] for key in ARRAY_FORMULAS
}


def array_formula(
    collective: str, name: str
) -> Optional[Callable[..., object]]:
    """The vectorized twin of a *built-in* registered algorithm.

    Returns ``None`` when there is no twin or when the registered
    algorithm under this name is no longer the built-in the twin was
    derived from.
    """
    key = (collective, name)
    fn = ARRAY_FORMULAS.get(key)
    if fn is None or _REGISTRY.get(key) is not _ARRAY_SOURCES[key]:
        return None
    return fn


__all__.append("array_formula")
