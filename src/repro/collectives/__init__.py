"""Collective-communication cost models (analytic) and schedules (simulated).

Three layers:

* :mod:`~repro.collectives.algorithms` — the paper's Section-4.3
  closed-form costs (ring, pipelined tree, binomial, p2p) under Hockney
  (alpha, beta) parameters.
* :mod:`~repro.collectives.registry` — a pluggable registry of
  :class:`CollectiveAlgorithm` objects keyed by ``(collective,
  algorithm)``: the seed formulas plus recursive doubling / halving,
  scatter-allgather broadcast, and a topology-aware hierarchical
  allreduce.
* :mod:`~repro.collectives.selector` — :class:`CommModel`, the
  policy-driven, topology-aware selector (``paper`` / ``auto`` /
  ``nccl-like``) that the analytical model, simulator, search engine,
  and CLI all share.
"""

from .algorithms import (
    ring_allreduce_time,
    ring_allgather_time,
    ring_reduce_scatter_time,
    tree_allreduce_time,
    broadcast_time,
    reduce_time,
    p2p_time,
    allreduce_time,
    CollectiveCost,
)
from .registry import (
    COLLECTIVES,
    CollectiveAlgorithm,
    FormulaAlgorithm,
    TopologyHint,
    algorithms_for,
    get_algorithm,
    register,
    registered,
)
from .selector import (
    PAPER_DEFAULTS,
    POLICIES,
    CommChoice,
    CommModel,
    as_comm_model,
)

__all__ = [
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "tree_allreduce_time",
    "broadcast_time",
    "reduce_time",
    "p2p_time",
    "allreduce_time",
    "CollectiveCost",
    "COLLECTIVES",
    "CollectiveAlgorithm",
    "FormulaAlgorithm",
    "TopologyHint",
    "register",
    "registered",
    "get_algorithm",
    "algorithms_for",
    "POLICIES",
    "PAPER_DEFAULTS",
    "CommChoice",
    "CommModel",
    "as_comm_model",
]
