"""Collective-communication cost models (analytic) and schedules (simulated).

The analytic forms follow Section 4.3 of the paper: ring algorithms for
large messages (the NCCL default the paper assumes) and a pipelined
tree algorithm for small messages (the paper's footnote 4).
"""

from .algorithms import (
    ring_allreduce_time,
    ring_allgather_time,
    ring_reduce_scatter_time,
    tree_allreduce_time,
    broadcast_time,
    reduce_time,
    p2p_time,
    allreduce_time,
    CollectiveCost,
)

__all__ = [
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "tree_allreduce_time",
    "broadcast_time",
    "reduce_time",
    "p2p_time",
    "allreduce_time",
    "CollectiveCost",
]
