"""Ablation: pipeline segment count S (the GPipe bubble).

Table 3's pipeline row carries the (p + S - 1)/S bubble factor: more
micro-batches amortize the fill/drain bubble but shrink the per-kernel
batch (losing GPU efficiency) and multiply the P2P message count.  This
ablation sweeps S and locates the sweet spot the paper's "identify the time
and resources to provision" use-case needs.
"""

from repro.core.strategies import PipelineParallel
from repro.data import IMAGENET
from repro.harness.experiments import make_environment
from repro.harness.reporting import format_table

from _util import write_report


def _sweep():
    rows = []
    for segments in (1, 2, 4, 8, 16, 32):
        oracle, sim, _ = make_environment(
            4, "resnet50", samples_per_pe=max(1, 64 // segments),
            iterations=10,
        )
        strategy = PipelineParallel(4, segments=segments)
        proj = oracle.project(strategy, 64, IMAGENET)
        run = sim.run(strategy, 64, IMAGENET.num_samples)
        bubble = (4 + segments - 1) / segments
        rows.append((segments, bubble, proj.per_iteration.total,
                     run.mean_iteration))
    return rows


def test_bench_ablation_pipeline(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # The bubble factor strictly decreases with S ...
    bubbles = [r[1] for r in rows]
    assert bubbles == sorted(bubbles, reverse=True)
    # ... but measured time is not monotone: tiny micro-batches lose GPU
    # efficiency, so the optimum is interior (S=1 and S=32 both lose to
    # the best setting).
    measured = {r[0]: r[3] for r in rows}
    best = min(measured.values())
    assert measured[1] > best
    assert best > 0

    table = format_table(
        ["S", "bubble (p+S-1)/S", "oracle iter (ms)", "measured iter (ms)"],
        [[s, f"{b:.2f}", f"{o * 1e3:.1f}", f"{m * 1e3:.1f}"]
         for s, b, o, m in rows],
    )
    write_report("ablation_pipeline", [
        "Ablation — GPipe segment count (ResNet-50, p=4, B=64)",
        table,
    ])
