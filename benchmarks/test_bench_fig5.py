"""Figure 5: CosmoFlow spatial+data scaling vs pure spatial.

The paper's Figure 5 shows Data+Spatial scaling almost perfectly (note the
log y-axis) while pure spatial parallelism is capped at one node — and data
parallelism cannot run at all (memory).  We assert both: near-linear
speedup in the number of data-parallel groups, and the data-parallel
memory infeasibility that motivates the hybrid.
"""

from repro.harness import run_fig5
from repro.harness.reporting import format_table

from _util import write_report


def test_bench_fig5(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig5(ps=(4, 16, 64), iterations=5),
        rounds=1, iterations=1,
    )
    ds_rows = [r for r in rows if r.strategy == "ds"]
    assert ds_rows

    # Near-perfect scaling: speedup within 25% of the group count.
    for r in ds_rows:
        groups = r.p // 4
        assert r.speedup_vs_spatial > 0.75 * groups
        assert r.feasible

    # Data parallelism is memory-infeasible (the reason ds exists here).
    d = next(r for r in rows if r.strategy == "d")
    assert not d.feasible
    assert d.memory_GB > 16.0

    table = format_table(
        ["strategy", "p", "epoch (s)", "speedup", "mem GB", "fits"],
        [[r.strategy, r.p,
          f"{r.epoch_time:.1f}" if r.epoch_time == r.epoch_time else "n/a",
          f"{r.speedup_vs_spatial:.1f}x", f"{r.memory_GB:.1f}",
          "yes" if r.feasible else "NO"] for r in rows],
    )
    write_report("fig5", [
        "Figure 5 — CosmoFlow spatial+data scaling (512^3 samples)",
        table,
        "(paper: perfect scaling of ds; data parallelism not an option)",
    ])
