"""Section 5.2: the headline accuracy summary.

The paper reports 86.74% average oracle accuracy across all strategies and
models, up to 97.57% for data parallelism on VGG16, with data parallelism
the best-predicted strategy.  We regenerate the summary over the full
Figure-3 grid (simulator standing in for the 1024-GPU machine).
"""

from repro.harness import run_accuracy_summary
from repro.harness.reporting import format_table, pct

from _util import write_report


def test_bench_accuracy_summary(benchmark):
    summary = benchmark.pedantic(
        lambda: run_accuracy_summary(quick=True, iterations=20),
        rounds=1, iterations=1,
    )
    # Paper shape: high overall accuracy, data parallelism on top.
    assert summary.overall > 0.80
    assert summary.per_strategy["d"] == max(summary.per_strategy.values())
    assert summary.per_strategy["d"] > 0.95
    best_label, best_acc = summary.best
    assert best_acc > 0.97  # paper: up to 97.57%

    rows = [[k, pct(v)] for k, v in sorted(summary.per_strategy.items())]
    rows += [[f"model:{k}", pct(v)] for k, v in sorted(summary.per_model.items())]
    rows.append(["OVERALL", pct(summary.overall)])
    rows.append([f"best ({best_label})", pct(best_acc)])
    write_report("accuracy_summary", [
        "Section 5.2 — oracle accuracy summary",
        format_table(["scope", "mean accuracy"], rows),
        "(paper: 86.74% overall; 96.10% d, 85.56% f, 73.67% c, 91.43% df, "
        "83.46% ds, 90.22% p; max 97.57%)",
    ])
