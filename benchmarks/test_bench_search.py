"""Search throughput: candidates evaluated per second, cold vs. warm cache.

Measures the acceptance claims of the search subsystem: the projection
fast path keeps cold (cache-less) evaluation in the tens of thousands of
candidates per second, a second planning session against a persisted
projection cache answers every candidate from the memo (zero
projections) and never runs slower, and the search result itself is
sound — the scalarized best must match or beat the best feasible
``ParaDL.suggest`` entry at the same budget, since the search space is a
superset of suggest's fixed ranking.

Alongside ``search.txt`` the run emits ``BENCH_search.json`` (cold/warm
wall ms and candidates/s, machine info) — the machine-readable
trajectory ``scripts/check_perf_regression.py`` guards.
"""

import time

from repro.core.calibration import profile_model
from repro.core.math_utils import power_of_two_budgets
from repro.core.oracle import ParaDL
from repro.data.datasets import IMAGENET
from repro.models import build_model
from repro.network.topology import abci_like_cluster
from repro.search import SearchEngine, SearchSpace

from _util import write_report

PES = 64


def _make_oracle():
    model = build_model("resnet50", None)
    cluster = abci_like_cluster(PES)
    profile = profile_model(model, samples_per_pe=32)
    return ParaDL(model, cluster, profile)


def _space():
    return SearchSpace(
        pe_budgets=tuple(power_of_two_budgets(PES, start=4)),
        samples_per_pe=(16, 32),
        segments=(2, 4, 8),
    )


def _timed_search(engine, space):
    t0 = time.perf_counter()
    report = engine.search(space)
    return report, time.perf_counter() - t0


#: Repetitions per measurement; best-of-N guards the speedup ratio against
#: scheduler jitter when the whole suite runs in parallel with this test.
REPEATS = 5


def test_bench_search_cold_vs_warm(tmp_path):
    oracle = _make_oracle()
    space = _space()

    cold_s = float("inf")
    for i in range(REPEATS):
        path = str(tmp_path / f"cold-cache-{i}.json")
        cold_engine = SearchEngine(oracle, IMAGENET, cache=path, workers=1)
        cold_report, elapsed = _timed_search(cold_engine, space)
        assert cold_engine.cache.hits == 0
        cold_s = min(cold_s, elapsed)
    path = str(tmp_path / f"cold-cache-{REPEATS - 1}.json")

    warm_s = float("inf")
    for _ in range(REPEATS):
        warm_engine = SearchEngine(oracle, IMAGENET, cache=path, workers=1)
        warm_report, elapsed = _timed_search(warm_engine, space)
        warm_s = min(warm_s, elapsed)

    n = cold_report.stats["candidates"]
    assert n == warm_report.stats["candidates"]
    # A warm cache answers everything — no projection is ever recomputed.
    assert warm_report.stats["cache_misses"] == 0
    # Identical results either way.
    assert warm_report.best.candidate == cold_report.best.candidate
    assert [e.projection for e in warm_report.frontier] == \
           [e.projection for e in cold_report.frontier]
    # The warm path should never meaningfully lose to the cold one.
    # (The historical >= 10x bar measured how *slow* cold projection
    # was before the compiled-kernel fast path; now that cold
    # evaluation is itself fast, the ratio is bounded by the shared
    # prune/rank overhead — the robust invariant is the zero-miss
    # assertion above, the absolute throughputs in BENCH_search.json
    # are the guarded quantities, and the 2x margin here only absorbs
    # scheduler noise on shared runners.)
    speedup = cold_s / warm_s
    assert speedup >= 0.5, (
        f"warm cache much slower than cold "
        f"(cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms)"
    )

    # Search must match or beat plain suggest at the same budget.
    feasible = [s for s in oracle.suggest(PES, IMAGENET) if s.feasible]
    sug_best = min(s.epoch_time for s in feasible)
    assert cold_report.best.epoch_time <= sug_best + 1e-9

    write_report("search", [
        f"Search throughput — resnet50, budgets {power_of_two_budgets(PES)}"
        f" ({n} candidates, {cold_report.stats['pruned']} pruned)",
        f"cold: {cold_s * 1e3:8.1f} ms   {n / cold_s:8.0f} candidates/s",
        f"warm: {warm_s * 1e3:8.1f} ms   {n / warm_s:8.0f} candidates/s",
        f"speedup: {speedup:.1f}x",
        f"frontier: {len(cold_report.frontier)} points; "
        f"best {cold_report.best.describe()} "
        f"epoch={cold_report.best.epoch_time:.1f}s",
        f"suggest best epoch={sug_best:.1f}s "
        f"(search gain {(1 - cold_report.best.epoch_time / sug_best):.2%})",
    ], metrics={
        "candidates": n,
        "pruned": cold_report.stats["pruned"],
        "cold_wall_ms": cold_s * 1e3,
        "warm_wall_ms": warm_s * 1e3,
        "candidates_per_s_cold": n / cold_s,
        "candidates_per_s_warm": n / warm_s,
        "warm_speedup": speedup,
    }, higher_is_better=(
        "candidates_per_s_cold", "candidates_per_s_warm",
    ))


def test_bench_search_throughput(benchmark, tmp_path):
    """pytest-benchmark series for trend tracking: warm-cache evaluation."""
    oracle = _make_oracle()
    space = _space()
    path = str(tmp_path / "bench-cache.json")
    SearchEngine(oracle, IMAGENET, cache=path, workers=1).search(space)

    def warm():
        return SearchEngine(
            oracle, IMAGENET, cache=path, workers=1).search(space)

    report = benchmark(warm)
    assert report.best is not None
