"""Search throughput: candidates evaluated per second, cold vs. warm cache.

Measures the acceptance claims of the search subsystem: the projection
fast path keeps cold (cache-less) evaluation in the tens of thousands of
candidates per second, a second planning session against a persisted
projection cache answers every candidate from the memo (zero
projections) and never runs slower, and the search result itself is
sound — the scalarized best must match or beat the best feasible
``ParaDL.suggest`` entry at the same budget, since the search space is a
superset of suggest's fixed ranking.

Alongside ``search.txt`` the run emits ``BENCH_search.json`` (cold/warm
wall ms and candidates/s, machine info) — the machine-readable
trajectory ``scripts/check_perf_regression.py`` guards.
"""

import time

from repro.core.calibration import profile_model
from repro.core.math_utils import power_of_two_budgets
from repro.core.oracle import ParaDL
from repro.data.datasets import IMAGENET
from repro.models import build_model
from repro.network.topology import abci_like_cluster
from repro.search import SearchEngine, SearchSpace

from _util import write_report

PES = 64


def _make_oracle():
    model = build_model("resnet50", None)
    cluster = abci_like_cluster(PES)
    profile = profile_model(model, samples_per_pe=32)
    return ParaDL(model, cluster, profile)


def _space(**kw):
    return SearchSpace(
        pe_budgets=tuple(power_of_two_budgets(PES, start=4)),
        samples_per_pe=(16, 32),
        segments=(2, 4, 8),
        **kw,
    )


def _timed_search(engine, space):
    t0 = time.perf_counter()
    report = engine.search(space)
    return report, time.perf_counter() - t0


#: Repetitions per measurement; best-of-N guards the speedup ratio against
#: scheduler jitter when the whole suite runs in parallel with this test.
REPEATS = 5


def test_bench_search_cold_vs_warm(tmp_path):
    oracle = _make_oracle()
    space = _space()

    cold_s = float("inf")
    for i in range(REPEATS):
        path = str(tmp_path / f"cold-cache-{i}.json")
        cold_engine = SearchEngine(oracle, IMAGENET, cache=path, workers=1)
        cold_report, elapsed = _timed_search(cold_engine, space)
        assert cold_engine.cache.hits == 0
        cold_s = min(cold_s, elapsed)
    path = str(tmp_path / f"cold-cache-{REPEATS - 1}.json")

    warm_s = float("inf")
    for _ in range(REPEATS):
        warm_engine = SearchEngine(oracle, IMAGENET, cache=path, workers=1)
        warm_report, elapsed = _timed_search(warm_engine, space)
        warm_s = min(warm_s, elapsed)

    # Same cold measurement with the array path disabled: the scalar
    # fallback's throughput is tracked as its own metric so a regression
    # in either lane is visible independently.
    scalar_s = float("inf")
    for i in range(REPEATS):
        spath = str(tmp_path / f"scalar-cache-{i}.json")
        scalar_engine = SearchEngine(
            oracle, IMAGENET, cache=spath, workers=1, vectorize=False)
        scalar_report, elapsed = _timed_search(scalar_engine, space)
        scalar_s = min(scalar_s, elapsed)

    n = cold_report.stats["candidates"]
    assert n == warm_report.stats["candidates"]
    # A warm cache answers everything — no projection is ever recomputed.
    assert warm_report.stats["cache_misses"] == 0
    # Identical results either way.
    assert warm_report.best.candidate == cold_report.best.candidate
    assert [e.projection for e in warm_report.frontier] == \
           [e.projection for e in cold_report.frontier]
    # The warm path should never meaningfully lose to the cold one.
    # (The historical >= 10x bar measured how *slow* cold projection
    # was before the compiled-kernel fast path; now that cold
    # evaluation is itself fast, the ratio is bounded by the shared
    # prune/rank overhead — the robust invariant is the zero-miss
    # assertion above, the absolute throughputs in BENCH_search.json
    # are the guarded quantities, and the 2x margin here only absorbs
    # scheduler noise on shared runners.)
    speedup = cold_s / warm_s
    assert speedup >= 0.5, (
        f"warm cache much slower than cold "
        f"(cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms)"
    )

    # The scalar fallback finds the same answer, just slower.
    assert scalar_report.best.candidate == cold_report.best.candidate
    assert scalar_report.stats["candidates"] == n
    vec_speedup = scalar_s / cold_s

    # Search must match or beat plain suggest at the same budget.
    feasible = [s for s in oracle.suggest(PES, IMAGENET) if s.feasible]
    sug_best = min(s.epoch_time for s in feasible)
    assert cold_report.best.epoch_time <= sug_best + 1e-9

    # Exhaustive expansion is where the array path earns its keep: the
    # sampled space above is small enough that per-run floors (cache
    # write, ranking, expansion) dominate, while the full divisor sweep
    # projects ~13x more candidates and amortizes them away.  Both lanes
    # are measured so the vectorized-vs-scalar ratio is tracked at the
    # scale the exhaustive flag actually unlocks.
    exh_space = _space(exhaustive=True)
    exh_s = float("inf")
    for i in range(REPEATS):
        epath = str(tmp_path / f"exh-cache-{i}.json")
        exh_engine = SearchEngine(oracle, IMAGENET, cache=epath, workers=1)
        exh_report, elapsed = _timed_search(exh_engine, exh_space)
        exh_s = min(exh_s, elapsed)
    exh_scalar_s = float("inf")
    for i in range(REPEATS):
        epath = str(tmp_path / f"exh-scalar-cache-{i}.json")
        exh_engine = SearchEngine(
            oracle, IMAGENET, cache=epath, workers=1, vectorize=False)
        exh_scalar_report, elapsed = _timed_search(exh_engine, exh_space)
        exh_scalar_s = min(exh_scalar_s, elapsed)
    en = exh_report.stats["candidates"]
    assert en > n
    assert exh_scalar_report.stats["candidates"] == en
    assert exh_scalar_report.best.candidate == exh_report.best.candidate
    # The exhaustive superset can only match or improve the sampled best.
    assert exh_report.best.epoch_time <= cold_report.best.epoch_time + 1e-9
    exh_speedup = exh_scalar_s / exh_s

    write_report("search", [
        f"Search throughput — resnet50, budgets {power_of_two_budgets(PES)}"
        f" ({n} candidates, {cold_report.stats['pruned']} pruned)",
        f"cold:   {cold_s * 1e3:8.1f} ms   {n / cold_s:8.0f} candidates/s"
        f"   (vectorized)",
        f"scalar: {scalar_s * 1e3:8.1f} ms   {n / scalar_s:8.0f}"
        f" candidates/s   (vectorize=False)",
        f"warm:   {warm_s * 1e3:8.1f} ms   {n / warm_s:8.0f} candidates/s",
        f"speedup: warm {speedup:.1f}x, vectorized {vec_speedup:.1f}x"
        f" over scalar",
        f"frontier: {len(cold_report.frontier)} points; "
        f"best {cold_report.best.describe()} "
        f"epoch={cold_report.best.epoch_time:.1f}s",
        f"suggest best epoch={sug_best:.1f}s "
        f"(search gain {(1 - cold_report.best.epoch_time / sug_best):.2%})",
        f"exhaustive ({en} candidates):",
        f"cold:   {exh_s * 1e3:8.1f} ms   {en / exh_s:8.0f} candidates/s"
        f"   (vectorized)",
        f"scalar: {exh_scalar_s * 1e3:8.1f} ms   {en / exh_scalar_s:8.0f}"
        f" candidates/s   (vectorize=False)",
        f"speedup: vectorized {exh_speedup:.1f}x over scalar",
    ], metrics={
        "candidates": n,
        "pruned": cold_report.stats["pruned"],
        "cold_wall_ms": cold_s * 1e3,
        "cold_scalar_wall_ms": scalar_s * 1e3,
        "warm_wall_ms": warm_s * 1e3,
        "candidates_per_s_cold": n / cold_s,
        "candidates_per_s_cold_scalar": n / scalar_s,
        "candidates_per_s_warm": n / warm_s,
        "warm_speedup": speedup,
        "vectorized_speedup": vec_speedup,
        "exhaustive_candidates": en,
        "exhaustive_cold_wall_ms": exh_s * 1e3,
        "exhaustive_scalar_wall_ms": exh_scalar_s * 1e3,
        "candidates_per_s_exhaustive": en / exh_s,
        "candidates_per_s_exhaustive_scalar": en / exh_scalar_s,
        "exhaustive_vectorized_speedup": exh_speedup,
    }, higher_is_better=(
        "candidates_per_s_cold", "candidates_per_s_cold_scalar",
        "candidates_per_s_warm", "candidates_per_s_exhaustive",
        "candidates_per_s_exhaustive_scalar",
    ))


def test_bench_search_throughput(benchmark, tmp_path):
    """pytest-benchmark series for trend tracking: warm-cache evaluation."""
    oracle = _make_oracle()
    space = _space()
    path = str(tmp_path / "bench-cache.json")
    SearchEngine(oracle, IMAGENET, cache=path, workers=1).search(space)

    def warm():
        return SearchEngine(
            oracle, IMAGENET, cache=path, workers=1).search(space)

    report = benchmark(warm)
    assert report.best is not None
