"""Ablation: communication-policy choice across the model zoo.

The seed model costed every collective as a ring (the paper's Section-4.3
default).  With the pluggable algorithm layer, the same projection can be
re-costed under ``auto`` (min-cost over the registered algorithms,
topology-aware) and ``nccl-like`` (message-size thresholds).  This
ablation sweeps the zoo and reports, per (model, strategy), how much of
the ring-only communication time each policy recovers and which
algorithm the gradient exchange actually selects.
"""

from repro.core.calibration import profile_model
from repro.core.oracle import ParaDL
from repro.core.strategies import strategy_from_id
from repro.data import IMAGENET
from repro.harness.reporting import format_table
from repro.models import build_model
from repro.network.topology import abci_like_cluster

from _util import write_report

POLICIES = ("paper", "auto", "nccl-like")
CASES = [
    ("alexnet", "d", 64),
    ("alexnet", "f", 64),
    ("resnet50", "d", 64),
    ("resnet50", "z", 64),
    ("vgg16", "d", 64),
    ("vgg16", "ds", 64),
]


def _sweep():
    rows = []
    for model_name, sid, p in CASES:
        model = build_model(model_name, None)
        cluster = abci_like_cluster(p)
        profile = profile_model(model, samples_per_pe=32)
        oracle = ParaDL(model, cluster, profile)
        batch = 32 * p
        strategy = strategy_from_id(sid, p, model, batch,
                                    intra=cluster.node.gpus)
        comms = {}
        algos = {}
        for policy in POLICIES:
            proj = oracle.analytical.project(
                strategy, batch, IMAGENET.num_samples, comm=policy)
            comms[policy] = proj.per_epoch.communication
            algos[policy] = dict(proj.comm_algorithms).get("ge", "-")
        rows.append((model_name, sid, p, comms, algos))
    return rows


def test_bench_ablation_comm_policies(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    for model_name, sid, p, comms, algos in rows:
        # auto is min-cost by construction: never worse than ring-only.
        assert comms["auto"] <= comms["paper"] * (1 + 1e-12), (model_name, sid)
        # nccl-like only deviates from ring when the tree wins.
        assert comms["nccl-like"] <= comms["paper"] * (1 + 1e-12)
        assert comms["paper"] > 0

    table = format_table(
        ["model", "strategy", "p", "ring-only (s)", "auto (s)",
         "nccl-like (s)", "auto GE algorithm"],
        [[m, sid, p,
          f"{c['paper']:10.2f}", f"{c['auto']:10.2f}",
          f"{c['nccl-like']:10.2f}", a["auto"]]
         for m, sid, p, c, a in rows],
    )
    write_report("ablation_comm_policies", [
        "Ablation — communication-policy choice (ring-only vs auto vs "
        "nccl-like), per-epoch communication seconds",
        table,
    ])
