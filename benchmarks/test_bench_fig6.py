"""Figure 6: network congestion scatter.

The paper plots per-measurement collective times for ResNet-50 data
parallelism (512 GPUs, GE-Allreduce) and VGG16 filter parallelism (64 GPUs,
FB-Allgather): most points sit on the theoretical bandwidth line, a
minority of congestion outliers land up to ~4x higher.
"""

import numpy as np

from repro.harness import run_fig6
from repro.harness.reporting import format_table

from _util import write_report


def test_bench_fig6(benchmark):
    series = benchmark.pedantic(
        lambda: run_fig6(iterations=200, seed=7),
        rounds=1, iterations=1,
    )
    assert len(series) == 2
    rows = []
    for s in series:
        ratio = s.samples / s.expected
        # Bulk of the distribution near the theory line.
        assert np.median(ratio) < 1.3
        # A real outlier tail exists but is bounded by the paper's ~4x.
        assert s.max_slowdown > 1.3
        assert s.max_slowdown < 4.0 * 1.3
        rows.append([
            s.label,
            f"{s.expected * 1e3:.2f}",
            f"{np.median(s.samples) * 1e3:.2f}",
            f"{np.percentile(s.samples, 99) * 1e3:.2f}",
            f"{s.outlier_fraction:.1%}",
            f"{s.max_slowdown:.2f}x",
        ])
    table = format_table(
        ["series", "expected (ms)", "median (ms)", "p99 (ms)",
         "outliers (>1.5x)", "worst"],
        rows,
    )
    write_report("fig6", [
        "Figure 6 — collective times under external congestion",
        table,
        "(paper: outliers push communication up to ~4x over the "
        "theoretical bandwidth line)",
    ])
