"""Figure 4: ParaDL prediction accuracy for CosmoFlow under Data+Spatial.

CosmoFlow's 512^3 samples only fit under spatial decomposition; the paper
reports ~74% average oracle accuracy on this (hardest) workload, driven by
the hierarchical Allreduce and halo costs.
"""

from repro.harness import run_fig4
from repro.harness.reporting import format_table, pct

from _util import write_report


def test_bench_fig4(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig4(ps=(16, 64), iterations=15),
        rounds=1, iterations=1,
    )
    assert len(rows) == 2
    for r in rows:
        # Paper: CosmoFlow averages 74.14%; require at least that ballpark.
        assert r.accuracy > 0.60
        assert r.oracle_iter > 0 and r.measured_iter > 0

    table = format_table(
        ["p", "groups", "oracle iter (s)", "measured iter (s)", "accuracy"],
        [[r.p, r.p1, f"{r.oracle_iter:.3f}", f"{r.measured_iter:.3f}",
          pct(r.accuracy)] for r in rows],
    )
    write_report("fig4", [
        "Figure 4 — CosmoFlow Data+Spatial prediction accuracy",
        table,
        "(paper: 74.14% average accuracy for CosmoFlow)",
    ])
