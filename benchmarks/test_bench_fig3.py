"""Figure 3: oracle vs measured time breakdown per model x strategy x p.

The paper's headline figure: stacked computation+communication bars for the
ParaDL projection next to the measured iteration time, for ResNet-50,
ResNet-152 and VGG16 under six parallel strategies, with the projection
accuracy printed above each column.  We regenerate every cell (the
simulator playing the 1024-GPU machine) and assert the paper's shape:
data parallelism is the most accurately predicted strategy and layer-wise
communication dominates filter/channel at B >= 32.
"""

import numpy as np

from repro.harness import run_fig3
from repro.harness.reporting import format_table, pct

from _util import write_report


def _render(cells):
    rows = []
    for c in cells:
        rows.append([
            c.model, c.sid, c.p, c.batch,
            f"{c.oracle.computation * 1e3:9.2f}",
            f"{c.oracle.communication * 1e3:9.2f}",
            f"{c.measured.computation * 1e3:9.2f}",
            f"{c.measured.communication * 1e3:9.2f}",
            pct(c.accuracy),
            f"{c.memory_GB:5.1f}",
        ])
    return format_table(
        ["model", "strat", "p", "B",
         "oracle comp (ms)", "oracle comm (ms)",
         "meas comp (ms)", "meas comm (ms)", "accuracy", "mem GB"],
        rows,
    )


def test_bench_fig3(benchmark):
    cells = benchmark.pedantic(
        lambda: run_fig3(quick=True, iterations=20),
        rounds=1, iterations=1,
    )
    assert len(cells) >= 30  # 3 models x 6 strategies x >=2 scales

    by_sid = {}
    for c in cells:
        by_sid.setdefault(c.sid, []).append(c.accuracy)
    means = {k: float(np.mean(v)) for k, v in by_sid.items()}

    # Paper shape: data parallelism is predicted best (96.1% there).
    assert means["d"] == max(means.values())
    assert means["d"] > 0.95
    # Every strategy is predicted reasonably (>70% mean).
    assert all(v > 0.70 for v in means.values())
    # Filter/channel are communication-bound at B = 32 (Section 5.3.1).
    for c in cells:
        if c.sid in ("f", "c"):
            assert c.oracle.communication > c.oracle.computation

    overall = float(np.mean([c.accuracy for c in cells]))
    lines = [
        "Figure 3 — oracle vs measured breakdown (quick grid)",
        _render(cells),
        "",
        "mean accuracy per strategy: "
        + "  ".join(f"{k}={pct(v)}" for k, v in sorted(means.items())),
        f"overall: {pct(overall)}   "
        f"(paper: 86.74% overall, 96.10% for data parallelism)",
    ]
    write_report("fig3", lines)
    assert overall > 0.80
