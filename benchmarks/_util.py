"""Shared helpers for the benchmark harness.

Every ``test_bench_*`` benchmark regenerates one table/figure of the paper,
asserts its qualitative shape, and writes the rendered rows to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture (EXPERIMENTS.md records the paper-vs-measured comparison).
"""

from __future__ import annotations

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, lines: Iterable[str]) -> str:
    """Persist a rendered report; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    print(text)
    return path
