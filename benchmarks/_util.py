"""Shared helpers for the benchmark harness.

Every ``test_bench_*`` benchmark regenerates one table/figure of the paper,
asserts its qualitative shape, and writes the rendered rows to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture (EXPERIMENTS.md records the paper-vs-measured comparison).

Alongside the text report, every benchmark emits a machine-readable
``benchmarks/results/BENCH_<name>.json``: a schema-versioned envelope
(``schema_version``, benchmark ``name``, ``machine`` info, a ``metrics``
dict, and the ``higher_is_better`` metric names a regression checker may
compare).  ``scripts/check_perf_regression.py`` diffs these against a
baseline directory with a tolerance band, so performance claims leave a
tracked, reproducible trajectory instead of prose.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Iterable, Mapping, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Version of the ``BENCH_<name>.json`` envelope.  Bump on breaking
#: schema changes; the regression checker skips mismatched versions.
BENCH_SCHEMA_VERSION = 1


def machine_info() -> dict:
    """Where the numbers came from (JSON-ready)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def write_bench_json(
    name: str,
    metrics: Optional[Mapping[str, object]] = None,
    higher_is_better: Sequence[str] = (),
) -> str:
    """Persist the machine-readable result envelope; returns the path.

    ``metrics`` is benchmark-specific (throughputs, wall times, counts);
    ``higher_is_better`` names the metric keys where a *drop* is a
    regression — the contract ``scripts/check_perf_regression.py``
    consumes.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "machine": machine_info(),
        "metrics": dict(metrics or {}),
        "higher_is_better": sorted(higher_is_better),
    }
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def write_report(
    name: str,
    lines: Iterable[str],
    metrics: Optional[Mapping[str, object]] = None,
    higher_is_better: Sequence[str] = (),
) -> str:
    """Persist a rendered report (+ its JSON envelope); returns the path.

    The text report carries the human-readable rows; the sibling
    ``BENCH_<name>.json`` carries ``metrics`` (empty when the benchmark
    reports no scalar metrics yet — the envelope is still emitted so
    every benchmark has a machine-readable artifact).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    print(text)
    write_bench_json(name, metrics, higher_is_better)
    return path
