"""Serving benchmark: sustained closed-loop load on the planning server.

Spins an in-process :class:`~repro.serve.server.PlanningServer` on an
ephemeral port, drives it with the closed-loop
:class:`~repro.serve.loadgen.LoadGenerator` (the default
project-heavy scenario mix), and records p50/p90/p99 latency plus
sustained RPS into ``benchmarks/results/BENCH_serve.json`` via the
standard harness — the envelope ``scripts/check_perf_regression.py``
diffs against its baseline (RPS is the higher-is-better metric).

Deliberately short (a couple of seconds of load) so it rides in the
tier-1 suite; ``repro bench-serve`` is the knob-turning CLI twin.
"""

from _util import write_report

from repro.serve import LoadGenerator, LoadReport, PlanningServer


def test_bench_serve():
    with PlanningServer(port=0, pool_size=16) as server:
        generator = LoadGenerator(server.url, clients=4, duration_s=2.0)
        report = generator.run()
        snapshot = server.app.metrics.snapshot()

    # Qualitative shape: the server sustained real traffic, cleanly.
    assert report.errors == 0
    assert report.requests > 50, "server answered implausibly few requests"
    assert report.rps > 25
    lat = report.latency
    assert 0 < lat["p50_ms"] <= lat["p90_ms"] <= lat["p99_ms"]
    assert lat["p99_ms"] < 5_000, "p99 latency beyond any sane bound"
    # Every request the clients counted, the server counted too.
    assert snapshot["serve.requests"]["value"] >= report.requests
    assert snapshot["serve.status.200"]["value"] >= report.requests

    lines = report.lines() + [
        "",
        "server-side: "
        f"{int(snapshot['serve.requests']['value'])} requests observed, "
        f"latency p99={snapshot['serve.latency_s']['p99'] * 1e3:.2f}ms",
    ]
    write_report(
        "serve", lines,
        metrics=report.bench_metrics(),
        higher_is_better=LoadReport.HIGHER_IS_BETTER,
    )
