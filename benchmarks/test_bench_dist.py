"""Distributed executor throughput: localhost fleet vs thread/process.

Measures the acceptance claims of ``repro.dist``: a remote search over
two localhost :class:`~repro.dist.WorkerServer` instances returns a
report byte-identical to ``executor="thread"`` on the same space, and
the candidates/s of each backend is tracked so the wire protocol's
overhead (pickling chunks, heartbeats, result frames) leaves a
machine-readable trajectory.  The remote lane is measured twice: cold
(first handshake ships the pickled context and every projection is
computed) and warm (worker-side engines answer from their memo, so the
number approximates pure protocol throughput).

Alongside ``dist.txt`` the run emits ``BENCH_dist.json`` — the envelope
``scripts/check_perf_regression.py`` guards.
"""

import json
import time

from repro.core.calibration import profile_model
from repro.core.math_utils import power_of_two_budgets
from repro.core.oracle import ParaDL
from repro.data.datasets import IMAGENET
from repro.dist import WorkerServer
from repro.models import build_model
from repro.network.topology import abci_like_cluster
from repro.search import SearchEngine, SearchSpace

from _util import write_report

PES = 64
FLEET = 2

#: Repetitions per measurement; best-of-N guards against scheduler
#: jitter on shared runners.
REPEATS = 3


def _make_oracle():
    model = build_model("resnet50", None)
    cluster = abci_like_cluster(PES)
    profile = profile_model(model, samples_per_pe=32)
    return ParaDL(model, cluster, profile)


def _space():
    return SearchSpace(
        pe_budgets=tuple(power_of_two_budgets(PES, start=4)),
        samples_per_pe=(16, 32),
        segments=(2, 4, 8),
    )


def _timed_search(engine, space):
    t0 = time.perf_counter()
    report = engine.search(space)
    return report, time.perf_counter() - t0


def _blob(report):
    return json.dumps(report.asdict(), sort_keys=True)


def test_bench_dist_fleet_vs_local(tmp_path):
    oracle = _make_oracle()
    space = _space()

    thread_s = float("inf")
    for i in range(REPEATS):
        engine = SearchEngine(
            oracle, IMAGENET, cache=str(tmp_path / f"t{i}.json"),
            executor="thread")
        thread_report, elapsed = _timed_search(engine, space)
        thread_s = min(thread_s, elapsed)

    process_s = float("inf")
    for i in range(REPEATS):
        engine = SearchEngine(
            oracle, IMAGENET, cache=str(tmp_path / f"p{i}.json"),
            executor="process")
        process_report, elapsed = _timed_search(engine, space)
        process_s = min(process_s, elapsed)

    with WorkerServer() as w1, WorkerServer() as w2:
        fleet = [w1.address, w2.address]
        # Cold: the handshake ships the pickled context and the workers
        # project every candidate from scratch.
        engine = SearchEngine(
            oracle, IMAGENET, cache=str(tmp_path / "r-cold.json"),
            executor="remote", remote_workers=fleet)
        remote_report, remote_cold_s = _timed_search(engine, space)
        # Warm: worker-side engines keep their context and projection
        # memo across connections, so repeats approximate pure protocol
        # throughput (every candidate still crosses the wire).
        remote_warm_s = float("inf")
        for i in range(REPEATS):
            engine = SearchEngine(
                oracle, IMAGENET, cache=str(tmp_path / f"r{i}.json"),
                executor="remote", remote_workers=fleet)
            warm_report, elapsed = _timed_search(engine, space)
            remote_warm_s = min(remote_warm_s, elapsed)
        served = w1.chunks_served + w2.chunks_served

    # Parity: the cold fleet answer is byte-identical to the local one.
    assert _blob(remote_report) == _blob(thread_report)
    # Warm runs answer from the worker-side memo, which truthfully flips
    # the per-evaluation ``cached`` flag (exactly as a warm local cache
    # would); everything else stays byte-identical.
    def _strip_cached(obj):
        if isinstance(obj, dict):
            return {k: _strip_cached(v) for k, v in obj.items()
                    if k != "cached"}
        if isinstance(obj, list):
            return [_strip_cached(v) for v in obj]
        return obj

    assert _strip_cached(warm_report.asdict()) == \
        _strip_cached(thread_report.asdict())
    assert process_report.best.candidate == thread_report.best.candidate
    assert served > 0

    n = thread_report.stats["candidates"]
    write_report("dist", [
        f"Distributed executor — resnet50 at p={PES}, {n} candidates, "
        f"{FLEET} localhost workers ({served} chunks served)",
        f"thread:        {thread_s * 1e3:8.1f} ms   "
        f"{n / thread_s:8.0f} candidates/s",
        f"process:       {process_s * 1e3:8.1f} ms   "
        f"{n / process_s:8.0f} candidates/s",
        f"remote (cold): {remote_cold_s * 1e3:8.1f} ms   "
        f"{n / remote_cold_s:8.0f} candidates/s   (context ship incl.)",
        f"remote (warm): {remote_warm_s * 1e3:8.1f} ms   "
        f"{n / remote_warm_s:8.0f} candidates/s   (worker memo warm)",
        f"parity: remote report byte-identical to thread "
        f"(best {thread_report.best.describe()})",
    ], metrics={
        "candidates": n,
        "workers": FLEET,
        "chunks_served": served,
        "thread_wall_ms": thread_s * 1e3,
        "process_wall_ms": process_s * 1e3,
        "remote_cold_wall_ms": remote_cold_s * 1e3,
        "remote_warm_wall_ms": remote_warm_s * 1e3,
        "candidates_per_s_thread": n / thread_s,
        "candidates_per_s_process": n / process_s,
        "candidates_per_s_remote_cold": n / remote_cold_s,
        "candidates_per_s_remote_warm": n / remote_warm_s,
    }, higher_is_better=(
        "candidates_per_s_thread",
        "candidates_per_s_remote_cold",
        "candidates_per_s_remote_warm",
    ))
