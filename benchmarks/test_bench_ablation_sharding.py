"""Ablation: plain vs ZeRO-sharded data parallelism and multi-leader
hierarchical Allreduce (the two mitigations Section 5.3 discusses).

* Sharding removes the weight-replication memory redundancy at +50%
  gradient-exchange communication — worthwhile exactly when the model's
  parameter memory matters (VGG16) and wasteful when it doesn't (ResNet-50
  at large batch).
* Multi-leader Allreduce attacks the >2x overhead of the Data+Spatial
  hierarchical exchange; the gain saturates at the NIC rail count.
"""

from repro.core.analytical import AnalyticalModel
from repro.core.calibration import profile_model
from repro.core.strategies import (
    DataParallel,
    DataSpatialParallel,
    ShardedDataParallel,
)
from repro.data import IMAGENET
from repro.harness.reporting import format_table
from repro.models import resnet50, vgg16
from repro.network.topology import abci_like_cluster

from _util import write_report

D = IMAGENET.num_samples


def _sweep():
    cluster = abci_like_cluster(64)
    rows = []
    for model in (resnet50(), vgg16()):
        profile = profile_model(model, samples_per_pe=32)
        am = AnalyticalModel(model, cluster, profile)
        d = am.project(DataParallel(64), 2048, D)
        z = am.project(ShardedDataParallel(64), 2048, D)
        rows.append((model.name, d, z))
    # Multi-leader sweep on VGG16 ds.
    model = vgg16()
    profile = profile_model(model, samples_per_pe=32)
    am = AnalyticalModel(model, cluster, profile)
    leaders = {
        L: am.project(DataSpatialParallel(16, (2, 2), leaders=L), 512, D)
        for L in (1, 2, 4)
    }
    return rows, leaders


def test_bench_ablation_sharding(benchmark):
    rows, leaders = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table1 = []
    for name, d, z in rows:
        # The paper's stated trade-off: +50% GE communication.
        assert 1.4 < z.per_epoch.comm_ge / d.per_epoch.comm_ge < 1.6
        assert z.memory_bytes < d.memory_bytes
        table1.append([
            name,
            f"{d.per_iteration.comm_ge * 1e3:.1f}",
            f"{z.per_iteration.comm_ge * 1e3:.1f}",
            f"{d.memory_bytes / 1e9:.2f}",
            f"{z.memory_bytes / 1e9:.2f}",
        ])
    # VGG16 (138M params) saves far more memory than ResNet-50 (25M).
    saving = {
        name: d.memory_bytes - z.memory_bytes for name, d, z in rows
    }
    assert saving["vgg16"] > 4 * saving["resnet50"]

    ge = {L: p.per_iteration.comm_ge for L, p in leaders.items()}
    assert ge[2] < ge[1] and ge[4] <= ge[2]

    write_report("ablation_sharding", [
        "Ablation — ZeRO-style sharding vs plain data parallelism (p=64)",
        format_table(
            ["model", "d GE (ms)", "z GE (ms)", "d mem (GB)", "z mem (GB)"],
            table1,
        ),
        "",
        "Ablation — multi-leader hierarchical Allreduce (VGG16 ds, p=64)",
        format_table(
            ["leaders", "GE per iter (ms)"],
            [[L, f"{t * 1e3:.1f}"] for L, t in sorted(ge.items())],
        ),
        "(Section 5.3: sharding costs +50% GE; multi-leader gains saturate "
        "at the NIC rail count)",
    ])
