"""Figure 7: computation time per epoch; the weight-update share.

"Most compute time in training typically goes to the forward and backward
pass.  However ... for larger models the weight update starts to become a
significant portion" — up to 15% for VGG16 in the paper, and far worse for
Adam-style optimizers with four state variables per weight.
"""

from repro.harness import run_fig7
from repro.harness.reporting import format_table, pct

from _util import write_report


def test_bench_fig7(benchmark):
    rows = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    by = {(r.model, r.optimizer): r for r in rows}

    # WU is non-trivial for every model and grows with optimizer state.
    for model in ("resnet50", "resnet152", "vgg16"):
        assert by[(model, "sgd")].wu_share > 0.01
        assert by[(model, "adam")].wu_share > by[(model, "sgd")].wu_share
    # Adam pushes VGG16 (largest parameter count) past 8%.
    assert by[("vgg16", "adam")].wu_share > 0.08

    table = format_table(
        ["model", "optimizer", "fw (s/epoch)", "bw (s/epoch)",
         "wu (s/epoch)", "wu share"],
        [[r.model, r.optimizer, f"{r.fw_s:.0f}", f"{r.bw_s:.0f}",
          f"{r.wu_s:.0f}", pct(r.wu_share)] for r in rows],
    )
    write_report("fig7", [
        "Figure 7 — per-epoch computation breakdown (ImageNet, B=32/PE)",
        table,
        "(paper: weight update up to 15% for VGG16; Adam-style optimizers "
        "reach ~45% on transformer-scale models)",
    ])
