"""Observability overhead: the disabled path must stay within 2%.

The acceptance claim of the observability subsystem is that *not* using
it is free: every engine carries a tracer reference, wraps chunk
evaluation in a span, and checks ``tracer.enabled`` — all against the
shared no-op by default — so an uninstrumented search must run within a
small tolerance of the pre-observability baseline.  This benchmark
measures a cache-less search with the default (null) tracer against the
same search with tracing + metrics fully on, and pins the *disabled*
side's per-candidate span cost directly.

Emits ``BENCH_obs_overhead.json`` with the disabled/enabled wall times
and the measured disabled-path overhead fraction, asserted ≤ 2%
(measured generously best-of-N against best-of-N; the no-op costs one
method call per 64-candidate chunk, orders of magnitude below the
tolerance).
"""

import time

from repro.core.calibration import profile_model
from repro.core.math_utils import power_of_two_budgets
from repro.core.oracle import ParaDL
from repro.data.datasets import IMAGENET
from repro.models import build_model
from repro.network.topology import abci_like_cluster
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.search import SearchEngine, SearchSpace

from _util import write_report

PES = 64
REPEATS = 5

#: The disabled-observability overhead budget (fraction of search wall).
MAX_DISABLED_OVERHEAD = 0.02


def _make_oracle():
    model = build_model("resnet50", None)
    cluster = abci_like_cluster(PES)
    profile = profile_model(model, samples_per_pe=32)
    return ParaDL(model, cluster, profile)


def _space():
    return SearchSpace(
        pe_budgets=tuple(power_of_two_budgets(PES, start=4)),
        samples_per_pe=(16, 32),
        segments=(2, 4, 8),
    )


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, out = elapsed, result
    return out, best


def test_bench_obs_overhead():
    oracle = _make_oracle()
    space = _space()
    candidates = space.count()

    # Disabled observability: the default engine (shared null tracer).
    plain, plain_s = _best_of(
        lambda: SearchEngine(oracle, IMAGENET, workers=1).search(space))

    # Fully enabled: live tracer + metrics registry.
    def traced():
        return SearchEngine(
            oracle, IMAGENET, workers=1, tracer=Tracer(),
            metrics=MetricsRegistry()).search(space)

    enabled, enabled_s = _best_of(traced)

    # Same answer either way — observability must never change results.
    assert plain.best.describe() == enabled.best.describe()
    assert plain.stats == enabled.stats

    # Direct cost of the disabled path, per instrumented site: one
    # enabled-check + one null span per chunk.  Measure it raw.
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        if NULL_TRACER.enabled:  # pragma: no cover - never taken
            pass
        with NULL_TRACER.span("chunk"):
            pass
    null_site_s = (time.perf_counter() - t0) / n

    # The engine touches the tracer once per chunk (64 candidates), so
    # per-candidate disabled overhead is the site cost / chunk size.
    per_candidate_plain = plain_s / candidates
    disabled_overhead = (null_site_s / 64) / per_candidate_plain
    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-observability overhead {disabled_overhead:.4%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} of per-candidate search time")

    enabled_overhead = max(0.0, enabled_s / plain_s - 1.0)
    lines = [
        "observability overhead (cache-less search, best of "
        f"{REPEATS}):",
        f"  candidates            {candidates}",
        f"  disabled (default)    {plain_s * 1e3:8.2f} ms "
        f"({candidates / plain_s:,.0f} cand/s)",
        f"  enabled (trace+metrics){enabled_s * 1e3:7.2f} ms "
        f"({candidates / enabled_s:,.0f} cand/s)",
        f"  enabled overhead      {enabled_overhead:.2%}",
        f"  null-site cost        {null_site_s * 1e9:.0f} ns/site "
        f"-> {disabled_overhead:.4%} of per-candidate time "
        f"(budget {MAX_DISABLED_OVERHEAD:.0%})",
    ]
    write_report(
        "obs_overhead",
        lines,
        metrics={
            "candidates": candidates,
            "disabled_ms": plain_s * 1e3,
            "enabled_ms": enabled_s * 1e3,
            "disabled_candidates_per_s": candidates / plain_s,
            "enabled_candidates_per_s": candidates / enabled_s,
            "disabled_overhead_fraction": disabled_overhead,
            "enabled_overhead_fraction": enabled_overhead,
            "null_site_ns": null_site_s * 1e9,
        },
        higher_is_better=(
            "disabled_candidates_per_s", "enabled_candidates_per_s"),
    )
