"""Figure 8: filter-parallel computation breakdown for ResNet-50.

Two framework effects the oracle's ideal ``FW_l / p`` misses (Section
5.3.3): convolution kernels lose occupancy as their filter count shrinks
("the convolution layer does not always scale as expected"), and the
tensor split/concat around each layer-wise collective is non-trivial.
"""

from repro.harness import run_fig8
from repro.harness.reporting import format_table, pct

from _util import write_report


def test_bench_fig8(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig8(ps=(1, 4, 16, 64)),
        rounds=1, iterations=1,
    )
    effs = {r.p: r.scaling_efficiency for r in rows}
    # Scaling efficiency decays monotonically with p.
    assert effs[1] == 1.0
    assert effs[64] < effs[16] < effs[4] < 1.0
    # Simulated conv time is always above the ideal 1/p time.
    for r in rows:
        if r.p > 1:
            assert r.simulated_conv_s > r.ideal_conv_s
            assert r.split_concat_s > 0

    table = format_table(
        ["p", "ideal conv (ms)", "actual conv (ms)", "split/concat (ms)",
         "scaling eff."],
        [[r.p, f"{r.ideal_conv_s * 1e3:.2f}",
          f"{r.simulated_conv_s * 1e3:.2f}",
          f"{r.split_concat_s * 1e3:.2f}", pct(r.scaling_efficiency)]
         for r in rows],
    )
    write_report("fig8", [
        "Figure 8 — filter-parallel compute scaling, ResNet-50 (B=32)",
        table,
        "(paper: conv does not scale as expected; split/concat overhead "
        "is non-trivial)",
    ])
