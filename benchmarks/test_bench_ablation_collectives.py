"""Ablation: ring vs tree collective algorithms (paper footnote 4).

The paper's communication model defaults to ring collectives (the NCCL
large-message path) and notes the pipelined-tree alternative for small
messages.  This ablation maps the crossover: at which message size / PE
count does each algorithm win, and how much would the data-parallel
gradient exchange change if the wrong algorithm were forced.
"""

import numpy as np

from repro.collectives import (
    allreduce_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from repro.harness.reporting import format_table
from repro.network.topology import abci_like_cluster

from _util import write_report


def _sweep():
    cluster = abci_like_cluster(1024)
    rows = []
    for p in (8, 64, 512):
        params = cluster.hockney(p)
        for nbytes in (16e3, 1e6, 100e6):
            ring = ring_allreduce_time(p, nbytes, params)
            tree = tree_allreduce_time(p, nbytes, params)
            auto = allreduce_time(p, nbytes, params)
            rows.append((p, nbytes, ring, tree, auto))
    return rows


def test_bench_ablation_collectives(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # Tree wins for small messages at large p; ring wins for large messages.
    small_large_p = next(r for r in rows if r[0] == 512 and r[1] == 16e3)
    assert small_large_p[3] < small_large_p[2]  # tree < ring
    big = next(r for r in rows if r[0] == 512 and r[1] == 100e6)
    assert big[2] < big[3]                      # ring < tree
    # The NCCL-style size-threshold selection never loses to the paper's
    # default (pure ring), and picks the true optimum below the threshold.
    for _, nbytes, ring, tree, auto in rows:
        assert auto <= ring * 1.001
        if nbytes < 512 * 1024:
            assert auto <= min(ring, tree) * 1.001

    table = format_table(
        ["p", "message", "ring (ms)", "tree (ms)", "selected (ms)"],
        [[p, f"{int(m):>11,d} B", f"{r * 1e3:9.3f}", f"{t * 1e3:9.3f}",
          f"{a * 1e3:9.3f}"] for p, m, r, t, a in rows],
    )
    write_report("ablation_collectives", [
        "Ablation — ring vs pipelined-tree Allreduce (footnote 4)",
        table,
    ])
