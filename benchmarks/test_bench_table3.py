"""Table 3: the analytical model summary per strategy.

Renders the comp/comm/memory columns for ResNet-50 at p=16 and asserts the
structural relations the table encodes: the serial baseline has zero
communication, model-parallel strategies divide weights but replicate
activations, the PE ceilings match the model's minima, and filter ==
channel in every total.
"""

import pytest

from repro.harness import run_table3
from repro.harness.reporting import format_table

from _util import write_report


def test_bench_table3(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table3(model_name="resnet50", p=16, batch=512),
        rounds=1, iterations=1,
    )
    by = {r["strategy"]: r for r in rows if "error" not in r}

    assert by["serial"]["comm_s"] == 0.0
    # Compute divided by p for every parallel strategy except pipeline.
    for sid in ("d", "s", "f", "c", "df", "ds"):
        assert by[sid]["comp_s"] < by["serial"]["comp_s"]
    # Filter == channel per the paper's formulas.
    assert by["f"]["comm_s"] == pytest.approx(by["c"]["comm_s"])
    assert by["f"]["memory_GB"] == pytest.approx(by["c"]["memory_GB"])
    # PE ceilings (last column of Table 3).
    assert by["f"]["pe_limit"] == 64
    assert by["s"]["pe_limit"] == 49   # min 7x7 extent
    assert by["d"]["pe_limit"] == 512  # B
    # Memory: data parallelism divides activations; filter replicates them.
    assert by["d"]["memory_GB"] < by["f"]["memory_GB"]

    table = format_table(
        ["strategy", "p", "comp/iter (ms)", "comm/iter (ms)", "mem (GB)",
         "PE limit"],
        [[r["strategy"], r.get("p", "-"),
          f"{r['comp_s'] * 1e3:.1f}" if "comp_s" in r else "-",
          f"{r['comm_s'] * 1e3:.1f}" if "comm_s" in r else "-",
          f"{r['memory_GB']:.1f}" if "memory_GB" in r else "-",
          r.get("pe_limit", r.get("error", "-"))] for r in rows],
    )
    write_report("table3", [
        "Table 3 — analytical model summary (ResNet-50, p=16, B=512)",
        table,
    ])
