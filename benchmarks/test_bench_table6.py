"""Table 6: the limitation/bottleneck detection matrix.

Runs the detector over a representative configuration per strategy and
asserts the paper's attribution: gradient exchange limits data/spatial and
the hybrids, layer-wise communication limits filter/channel, P2P transport
bottlenecks spatial/pipeline, and computation redundancy hits
filter/channel.
"""

from repro.harness import run_table6
from repro.harness.reporting import format_table

from _util import write_report


def test_bench_table6(benchmark):
    findings = benchmark.pedantic(
        lambda: run_table6(quick=False),
        rounds=1, iterations=1,
    )
    names = lambda sid: {f.name for f in findings[sid]}

    assert "Gradient-exchange" in names("d")
    assert "Layer-wise comm." in names("f")
    assert "Layer-wise comm." in names("c")
    assert "P2P communication" in names("s")
    assert "Comp. Redundancy" in names("f")
    assert "Workload Balancing" in names("p")
    # CosmoFlow under ds at 512^3: heavy halo P2P.
    assert "P2P communication" in names("ds")

    all_names = sorted({f.name for fs in findings.values() for f in fs})
    sids = list(findings)
    rows = [
        [n] + ["x" if any(f.name == n for f in findings[s]) else "-"
               for s in sids]
        for n in all_names
    ]
    write_report("table6", [
        "Table 6 — detected limitations (L) and bottlenecks (B)",
        format_table(["finding"] + sids, rows),
    ])
