"""Extension bench: per-layer hybrid planning vs uniform strategies.

Section 3.5 notes hybrids "could be more complex when applying different
parallel strategies for different layers" (citing Jia et al. and
Krizhevsky's one-weird-trick).  The DP planner quantifies the win: for
FC-heavy models the mixed plan (data-parallel convolutions, model-parallel
FC) beats every uniform strategy.
"""

from repro.core.calibration import profile_model
from repro.core.layerwise import LayerwisePlanner
from repro.harness.reporting import format_table
from repro.models import alexnet, resnet50, vgg16
from repro.network.topology import abci_like_cluster

from _util import write_report


def _sweep():
    cluster = abci_like_cluster(16)
    rows = []
    for model in (alexnet(), vgg16(), resnet50()):
        profile = profile_model(model, samples_per_pe=8)
        planner = LayerwisePlanner(model, cluster, profile, p=16)
        plan = planner.plan(batch=128)
        uniform_d = planner.uniform_plan("data", batch=128)
        rows.append((model.name, plan, uniform_d))
    return rows


def test_bench_layerwise_planning(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    for name, plan, uniform in rows:
        speedup = uniform.per_iteration.total / plan.per_iteration.total
        # The DP can never lose to a feasible uniform plan.
        assert plan.per_iteration.total <= uniform.per_iteration.total + 1e-12
        table.append([
            name,
            f"{uniform.per_iteration.total * 1e3:.1f}",
            f"{plan.per_iteration.total * 1e3:.1f}",
            f"{speedup:.2f}x",
            str(dict(sorted(plan.mode_counts.items()))),
        ])
    # FC-heavy AlexNet gains the most (the one-weird-trick effect).
    alex = next(r for r in rows if r[0] == "alexnet")
    resnet = next(r for r in rows if r[0] == "resnet50")
    gain = lambda r: r[2].per_iteration.total / r[1].per_iteration.total
    assert gain(alex) > gain(resnet)
    assert gain(alex) > 1.5

    write_report("layerwise", [
        "Extension — per-layer hybrid planning (p=16, B=128)",
        format_table(
            ["model", "uniform data (ms)", "per-layer plan (ms)", "speedup",
             "mode mix"],
            table,
        ),
        "(Section 3.5 / Krizhevsky 2014: data-parallel convs + "
        "model-parallel FC)",
    ])
