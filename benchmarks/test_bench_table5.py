"""Table 5: models and datasets used in the experiments."""

import pytest

from repro.harness import run_table5
from repro.harness.reporting import format_table

from _util import write_report


def test_bench_table5(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    by = {r["model"]: r for r in rows}

    # Paper's Table 5: ~25M / ~58M / (canonical 138M) / ~2M parameters.
    assert by["resnet50"]["parameters_M"] == pytest.approx(25.56, abs=0.1)
    assert by["resnet152"]["parameters_M"] == pytest.approx(60.19, abs=0.1)
    assert by["vgg16"]["parameters_M"] == pytest.approx(138.36, abs=0.5)
    assert by["cosmoflow"]["parameters_M"] < 2.5
    assert by["resnet50"]["num_samples"] == 1_281_167
    assert by["cosmoflow"]["num_samples"] == 1584

    table = format_table(
        ["model", "dataset", "#samples", "sample", "params (M)",
         "weighted layers"],
        [[r["model"], r["dataset"], r["num_samples"], r["sample_shape"],
          f"{r['parameters_M']:.2f}", r["weighted_layers"]] for r in rows],
    )
    write_report("table5", [
        "Table 5 — models and datasets",
        table,
        "(paper quotes ~25M / ~58M / ~169M / ~2M; VGG16's canonical count "
        "is 138M — see DESIGN.md)",
    ])
