"""Resilience overhead: disarmed fault sites must stay within 0.1%.

The fault-injection registry's acceptance claim is that *not* injecting
faults is free: every wired site calls :func:`repro.faults.fire`, which
with no plan armed is one module-global read and a ``None`` check.
This benchmark pins that cost three ways:

* the raw disarmed ``fire()`` call, in nanoseconds;
* the same call with a plan armed whose rules match a *different* site
  (the armed-but-miss path — what production pays during a targeted
  chaos campaign);
* the disarmed site cost as a fraction of one candidate's projection
  time in a real search, asserted ≤ 0.1%, accounted the way the sites
  are actually wired: at most one visit per 64-candidate chunk (dist
  worker chunks), per request (serve), per save (cache), or per model
  (sweep) — never per candidate.

It also measures the retry path: the deterministic seeded backoff
schedule a :class:`repro.faults.RetryPolicy` produces, and the
bookkeeping overhead of a ``call()`` that retries twice (virtual sleep,
so only the policy's own arithmetic is on the clock).

Emits ``BENCH_resilience.json`` for the warn-only regression check.
"""

import time

from repro.core.calibration import profile_model
from repro.core.math_utils import power_of_two_budgets
from repro.core.oracle import ParaDL
from repro.data.datasets import IMAGENET
from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy, armed, fire
from repro.models import build_model
from repro.network.topology import abci_like_cluster
from repro.search import SearchEngine, SearchSpace

from _util import write_report

PES = 64
REPEATS = 3

#: Disarmed fault-site budget (fraction of per-candidate search time).
MAX_DISARMED_OVERHEAD = 0.001


def _per_candidate_search_s():
    model = build_model("resnet50", None)
    oracle = ParaDL(model, abci_like_cluster(PES),
                    profile_model(model, samples_per_pe=32))
    space = SearchSpace(
        pe_budgets=tuple(power_of_two_budgets(PES, start=4)),
        samples_per_pe=(16, 32),
        segments=(2, 4, 8),
    )
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        SearchEngine(oracle, IMAGENET, workers=1).search(space)
        best = min(best, time.perf_counter() - t0)
    return best / space.count(), space.count()


def _site_cost_s(n=200_000):
    t0 = time.perf_counter()
    for _ in range(n):
        if fire("bench.site") is not None:  # pragma: no cover
            pass
    return (time.perf_counter() - t0) / n


def test_bench_resilience():
    per_candidate_s, candidates = _per_candidate_search_s()

    disarmed_s = _site_cost_s()

    # Armed, but every rule targets a different site: the miss path.
    plan = FaultPlan(0, [
        {"site": "dist.frame.send", "kind": "drop", "probability": 0.5},
        {"site": "serve.handler", "kind": "error", "probability": 0.5},
    ])
    with armed(plan):
        armed_miss_s = _site_cost_s()

    # Sites fire per chunk (64 candidates), per request, per save, or
    # per model — amortize the site cost the way the code pays it.
    disarmed_overhead = (disarmed_s / 64) / per_candidate_s
    assert disarmed_overhead <= MAX_DISARMED_OVERHEAD, (
        f"disarmed fault-site overhead {disarmed_overhead:.4%} exceeds "
        f"{MAX_DISARMED_OVERHEAD:.1%} of per-candidate search time")

    # Retry path: the schedule is deterministic and the bookkeeping is
    # cheap (virtual sleep isolates the policy's own arithmetic).
    policy = RetryPolicy(5, base_delay_s=0.05, max_delay_s=2.0,
                         multiplier=2.0, jitter=0.1, seed="bench",
                         sleep=lambda s: None)
    delays = policy.delays()
    assert delays == RetryPolicy(
        5, base_delay_s=0.05, max_delay_s=2.0, multiplier=2.0,
        jitter=0.1, seed="bench", sleep=lambda s: None).delays()
    total_backoff_s = sum(delays)

    calls = 2_000
    t0 = time.perf_counter()
    for _ in range(calls):
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise ConnectionError("transient")
            return True

        policy.call(flaky, retry_on=(ConnectionError,))
    retry_call_us = (time.perf_counter() - t0) / calls * 1e6

    breaker = CircuitBreaker(3)
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        breaker.allow()
    breaker_allow_ns = (time.perf_counter() - t0) / n * 1e9

    lines = [
        "resilience overhead (fault sites + retry/breaker machinery):",
        f"  per-candidate search  {per_candidate_s * 1e6:8.2f} us "
        f"({candidates} candidates, best of {REPEATS})",
        f"  disarmed fire()       {disarmed_s * 1e9:8.1f} ns/site "
        f"-> {disarmed_overhead:.4%} of per-candidate time at one "
        f"site per 64-candidate chunk (budget "
        f"{MAX_DISARMED_OVERHEAD:.1%})",
        f"  armed-miss fire()     {armed_miss_s * 1e9:8.1f} ns/site",
        f"  retry schedule (5)    {total_backoff_s:8.3f} s total backoff "
        f"({', '.join(f'{d:.3f}' for d in delays)})",
        f"  retried call()        {retry_call_us:8.2f} us "
        f"(2 retries, virtual sleep)",
        f"  breaker allow()       {breaker_allow_ns:8.1f} ns",
    ]
    write_report(
        "resilience",
        lines,
        metrics={
            "candidates": candidates,
            "per_candidate_us": per_candidate_s * 1e6,
            "disarmed_fire_ns": disarmed_s * 1e9,
            "armed_miss_fire_ns": armed_miss_s * 1e9,
            "disarmed_overhead_fraction": disarmed_overhead,
            "retry_total_backoff_s": total_backoff_s,
            "retry_call_us": retry_call_us,
            "breaker_allow_ns": breaker_allow_ns,
        },
    )
