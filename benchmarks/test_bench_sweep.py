"""Multi-model sweep: process-pool scaling and cross-model cache reuse.

Measures the acceptance claims of the sweep orchestrator: a zoo sweep
through ``SweepRunner`` produces per-model frontiers + a cross-model
summary, a warm re-run against the shared cache directory answers every
candidate from the per-model memos (zero projections), and the process
backend returns results identical to the thread backend.
"""

import os
import time

from repro.data.datasets import IMAGENET
from repro.search import SweepRunner

from _util import write_report

MODELS = ("resnet50", "vgg16", "alexnet")
PES = 64


def _runner(cache_dir, executor="process", workers=None):
    return SweepRunner(
        MODELS,
        IMAGENET,
        pes=PES,
        samples_per_pe=32,
        segments=(2, 4),
        executor=executor,
        workers=workers,
        cache_dir=str(cache_dir),
    )


def test_bench_sweep_cold_warm_and_report(tmp_path):
    cache_dir = tmp_path / "zoo-cache"
    report_dir = tmp_path / "zoo-report"

    t0 = time.perf_counter()
    cold = _runner(cache_dir).run()
    cold_s = time.perf_counter() - t0

    # Every model produced a feasible best and its own cache file.
    assert all(r.best is not None for r in cold.results)
    cache_files = sorted(os.listdir(cache_dir))
    assert len(cache_files) == len(MODELS)

    t0 = time.perf_counter()
    warm = _runner(cache_dir).run()
    warm_s = time.perf_counter() - t0

    # Warm sweep: nothing is re-projected, results are identical.
    for model_result in warm.results:
        assert model_result.report.stats["cache_misses"] == 0
    for a, b in zip(cold.results, warm.results):
        assert a.best.candidate == b.best.candidate
        assert [e.projection for e in a.report.frontier] == \
               [e.projection for e in b.report.frontier]

    artifacts = warm.write_report(str(report_dir))
    assert os.path.exists(artifacts["summary"])
    for model in MODELS:
        assert os.path.exists(artifacts[f"frontier_{model}"])

    n = sum(r.report.stats["candidates"] for r in cold.results)
    write_report("sweep", [
        f"Multi-model sweep — {', '.join(MODELS)} at p={PES} "
        f"({n} candidates total)",
        f"cold (process pool): {cold_s * 1e3:8.1f} ms   "
        f"{n / cold_s:8.0f} candidates/s",
        f"warm (shared cache): {warm_s * 1e3:8.1f} ms   "
        f"{n / warm_s:8.0f} candidates/s",
        f"speedup: {cold_s / warm_s:.1f}x; "
        f"cache files: {len(cache_files)}",
    ] + [
        f"{row['model']:10s} best={row['best']:28s} "
        f"epoch={row['epoch_s']:8.1f}s frontier={row['frontier']}"
        for row in cold.summary_rows()
    ], metrics={
        "models": len(MODELS),
        "candidates": n,
        "cold_wall_ms": cold_s * 1e3,
        "warm_wall_ms": warm_s * 1e3,
        "candidates_per_s_cold": n / cold_s,
        "candidates_per_s_warm": n / warm_s,
        "warm_speedup": cold_s / warm_s,
    }, higher_is_better=(
        "candidates_per_s_cold", "candidates_per_s_warm",
    ))


def test_bench_sweep_executor_parity(tmp_path):
    """Thread and process backends agree model-for-model."""
    thread = _runner(tmp_path / "t", executor="thread").run()
    process = _runner(tmp_path / "p", executor="process").run()
    for a, b in zip(thread.results, process.results):
        assert a.model == b.model
        assert a.best.candidate == b.best.candidate
        assert a.report.stats["candidates"] == b.report.stats["candidates"]
        assert [e.candidate.key for e in a.report.frontier] == \
               [e.candidate.key for e in b.report.frontier]
