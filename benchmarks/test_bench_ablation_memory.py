"""Ablation: the memory-reuse factor gamma (Section 4.2).

The paper reduces the naive layer-aggregate memory bound by a reuse factor
gamma derived from framework memory-profiling studies.  This ablation shows
how feasibility verdicts flip with gamma: at gamma = 1 (no reuse) most
configurations look OOM; at the calibrated 0.5 the paper's actual
feasibility pattern emerges.
"""

from repro.core.analytical import AnalyticalModel
from repro.core.calibration import profile_model
from repro.core.strategies import DataParallel, FilterParallel
from repro.data import IMAGENET
from repro.harness.reporting import format_table
from repro.models import resnet50
from repro.network.topology import abci_like_cluster

from _util import write_report


def _sweep():
    model = resnet50()
    cluster = abci_like_cluster(16)
    profile = profile_model(model, samples_per_pe=32)
    rows = []
    for gamma in (0.25, 0.5, 0.75, 1.0):
        am = AnalyticalModel(model, cluster, profile, gamma=gamma)
        d = am.project(DataParallel(16), 512, IMAGENET.num_samples)
        f = am.project(FilterParallel(16), 64, IMAGENET.num_samples)
        rows.append((gamma, d.memory_bytes / 1e9, d.feasible_memory,
                     f.memory_bytes / 1e9, f.feasible_memory))
    return rows


def test_bench_ablation_memory(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # Memory is exactly linear in gamma.
    g25 = rows[0]
    g100 = rows[-1]
    assert g100[1] / g25[1] == 4.0
    # Feasibility flips across the sweep for the activation-replicating
    # filter strategy at B=64.
    feas = [r[4] for r in rows]
    assert feas[0] and not feas[-1]

    table = format_table(
        ["gamma", "data mem (GB)", "data fits", "filter mem (GB)",
         "filter fits"],
        [[g, f"{dm:.1f}", "yes" if df_ else "NO", f"{fm:.1f}",
          "yes" if ff else "NO"] for g, dm, df_, fm, ff in rows],
    )
    write_report("ablation_memory", [
        "Ablation — memory-reuse factor gamma (ResNet-50, p=16)",
        table,
        "(the paper derives gamma from layer-level memory profiling "
        "studies; 0.5 reproduces its feasibility pattern)",
    ])
