#!/usr/bin/env python
"""Plan a whole model zoo at once: the multi-model sweep orchestrator.

Where ``autotune_strategy.py`` searches the configuration space for one
CNN, this driver answers the production question — "which strategy for
*each* model in my zoo on this cluster?" — in a single call.  The
:class:`~repro.search.sweep.SweepRunner` fans every model's search out
over a process pool (projections are pure-Python CPU work, so the pool
scales across cores where threads cannot), persists one fingerprinted
projection-cache file per model in a shared directory, and consolidates
the per-model Pareto frontiers into CSVs plus a cross-model summary.

Run twice to see the cross-model cache at work:

    python examples/model_zoo_sweep.py
    python examples/model_zoo_sweep.py   # warm: zero projections

Equivalent CLI:

    python -m repro sweep --models resnet50,resnet152,vgg16 -p 64 \\
        --executor process --cache-dir examples/zoo_cache \\
        --report examples/zoo_report
"""

import os
import time

from repro.data import IMAGENET
from repro.harness import format_table
from repro.search import SweepRunner

HERE = os.path.dirname(__file__)
CACHE_DIR = os.path.join(HERE, "zoo_cache")
REPORT_DIR = os.path.join(HERE, "zoo_report")

MODELS = ("resnet50", "resnet152", "vgg16", "alexnet")
PES = 64


def main() -> None:
    runner = SweepRunner(
        MODELS,
        IMAGENET,
        pes=PES,
        samples_per_pe=32,
        segments=(2, 4, 8),
        comm_policies=("paper", "auto"),   # comm policy as a sweep dimension
        executor="process",
        cache_dir=CACHE_DIR,
    )

    def on_model(name, result) -> None:
        st = result.report.stats
        print(f"  {name}: {st['candidates']} candidates in "
              f"{result.seconds:.2f}s ({st['cache_hits']} cache hits, "
              f"{st['pruned']} pruned)")

    t0 = time.perf_counter()
    report = runner.run(on_model=on_model)
    elapsed = time.perf_counter() - t0

    print(f"\nswept {len(MODELS)} models x {runner.space.count()} "
          f"candidates each in {elapsed:.2f}s on {runner.cluster}\n")
    rows = [
        [row["model"], row["best"], f"{row['epoch_s']:.1f} s",
         f"{row['memory_gb']:.1f} GB", row["comm_policy"],
         row["frontier"], row["cache_hits"]]
        for row in report.summary_rows()
    ]
    print(format_table(
        ["model", "best config", "epoch", "memory/PE", "comm", "frontier",
         "cache hits"], rows))

    artifacts = report.write_report(REPORT_DIR, plot=True)
    print()
    for name, path in sorted(artifacts.items()):
        print(f"wrote {name}: {os.path.relpath(path, HERE)}")
    if "plot" not in artifacts:
        print("(frontier plot skipped: matplotlib not installed)")


if __name__ == "__main__":
    main()
