#!/usr/bin/env python
"""Quickstart: project every parallel strategy for ResNet-50 on 64 GPUs.

This walks the core ParaDL workflow of the paper (Figure 2):

1. describe what you know beforehand — model, dataset, cluster;
2. profile per-layer compute times (here: the simulated V100);
3. ask the oracle for per-phase time/memory projections per strategy;
4. ask it to *rank* the strategies for your PE budget.

Run:  python examples/quickstart.py
"""

from repro import ParaDL, abci_like_cluster, models, profile_model
from repro.data import IMAGENET
from repro.harness import format_breakdown, format_table, pct

NUM_GPUS = 64
SAMPLES_PER_GPU = 32


def main() -> None:
    model = models.resnet50()
    cluster = abci_like_cluster(NUM_GPUS)
    print(f"Model:   {model}")
    print(f"Cluster: {cluster}")

    # Step 1: empirical parametrization — profile FW/BW/WU per layer.
    profile = profile_model(model, samples_per_pe=SAMPLES_PER_GPU)
    print(f"Profiled {len(profile)} layers "
          f"(sum FW = {profile.total_fw() * 1e3:.3f} ms/sample)")

    # Step 2: the oracle.
    oracle = ParaDL(model, cluster, profile)

    # Step 3: project each strategy at this scale.
    rows = []
    batch_weak = SAMPLES_PER_GPU * NUM_GPUS
    for sid, p, batch in [
        ("d", NUM_GPUS, batch_weak),
        ("s", 16, 64),
        ("p", 4, 64),
        ("f", 16, 32),
        ("c", 16, 32),
        ("df", NUM_GPUS, 8 * NUM_GPUS),
        ("ds", NUM_GPUS, batch_weak),
    ]:
        proj = oracle.project_id(sid, p=p, batch=batch, dataset=IMAGENET)
        it = proj.per_iteration
        rows.append([
            sid, p, batch,
            f"{it.computation * 1e3:.1f} ms",
            f"{it.communication * 1e3:.1f} ms",
            f"{it.total * 1e3:.1f} ms",
            f"{proj.memory_bytes / 1e9:.1f} GB",
            "yes" if proj.feasible_memory else "NO",
        ])
    print()
    print(format_table(
        ["strategy", "p", "B", "comp/iter", "comm/iter", "total/iter",
         "mem/PE", "fits?"],
        rows,
    ))

    # Step 4: breakdown of the winning configuration.
    best = oracle.project_id("d", p=NUM_GPUS, batch=batch_weak, dataset=IMAGENET)
    print()
    print("Data parallelism breakdown:")
    print(" ", format_breakdown(best.per_iteration))

    # Step 5: let the oracle rank strategies for the budget.
    print()
    print(f"Oracle suggestions for p = {NUM_GPUS}:")
    for s in oracle.suggest(NUM_GPUS, IMAGENET, samples_per_pe=SAMPLES_PER_GPU):
        if s.feasible:
            print(f"  #{s.rank} {s.strategy.describe():18s} "
                  f"epoch = {s.epoch_time:8.1f} s")
        else:
            who = s.strategy.describe() if s.strategy else "?"
            print(f"  --  {who:18s} infeasible: {s.reason}")


if __name__ == "__main__":
    main()
