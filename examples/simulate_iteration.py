#!/usr/bin/env python
"""Simulated "measured" runs: oracle vs discrete-event training simulator.

The paper compares ParaDL against empirical runs on a 1024-GPU V100
machine.  This reproduction compares it against a discrete-event simulator
(DESIGN.md documents the substitution): same compute profile, but link-level
collectives with contention, framework overheads and optional external
congestion.  This example reproduces one column of Figure 3 — ResNet-50
under data parallelism while scaling GPUs — and a congested variant
(Figure 6's effect).

Run:  python examples/simulate_iteration.py
"""

import numpy as np

from repro import ParaDL, abci_like_cluster, models, profile_model
from repro.core.strategies import DataParallel
from repro.data import IMAGENET
from repro.harness import format_table
from repro.network import CongestionModel
from repro.simulator import SimulationOptions, TrainingSimulator


def main() -> None:
    model = models.resnet50()
    rows = []
    for p in (16, 64, 256, 1024):
        cluster = abci_like_cluster(p)
        batch = 32 * p  # weak scaling: 32 samples/GPU
        profile = profile_model(model, samples_per_pe=32)
        oracle = ParaDL(model, cluster, profile)
        proj = oracle.project(DataParallel(p), batch, IMAGENET)
        sim = TrainingSimulator(model, cluster,
                                options=SimulationOptions(iterations=50))
        run = sim.run(DataParallel(p), batch, IMAGENET.num_samples)
        acc = proj.accuracy_per_iteration(run.mean_iteration)
        rows.append([
            p, batch,
            f"{proj.per_iteration.computation * 1e3:7.1f}",
            f"{proj.per_iteration.communication * 1e3:7.2f}",
            f"{run.breakdown.computation * 1e3:7.1f}",
            f"{run.breakdown.communication * 1e3:7.2f}",
            f"{acc * 100:.1f}%",
        ])
    print("ResNet-50 / data parallelism / weak scaling (ms per iteration):")
    print(format_table(
        ["p", "B", "oracle comp", "oracle comm", "meas comp", "meas comm",
         "accuracy"],
        rows,
    ))

    # Now the same 512-GPU run on a congested fabric (Figure 6).
    print()
    p = 512
    cluster = abci_like_cluster(p)
    profile = profile_model(model, samples_per_pe=32)
    oracle = ParaDL(model, cluster, profile)
    proj = oracle.project(DataParallel(p), 32 * p, IMAGENET)
    congested = TrainingSimulator(
        model, cluster,
        options=SimulationOptions(
            iterations=200,
            congestion=CongestionModel(outlier_rate=0.1, max_slowdown=4.0,
                                       seed=3),
        ),
    )
    run = congested.run(DataParallel(p), 32 * p, IMAGENET.num_samples)
    ge = run.comm_samples["comm_ge"]
    expected = proj.per_iteration.comm_ge
    print(f"512-GPU Allreduce under congestion "
          f"(expected {expected * 1e3:.2f} ms):")
    print(f"  median measured : {np.median(ge) * 1e3:7.2f} ms")
    print(f"  p99 measured    : {np.percentile(ge, 99) * 1e3:7.2f} ms")
    print(f"  worst slowdown  : {ge.max() / expected:7.2f}x "
          f"(the paper observed up to ~4x)")


if __name__ == "__main__":
    main()
