#!/usr/bin/env python
"""Empirical parametrization end-to-end (Section 4.4).

ParaDL is a *hybrid* analytical/empirical model: the collective-cost
formulas are analytic but their (alpha, beta) parameters are measured by
sweeping message sizes — the paper uses OSU micro-benchmarks / nccl-tests
and interpolates.  This example reproduces the procedure on the simulated
fabric:

1. run an Allreduce message-size sweep at intra-node and inter-node scales;
2. least-squares fit (alpha, beta) per scale (they differ — the paper's
   "hierarchical computing architecture" point);
3. compare fitted parameters against the fabric's ground truth;
4. use the calibrated oracle to project training time and compare against a
   simulated measured run.

Run:  python examples/calibrate_and_project.py
"""

import numpy as np

from repro import ParaDL, abci_like_cluster, models, profile_model
from repro.core.calibration import calibrate_cluster, fit_hockney, measure_allreduce_curve
from repro.core.strategies import DataParallel
from repro.data import IMAGENET
from repro.simulator import SimulationOptions, TrainingSimulator


def main() -> None:
    cluster = abci_like_cluster(64)

    print("Allreduce calibration sweeps (ring algorithm):")
    for label, p in (("intra-node", 4), ("inter-node", 32)):
        result = calibrate_cluster(cluster, p)
        truth = cluster.hockney(p)
        print(f"  {label:11s} p={p:3d}  "
              f"fitted alpha={result.params.alpha * 1e6:7.2f} us "
              f"(truth {truth.alpha * 1e6:7.2f} us)   "
              f"fitted bw={result.params.bandwidth_Bps / 1e9:6.2f} GB/s "
              f"(truth {truth.bandwidth_Bps / 1e9:6.2f} GB/s)   "
              f"rms={result.residual_rms:.2e}")

    # The fit is robust to measurement noise too.
    sizes, times = measure_allreduce_curve(cluster, 32,
                                           [2.0 ** e for e in range(14, 28)])
    rng = np.random.default_rng(0)
    noisy = times * rng.normal(1.0, 0.03, size=times.shape)
    fit = fit_hockney(sizes, noisy, p=32)
    print(f"  with 3% measurement noise: bw="
          f"{fit.params.bandwidth_Bps / 1e9:.2f} GB/s")

    # Project with the calibrated oracle and compare to a measured run.
    model = models.resnet50()
    profile = profile_model(model, samples_per_pe=32)
    oracle = ParaDL(model, cluster, profile)
    strategy = DataParallel(64)
    batch = 32 * 64
    proj = oracle.project(strategy, batch, IMAGENET)
    sim = TrainingSimulator(model, cluster,
                            options=SimulationOptions(iterations=50))
    run = sim.run(strategy, batch, IMAGENET.num_samples)
    acc = proj.accuracy_per_iteration(run.mean_iteration)
    print()
    print(f"ResNet-50, data parallelism, 64 GPUs, B = {batch}:")
    print(f"  oracle   : {proj.per_iteration.total * 1e3:8.2f} ms/iter")
    print(f"  measured : {run.mean_iteration * 1e3:8.2f} ms/iter")
    print(f"  accuracy : {acc * 100:.2f}%  "
          f"(the paper reports up to 97.57% for data parallelism)")


if __name__ == "__main__":
    main()
