#!/usr/bin/env python
"""Export a simulated pipeline schedule as a Chrome/Perfetto trace.

``pipeline_gantt.py`` renders the GPipe fill/drain bubble as a text
chart; this example writes the same :class:`~repro.simulator.trace.
Timeline` — one for a balanced pipeline and one with an artificially
slow stage — to a single Chrome trace-event JSON file.  Load it at
https://ui.perfetto.dev (or chrome://tracing) to scrub through the
schedule interactively: each pipeline stage is a thread lane, each
micro-batch a block, and the bubble is the visible idle gap.

Run:  python examples/pipeline_trace_export.py
      # then open pipeline_trace.json in Perfetto
"""

import os

from repro import models, profile_model
from repro.obs.export import write_chrome_trace
from repro.simulator import gpipe_timeline

BATCH = 64
SEGMENTS = 8
OUT = os.path.join(os.path.dirname(__file__), "pipeline_trace.json")


def stage_times(model, segments, slow_stage=None):
    profile = profile_model(model, samples_per_pe=max(1, BATCH // segments))
    groups = model.partition_depth(4)
    micro = BATCH / segments
    fw = [micro * profile.group_fw(g) for g in groups]
    bw = [micro * profile.group_bw(g) for g in groups]
    if slow_stage is not None:
        fw[slow_stage] *= 3
    return fw, bw


def main() -> None:
    model = models.resnet50()
    timelines = {}
    for title, slow in (("balanced pipeline", None),
                        ("stage2 3x slower", 2)):
        fw, bw = stage_times(model, SEGMENTS, slow_stage=slow)
        tl = gpipe_timeline(fw, bw, [0.0] * 3, SEGMENTS)
        timelines[title] = tl
        print(f"{title}: makespan {tl.makespan * 1e3:7.2f} ms, "
              f"bubble {tl.bubble_fraction():.0%}")

    write_chrome_trace(OUT, timelines=timelines)
    print(f"wrote {OUT} — load it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
