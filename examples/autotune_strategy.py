#!/usr/bin/env python
"""Automated strategy autotuning: search instead of sweeping by hand.

Where ``run_paper_grid.py`` enumerates the paper's fixed strategy list at
fixed PE counts, this driver hands the whole planning problem to
``repro.search``: every strategy, every hybrid (p1, p2) factorization,
a ladder of PE budgets, and pipeline micro-batch counts — pruned before
projection, memoized on disk, and ranked on a Pareto frontier of epoch
time vs. per-PE memory vs. PE count.

Run twice to see the projection cache at work:

    python examples/autotune_strategy.py
    python examples/autotune_strategy.py   # near-instant, all cache hits
"""

import os
import time

from repro import ParaDL, abci_like_cluster, profile_model
from repro.core.math_utils import power_of_two_budgets
from repro.data import IMAGENET
from repro.harness import format_table, pct
from repro.models import build_model
from repro.search import SearchEngine, SearchSpace

CACHE_PATH = os.path.join(
    os.path.dirname(__file__), "autotune_cache.json")

MODEL = "resnet50"
MAX_PES = 256


def main() -> None:
    model = build_model(MODEL, None)
    cluster = abci_like_cluster(MAX_PES)
    profile = profile_model(model, samples_per_pe=32)
    oracle = ParaDL(model, cluster, profile)

    space = SearchSpace(
        pe_budgets=tuple(power_of_two_budgets(MAX_PES, start=16)),
        samples_per_pe=(16, 32),
        segments=(2, 4, 8),
    )
    engine = SearchEngine(oracle, IMAGENET, cache=CACHE_PATH)

    t0 = time.perf_counter()
    report = engine.search(space)
    elapsed = time.perf_counter() - t0

    st = report.stats
    print(f"{MODEL} on {cluster}")
    print(f"searched {st['candidates']} candidates in {elapsed:.2f}s "
          f"({st['pruned']} pruned, {st['infeasible']} infeasible, "
          f"{st['cache_hits']} cache hits / {st['cache_misses']} misses)")
    print()

    print("Pareto frontier (epoch time / iteration time / memory / PEs):")
    rows = [
        [i + 1, e.describe(), f"{e.epoch_time:.1f} s",
         f"{e.iteration_time * 1e3:.1f} ms",
         f"{e.memory_gb:.1f} GB", e.candidate.p]
        for i, e in enumerate(report.frontier)
    ]
    print(format_table(
        ["#", "config", "epoch", "iteration", "memory", "p"], rows))
    print()

    best = report.best
    print(f"throughput pick : {best.describe()} "
          f"({best.epoch_time:.1f} s/epoch, {best.memory_gb:.1f} GB/PE)")

    # Re-scalarize the same frontier with memory and PE thrift weighted in
    # — no re-evaluation needed.
    from repro.search import scalarized_best

    thrifty = scalarized_best(
        report.frontier,
        weights={"epoch_time": 1.0, "memory": 0.5, "pes": 0.25},
    )
    print(f"thrifty pick    : {thrifty.describe()} "
          f"({thrifty.epoch_time:.1f} s/epoch, "
          f"{thrifty.memory_gb:.1f} GB/PE)")

    # Sanity: search must match or beat the fixed suggest ranking.
    sug = min(
        (s for s in oracle.suggest(MAX_PES, IMAGENET) if s.feasible),
        key=lambda s: s.epoch_time,
    )
    gain = 1.0 - best.epoch_time / sug.epoch_time
    print(f"vs suggest      : {sug.strategy.describe()} "
          f"{sug.epoch_time:.1f} s/epoch -> gain {pct(gain)}")
    print(f"cache           : {CACHE_PATH}")
    print()

    # Communication-policy ablation: open the collective-algorithm policy
    # as a search dimension.  `paper` keeps the seed's ring-everywhere
    # costs; `auto` picks the cheapest registered algorithm per call
    # (tree / recursive doubling / hierarchical where they win).  On the
    # command line this is:
    #
    #     python -m repro search --model resnet50 -p 256 \
    #         --comm-policy paper,auto
    #     python -m repro project --model resnet50 --strategy z -p 256 \
    #         --comm-policy auto --json   # shows the chosen algorithms
    comm_space = SearchSpace(
        pe_budgets=(MAX_PES,),
        samples_per_pe=(32,),
        comm_policies=("paper", "auto"),
    )
    comm_report = engine.search(comm_space)
    print("comm-policy ablation (same space, paper vs auto):")
    for policy in ("paper", "auto"):
        entries = [e for e in comm_report.feasible
                   if e.projection.comm_policy == policy]
        if not entries:
            print(f"  {policy:9s}: no feasible configuration")
            continue
        top = min(entries, key=lambda e: e.epoch_time)
        algos = ", ".join(f"{ph}={al}"
                          for ph, al in top.projection.comm_algorithms)
        print(f"  {policy:9s}: {top.describe()} "
              f"{top.epoch_time:.1f} s/epoch ({algos})")


if __name__ == "__main__":
    main()
