#!/usr/bin/env python
"""CosmoFlow capacity planning: when data parallelism is simply not an option.

Reproduces the reasoning of Sections 5.1/5.3.2 and Figure 5: for 3-D
scientific inputs (4 x 512^3 volumes) the activations of a single sample
exceed GPU memory under every strategy except spatial decomposition, and
the scalable configuration is the Data+Spatial hybrid — whose data-parallel
pool grows with the machine while each group keeps one sample split over a
node's 4 GPUs.

Run:  python examples/cosmoflow_planning.py
"""

from repro import ParaDL, abci_like_cluster, profile_model
from repro.core.strategies import (
    DataParallel,
    DataSpatialParallel,
    PipelineParallel,
    SpatialParallel,
)
from repro.data import COSMOFLOW_512
from repro.harness import format_table
from repro.models import cosmoflow
from repro.simulator import SimulationOptions, TrainingSimulator


def main() -> None:
    model = cosmoflow(COSMOFLOW_512.sample)
    cluster = abci_like_cluster(64)
    profile = profile_model(model, samples_per_pe=1)
    oracle = ParaDL(model, cluster, profile)

    # First conv layer activation alone (the paper: >10 GB at 4 x 512^3).
    conv1 = model["conv1"]
    act_GB = conv1.output.elements * 4 / 1e9
    print(f"conv1 activation for ONE sample: {act_GB:.1f} GB "
          f"(GPU capacity: {cluster.gpu_memory_bytes / 1e9:.0f} GB)")
    print()

    # Why most strategies cannot run this model.
    rows = []
    for label, strategy, batch in [
        ("data (p=4)", DataParallel(4), 4),
        ("pipeline (p=4)", PipelineParallel(4, segments=2), 4),
        ("spatial (p=4)", SpatialParallel((2, 2, 1)), 1),
        ("data+spatial (p=16)", DataSpatialParallel(4, (2, 2, 1)), 4),
        ("data+spatial (p=64)", DataSpatialParallel(16, (2, 2, 1)), 16),
    ]:
        proj = oracle.project(strategy, batch, COSMOFLOW_512)
        rows.append([
            label,
            f"{proj.memory_bytes / 1e9:.1f} GB",
            "yes" if proj.feasible_memory else "NO  <-- out of memory",
            f"{proj.per_iteration.total * 1e3:.0f} ms",
        ])
    print(format_table(["strategy", "mem/PE", "fits?", "iter time"], rows))

    # Figure-5-style scaling of the feasible hybrid.
    print()
    print("Data+Spatial weak scaling (one sample per 4-GPU group):")
    sim = TrainingSimulator(model, cluster,
                            options=SimulationOptions(iterations=10))
    base = sim.run(SpatialParallel((2, 2, 1)), 1, COSMOFLOW_512.num_samples)
    print(f"  p=   4 (pure spatial)  epoch = {base.epoch_time:8.1f} s  "
          f"(speedup 1.0x)")
    for p1 in (2, 4, 8, 16):
        run = sim.run(DataSpatialParallel(p1, (2, 2, 1)), p1,
                      COSMOFLOW_512.num_samples)
        print(f"  p={4 * p1:4d} (ds, {p1:2d} groups)  "
              f"epoch = {run.epoch_time:8.1f} s  "
              f"(speedup {base.epoch_time / run.epoch_time:.1f}x)")


if __name__ == "__main__":
    main()
