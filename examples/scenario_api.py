#!/usr/bin/env python
"""The declarative scenario API: one spec, every oracle verb.

Where the other examples assemble ``(model, cluster, profile, comm)`` by
hand, this driver writes the planning question down once — as a
:class:`repro.api.ScenarioSpec` — and lets a :class:`repro.api.Session`
lazily build and cache the world behind it.  The same document drives
the CLI (``python -m repro project --scenario …``), the harness
(``repro.harness.run_scenario``), and any future service backend.

    python examples/scenario_api.py
"""

import json
import os

from repro.api import Scenario, ScenarioValidationError, Session

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "scenarios")


def from_file() -> None:
    """Load a scenario document and ask several questions of one session."""
    spec = Scenario.from_file(
        os.path.join(SCENARIO_DIR, "project_resnet50.yaml"))
    print(f"scenario: {spec.describe()}")

    session = Session(spec)
    projection = session.project()           # the strategy the spec names
    print(f"  project: epoch={projection.projection.per_epoch.total:.1f}s "
          f"feasible={projection.projection.feasible_memory}")

    suggestion = session.suggest()           # same session: profile reused
    best = suggestion.feasible[0]
    print(f"  suggest: best={best.strategy.describe()} "
          f"epoch={best.epoch_time:.1f}s")


def programmatic() -> None:
    """Build a spec in code — plain dicts, validated eagerly."""
    spec = Scenario.from_dict({
        "name": "alexnet-search",
        "model": {"name": "alexnet"},
        "cluster": {"pes": 16},
        "training": {"samples_per_pe": 8},
        "search": {"strategies": ["d", "z", "df"], "segments": [4]},
    })
    result = Session(spec).search()
    print(f"scenario: {spec.describe()}")
    print(f"  search: best={result.report.best.describe()} "
          f"over {result.report.stats['candidates']} candidates")

    # Every result serializes with schema_version + a scenario echo, so
    # the answer always carries its question.
    blob = result.to_dict()
    print(f"  result envelope: kind={blob['kind']} "
          f"schema_version={blob['schema_version']} "
          f"scenario={blob['scenario']['name']}")


def validation() -> None:
    """Bad documents fail eagerly, naming the offending field."""
    try:
        Scenario.from_dict({"training": {"optimizer": "warp-drive"}})
    except ScenarioValidationError as exc:
        print(f"validation: field={exc.field!r} -> {exc}")


def round_trip() -> None:
    """Specs are lossless through dict and file serialization."""
    spec = Scenario.from_file(
        os.path.join(SCENARIO_DIR, "comm_policy_ablation.yaml"))
    assert Scenario.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
    print("round-trip: to_dict/from_dict lossless "
          f"({len(json.dumps(spec.to_dict()))} bytes)")


if __name__ == "__main__":
    from_file()
    programmatic()
    validation()
    round_trip()
