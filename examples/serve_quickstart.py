"""Quickstart: the planning oracle as an HTTP service.

Boots an in-process :class:`repro.serve.PlanningServer` on an
ephemeral port, then walks the wire contract with the stdlib client:
sync verbs, a batch of questions against one document, an async search
job, and the health/metrics probes.  Everything here works identically
against a long-lived ``repro serve`` process — swap ``server.url`` for
its address.

Run: ``PYTHONPATH=src python examples/serve_quickstart.py``
"""

from repro.serve import PlanningClient, PlanningServer, ServerError

SCENARIO = {
    "model": {"name": "resnet50"},
    "cluster": {"pes": 64},
    "training": {"samples_per_pe": 2},
}


def main() -> None:
    with PlanningServer(port=0) as server:
        print(f"server up on {server.url}\n")
        client = PlanningClient(server.url)

        # -- one projection: same envelope as `repro project --json`
        envelope = client.project(
            dict(SCENARIO, strategy={"id": "d"}))
        print(f"project: data-parallel epoch = "
              f"{envelope['epoch_s']:.1f}s "
              f"(feasible={envelope['feasible']})")

        # -- a batch: several questions, one document, one session
        batch = client.batch(SCENARIO, [
            {"verb": "project", "overrides": {"strategy": {"id": "d"}}},
            {"verb": "project", "overrides": {"strategy": {"id": "z"}}},
            {"verb": "suggest"},
        ])
        for answer in batch["results"]:
            if answer["kind"] == "project":
                print(f"batch:   {answer['strategy']:12s} "
                      f"epoch = {answer['epoch_s']:.1f}s")
        ranked = batch["results"][-1]
        top = ranked["entries"][0]
        print(f"batch:   suggest ranks {top['strategy']!r} first")

        # -- a long verb as an async job: submit, poll, unwrap
        result = client.run_job("search", dict(
            SCENARIO,
            search={"strategies": ["d", "z", "f"], "segments": [2, 4]},
        ))
        best = result["best"]
        print(f"job:     search winner = {best['strategy']} "
              f"({result['stats']['candidates']} candidates)")

        # -- validation errors carry the dotted field path
        try:
            client.project({"model": {"name": "not-a-model"}})
        except ServerError as exc:
            print(f"errors:  {exc.status} names field "
                  f"{exc.field!r}")

        # -- observability built in
        health = client.health()
        metrics = client.metrics()["metrics"]
        print(f"health:  {health['status']}, "
              f"{int(health['pool']['sessions'])} pooled session(s), "
              f"{int(metrics['serve.requests']['value'])} requests, "
              f"p99 = "
              f"{metrics['serve.latency_s']['p99'] * 1e3:.1f}ms")


if __name__ == "__main__":
    main()
