#!/usr/bin/env python
"""Correctness validation of every parallel decomposition (Section 4.5.2).

"We first compare the output activations/gradients of each layer
(value-by-value) to confirm that the parallelization artifacts, e.g., halo
exchange, do not affect the correctness."

This example runs that comparison on the NumPy execution substrate for all
six strategies, in 2-D and 3-D, and prints the communication patterns each
strategy actually performed (which you can cross-check against the paper's
Table 3 cost shapes).

Run:  python examples/validate_parallelism.py
"""

import numpy as np

from repro.models import toy_cnn, toy_cnn3d
from repro.core.tensors import TensorSpec
from repro.tensorparallel import (
    ChannelParallelExecutor,
    DataFilterExecutor,
    DataParallelExecutor,
    FilterParallelExecutor,
    PipelineExecutor,
    ShardedDataParallelExecutor,
    SpatialParallelExecutor,
)
from repro.tensorparallel.validate import validate_strategy


def main() -> None:
    model2d = toy_cnn(TensorSpec(4, (16, 16)), channels=(8, 16))
    model3d = toy_cnn3d(TensorSpec(2, (8, 8, 8)), channels=(4, 8))

    cases = [
        (model2d, DataParallelExecutor, 4, {}),
        (model2d, SpatialParallelExecutor, 4, {}),
        (model2d, FilterParallelExecutor, 4, {}),
        (model2d, ChannelParallelExecutor, 4, {}),
        (model2d, PipelineExecutor, 3, {"segments": 4}),
        (model2d, DataFilterExecutor, 2, {"p2": 2}),
        (model2d, ShardedDataParallelExecutor, 4, {}),
        (model3d, DataParallelExecutor, 2, {}),
        (model3d, SpatialParallelExecutor, 2, {}),
        (model3d, FilterParallelExecutor, 2, {}),
        (model3d, ChannelParallelExecutor, 2, {}),
    ]
    print("value-by-value validation against the sequential reference:")
    all_ok = True
    for model, cls, p, kwargs in cases:
        report = validate_strategy(model, cls, p, batch=8,
                                   executor_kwargs=kwargs)
        all_ok &= report.ok
        print(f"  {report}")
        for failure in report.failures:
            print(f"      {failure}")

    # Show the communication pattern of one strategy (filter parallelism:
    # Allgather forward + Allreduce backward, per layer — Section 3.3).
    print()
    ex = FilterParallelExecutor(model2d, 4)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 4, 16, 16))
    y = ex.forward(x)
    ex.backward(rng.standard_normal(y.shape))
    print("filter parallelism comm pattern (calls / bytes):")
    for op, calls in sorted(ex.comm.stats.calls.items()):
        print(f"  {op:15s} {calls:3d} calls   "
              f"{ex.comm.stats.bytes[op] / 1e6:8.2f} MB")
    if not all_ok:
        raise SystemExit("validation FAILED")
    print()
    print("all strategies match the sequential reference.")


if __name__ == "__main__":
    main()
