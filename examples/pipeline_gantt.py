#!/usr/bin/env python
"""Visualize the GPipe pipeline schedule (layer parallelism, Section 3.4).

Renders the fill/drain bubble of the pipeline as a text Gantt chart for
ResNet-50 split over 4 stages, at two micro-batch counts, and shows the
workload-balancing limitation (Section 5.3.3): "it is crucial that all
stages in the pipeline take roughly the same amount of time, since the
training time of a pipeline is limited by the slowest stage."

Run:  python examples/pipeline_gantt.py
"""

from repro import models, profile_model
from repro.simulator import gpipe_timeline

BATCH = 64


def stage_times(model, segments):
    profile = profile_model(model, samples_per_pe=max(1, BATCH // segments))
    groups = model.partition_depth(4)
    micro = BATCH / segments
    fw = [micro * profile.group_fw(g) for g in groups]
    bw = [micro * profile.group_bw(g) for g in groups]
    return fw, bw


def main() -> None:
    model = models.resnet50()
    for segments in (2, 8):
        fw, bw, = stage_times(model, segments)
        tl = gpipe_timeline(fw, bw, [0.0] * 3, segments)
        print(f"ResNet-50, 4 stages, S={segments} micro-batches "
              f"(digits=forward, letters=backward):")
        print(tl.render(width=72))
        print(f"  makespan {tl.makespan * 1e3:7.2f} ms   "
              f"bubble {tl.bubble_fraction():.0%}")
        print()

    # Imbalance: an artificially slow stage gates everything.
    fw, bw = stage_times(model, 8)
    fw[2] *= 3
    tl = gpipe_timeline(fw, bw, [0.0] * 3, 8)
    print("Same pipeline with stage2 3x slower (workload-balancing "
          "limitation):")
    print(tl.render(width=72))
    print(f"  makespan {tl.makespan * 1e3:7.2f} ms   "
          f"bubble {tl.bubble_fraction():.0%}")


if __name__ == "__main__":
    main()
