#!/usr/bin/env python
"""Limitation & bottleneck detection across strategies (Table 6).

One of ParaDL's stated purposes is "identifying limitations of parallel
strategies, shortcomings of frameworks, and bottlenecks in systems".  This
example projects a representative configuration per strategy and runs the
Table-6 detector on each, printing the findings matrix.

Run:  python examples/bottleneck_analysis.py
"""

from repro import abci_like_cluster, detect_findings, profile_model
from repro.core.analytical import AnalyticalModel
from repro.core.limits import TABLE6_ROWS
from repro.core.strategies import strategy_from_id
from repro.data import COSMOFLOW_512, IMAGENET
from repro.harness import format_table
from repro.models import build_model


CONFIGS = [
    # (strategy, model, p, global batch)
    ("d", "vgg16", 256, 32 * 256),
    ("s", "resnet50", 16, 16),
    ("p", "vgg16", 4, 64),
    ("f", "resnet50", 16, 32),
    ("c", "resnet50", 16, 32),
    ("df", "vgg16", 64, 8 * 64),
    ("ds", "cosmoflow", 16, 4),
]


def main() -> None:
    findings_by_sid = {}
    for sid, model_name, p, batch in CONFIGS:
        spec = COSMOFLOW_512.sample if model_name == "cosmoflow" else None
        model = build_model(model_name, spec)
        cluster = abci_like_cluster(max(p, 4))
        profile = profile_model(model, samples_per_pe=max(1, batch // p))
        analytical = AnalyticalModel(model, cluster, profile)
        strategy = strategy_from_id(sid, p, model, batch,
                                    intra=cluster.node.gpus)
        dataset = (COSMOFLOW_512 if model_name == "cosmoflow" else IMAGENET)
        proj = analytical.project(strategy, batch, dataset.num_samples)
        findings = detect_findings(model, proj, profile=profile)
        findings_by_sid[sid] = findings
        print(f"{sid:3s} ({model_name}, p={p}):")
        for f in findings:
            print(f"    {f}")
        if not findings:
            print("    (no significant limitation detected)")
        print()

    # Render the Table-6-style matrix: which categories fire per strategy.
    names = sorted({f.name for fs in findings_by_sid.values() for f in fs})
    rows = []
    for name in names:
        row = [name]
        for sid, *_ in CONFIGS:
            hit = any(f.name == name for f in findings_by_sid[sid])
            row.append("x" if hit else "-")
        rows.append(row)
    print(format_table(["finding"] + [c[0] for c in CONFIGS], rows))
    print()
    print("(Compare with the paper's Table 6; the paper's full row set:)")
    for category, kind, sids, comp, remark in TABLE6_ROWS:
        print(f"  {kind}/{category:13s} {remark:20s} strategies: {','.join(sids)}")


if __name__ == "__main__":
    main()
