#!/usr/bin/env python
"""Full reproduction driver: regenerate every table/figure at paper scale.

Runs the complete Figure-3 grid (16-1024 GPUs for data/hybrids, 4-64 for
filter/channel), CosmoFlow Figures 4/5, the congestion scatter, the
computation breakdowns, and the accuracy summary — the whole Section 5 —
and prints a consolidated report.  Runtime is a few seconds: the simulated
cluster costs nothing to scale, which is rather the point of having one.

Run:  python examples/run_paper_grid.py
"""

import numpy as np

from repro.harness import (
    format_table,
    pct,
    run_accuracy_summary,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table5,
)


def main() -> None:
    print("=" * 72)
    print("Figure 3 (full grid, 60 cells, up to 1024 simulated GPUs)")
    print("=" * 72)
    cells = run_fig3(quick=False, iterations=30)
    rows = [
        [c.model, c.sid, c.p, c.batch,
         f"{c.oracle.total * 1e3:9.2f}", f"{c.measured.total * 1e3:9.2f}",
         pct(c.accuracy)]
        for c in cells
    ]
    print(format_table(
        ["model", "strat", "p", "B", "oracle (ms)", "measured (ms)", "acc"],
        rows))

    print()
    print("Accuracy summary (Section 5.2):")
    summary = run_accuracy_summary(quick=False, iterations=30)
    for sid, acc in sorted(summary.per_strategy.items()):
        print(f"  {sid:4s} {pct(acc)}")
    print(f"  overall {pct(summary.overall)}   best {summary.best[0]} "
          f"{pct(summary.best[1])}")
    print("  (paper: 86.74% overall, 96.10% for d, best 97.57%)")

    print()
    print("Figure 4 (CosmoFlow ds accuracy):")
    for r in run_fig4(ps=(16, 64, 256), iterations=20):
        print(f"  p={r.p:4d}  oracle={r.oracle_iter:.3f}s "
              f"measured={r.measured_iter:.3f}s  acc={pct(r.accuracy)}")

    print()
    print("Figure 5 (CosmoFlow scaling):")
    for r in run_fig5(ps=(4, 16, 64, 256), iterations=5):
        time_s = f"{r.epoch_time:8.1f}s" if r.epoch_time == r.epoch_time else "     n/a"
        print(f"  {r.strategy:3s} p={r.p:4d} epoch={time_s} "
              f"speedup={r.speedup_vs_spatial:6.1f}x "
              f"{'OK' if r.feasible else 'OOM'}")

    print()
    print("Figure 6 (congestion):")
    for s in run_fig6(iterations=500):
        print(f"  {s.label:20s} expected={s.expected * 1e3:8.2f}ms "
              f"median={np.median(s.samples) * 1e3:8.2f}ms "
              f"outliers={s.outlier_fraction:.1%} "
              f"worst={s.max_slowdown:.2f}x")

    print()
    print("Figure 7 (weight-update share):")
    for r in run_fig7():
        print(f"  {r.model:10s} {r.optimizer:9s} wu={pct(r.wu_share)}")

    print()
    print("Figure 8 (filter-parallel conv scaling):")
    for r in run_fig8():
        print(f"  p={r.p:3d} ideal={r.ideal_conv_s * 1e3:7.2f}ms "
              f"actual={r.simulated_conv_s * 1e3:7.2f}ms "
              f"eff={pct(r.scaling_efficiency)}")

    print()
    print("Table 5 (models):")
    for r in run_table5():
        print(f"  {r['model']:10s} {r['parameters_M']:7.2f}M params  "
              f"{r['total_layers']:3d} layers  {r['dataset']}")


if __name__ == "__main__":
    main()
